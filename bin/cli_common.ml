(* Shared cmdliner terms for the sigil_* binaries. *)

open Cmdliner

let workload_arg =
  let doc =
    "Workload to profile. Known: " ^ String.concat ", " (Workloads.Suite.names ()) ^ "."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let workloads_arg =
  let doc =
    "Workloads to profile (one or more). Known: "
    ^ String.concat ", " (Workloads.Suite.names ())
    ^ "."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)

let domains_arg =
  let doc =
    "Domains for multi-workload invocations: independent runs fan out over a fixed-size domain \
     pool, results return in submission order and are bit-identical to a sequential run. \
     Default: the host's recommended domain count (capped at 8)."
  in
  Arg.(value & opt int (Pool.recommended ()) & info [ "j"; "domains" ] ~docv:"N" ~doc)

(* [with_domains n f] runs [f pool] with a pool of [n] domains, or with
   [None] when [n <= 1] (sequential, no domains spawned). *)
let with_domains n f =
  if n > 1 then Pool.with_pool ~domains:n (fun p -> f (Some p)) else f None

let scale_arg =
  let parse s =
    match Workloads.Scale.of_string s with
    | Ok _ as ok -> ok
    | Error e -> Error (`Msg e)
  in
  let print ppf s = Format.pp_print_string ppf (Workloads.Scale.name s) in
  let scale_conv = Arg.conv (parse, print) in
  let doc = "Input scale: simsmall, simmedium or simlarge." in
  Arg.(value & opt scale_conv Workloads.Scale.Simsmall & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let limit_arg =
  let doc = "Maximum rows to print." in
  Arg.(value & opt int 25 & info [ "n"; "limit" ] ~docv:"N" ~doc)

let max_chunks_arg =
  let doc =
    "Memory-limit parameter: cap live second-level shadow chunks (freed FIFO), trading accuracy \
     for footprint."
  in
  Arg.(value & opt (some int) None & info [ "max-chunks" ] ~docv:"N" ~doc)

let stripped_arg =
  let doc = "Profile as if the binary had no debugging symbols." in
  Arg.(value & flag & info [ "stripped" ] ~doc)

let resolve name =
  match Workloads.Suite.find name with
  | Ok w -> w
  | Error e ->
    prerr_endline e;
    exit 2

let with_max_chunks options = function
  | None -> options
  | Some n -> Sigil.Options.with_max_chunks options n

(* Exit codes: 0 success, 2 usage / unreadable or corrupt input, 3 partial
   results (some jobs failed under --fault-policy isolate but the rest
   completed and were reported). *)
let exit_partial = 3

let fault_policy_arg =
  let policy_conv = Arg.enum [ ("fail-fast", Driver.Fail_fast); ("isolate", Driver.Isolate) ] in
  let doc =
    "What a crashing workload does to the rest of the batch: $(b,fail-fast) aborts everything \
     on the first failure; $(b,isolate) captures each failure, completes every other workload \
     and exits with status 3 when any failed."
  in
  Arg.(value & opt policy_conv Driver.Fail_fast & info [ "fault-policy" ] ~docv:"POLICY" ~doc)

let timeout_arg =
  let doc =
    "Abort a workload once it has held the CPU for $(docv) wall-clock seconds (checked every \
     ~65k retired guest instructions). Combine with --fault-policy isolate to keep the rest of \
     the batch."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let instr_budget_arg =
  let doc =
    "Abort a workload once its retired-instruction clock exceeds $(docv) — a deterministic, \
     platform-independent run bound."
  in
  Arg.(value & opt (some int) None & info [ "instr-budget" ] ~docv:"N" ~doc)

let stats_arg =
  let doc =
    "Print the run's telemetry after the report: deterministic counters (shadow chunk \
     allocations/evictions, coalesced range runs, events dispatched) separated from \
     wall-clock timings. Collection itself is near-free; the probes are always on."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_out_arg =
  let doc =
    "Write the telemetry of every run plus the merged aggregate to $(docv) as a \
     sigil-stats/1 JSON document (see docs/FORMATS.md). The deterministic sections are \
     bit-identical across -j levels."
  in
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)

let stats_det_arg =
  let doc =
    "Restrict --stats/--stats-out to the deterministic domain, omitting every wall-clock \
     section — two --stats-out files from the same suite at different -j levels then compare \
     byte-identical."
  in
  Arg.(value & flag & info [ "stats-deterministic" ] ~doc)

let progress_arg =
  let doc =
    "Report run progress on stderr (workload, scale, instructions retired, evictions, ETA): a \
     live status line on a terminal, plain start/finish lines otherwise."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* [with_progress enabled n f] runs [f reporter] with a heartbeat sized for
   [n] jobs when enabled, closing it on the way out. *)
let with_progress enabled total f =
  if not enabled then f None
  else begin
    let p = Driver.Progress.create ~total () in
    Fun.protect ~finally:(fun () -> Driver.Progress.close p) (fun () -> f (Some p))
  end

let with_guards options ~timeout ~budget =
  let options =
    match budget with None -> options | Some n -> Sigil.Options.with_instr_budget options n
  in
  match timeout with None -> options | Some s -> Sigil.Options.with_timeout options s

(* [guard f] runs the command body [f ()] with the load-path failure modes
   every sigil_* binary shares mapped to a one-line stderr message and
   exit 2: structural trace damage (with its file offset), a cut-off
   varint, and unreadable files. Anything else is a real bug and keeps its
   backtrace. *)
let guard f =
  try f () with
  | Tracefile.Frame.Corrupt { offset; reason } ->
    Format.eprintf "error: corrupt trace at offset %d: %s@." offset reason;
    exit 2
  | Tracefile.Varint.Truncated ->
    Format.eprintf "error: truncated trace (varint cut off)@.";
    exit 2
  | Sys_error e | Failure e ->
    Format.eprintf "error: %s@." e;
    exit 2
