(* HW/SW partitioning case study (paper §IV-A): trim the control data flow
   graph and rank accelerator candidates by breakeven speedup. *)

open Cmdliner

let run name scale limit bus max_coverage callgrind_out domains =
  Cli_common.guard @@ fun () ->
  let workload = Cli_common.resolve name in
  let r = Driver.run_workload ~with_callgrind:true workload scale in
  (match callgrind_out with
  | Some path ->
    Callgrind.Output.save (Driver.callgrind r) path;
    Format.printf "callgrind-format profile written to %s@." path
  | None -> ());
  let cdfg = Driver.cdfg r in
  let trimmed =
    Cli_common.with_domains domains (fun pool ->
        Analysis.Partition.trim ~bus_bytes_per_cycle:bus ~max_coverage ?pool cdfg)
  in
  let ranked = Analysis.Partition.rank trimmed in
  Format.printf "== partitioning: %s (%s), bus %.1f B/cycle ==@." name
    (Workloads.Scale.name scale) bus;
  Format.printf "trimmed-tree leaf coverage: %.1f%% of estimated cycles@.@."
    (100.0 *. trimmed.Analysis.Partition.coverage);
  let rows =
    List.filteri (fun i _ -> i < limit) ranked
    |> List.map (fun (c : Analysis.Partition.candidate) ->
           [
             c.Analysis.Partition.name;
             Printf.sprintf "%.3f" c.Analysis.Partition.breakeven;
             Printf.sprintf "%.1f%%" (100.0 *. c.Analysis.Partition.coverage);
             string_of_int c.Analysis.Partition.incl_cycles;
             string_of_int c.Analysis.Partition.input_unique;
             string_of_int c.Analysis.Partition.output_unique;
           ])
  in
  print_string
    (Analysis.Table.render
       ~headers:[ "candidate"; "S(breakeven)"; "coverage"; "cycles"; "uniq-in"; "uniq-out" ]
       rows)

let cmd =
  let bus =
    Arg.(
      value
      & opt float Analysis.Partition.default_bus_bytes_per_cycle
      & info [ "bus" ] ~docv:"BYTES" ~doc:"SoC bus bandwidth in bytes per cycle.")
  in
  let max_coverage =
    Arg.(
      value
      & opt float 0.5
      & info [ "max-coverage" ] ~docv:"FRAC"
          ~doc:"Largest program share a merged driver box may take.")
  in
  let callgrind_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "callgrind-out" ] ~docv:"FILE"
          ~doc:"Also write the baseline profile in callgrind format (KCachegrind-readable).")
  in
  Cmd.v
    (Cmd.info "sigil_partition" ~doc:"Communication-aware HW/SW partitioning from Sigil profiles")
    Term.(
      const run $ Cli_common.workload_arg $ Cli_common.scale_arg $ Cli_common.limit_arg $ bus
      $ max_coverage $ callgrind_out $ Cli_common.domains_arg)

let () = exit (Cmd.eval cmd)
