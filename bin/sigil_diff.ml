(* Compare saved Sigil profiles (from sigil_run --save-profile): which call
   paths' computation or true communication moved. Each side may be a
   comma-separated list of profiles — e.g. the per-shard outputs of a
   domain-parallel suite run — merged by call path before diffing; the
   merge is a commutative sum, so shard order never changes the report. *)

open Cmdliner

let run before after limit all =
  Cli_common.guard @@ fun () ->
  let load_all spec = List.map Sigil.Profile_io.load (String.split_on_char ',' spec) in
  let deltas = Analysis.Compare.diff_many ~before:(load_all before) ~after:(load_all after) in
  let deltas = if all then deltas else Analysis.Compare.changed deltas in
  if deltas = [] then print_endline "profiles are identical"
  else Analysis.Compare.pp ~limit Format.std_formatter deltas

let cmd =
  let before =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BEFORE" ~doc:"Baseline profile (or comma-separated shard profiles).")
  in
  let after =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"AFTER" ~doc:"New profile (or comma-separated shard profiles).")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Include unchanged call paths.") in
  Cmd.v
    (Cmd.info "sigil_diff" ~doc:"Diff two saved Sigil profiles by call path")
    Term.(const run $ before $ after $ Cli_common.limit_arg $ all)

let () = exit (Cmd.eval cmd)
