(* Record raw guest event streams and re-analyze them offline — profiles
   are platform-independent and only need collecting once. *)

open Cmdliner

let record name scale path =
  let workload = Cli_common.resolve name in
  let m = Dbi.Trace.record path (fun m -> workload.Workloads.Workload.run m scale) in
  let c = Dbi.Machine.counters m in
  Format.printf "recorded %s (%s): %d instructions, %d calls -> %s@." name
    (Workloads.Scale.name scale) (Dbi.Machine.now m) c.Dbi.Machine.calls path

let replay path limit =
  let tool = ref None in
  let m =
    Dbi.Trace.replay
      ~tools:
        [
          (fun machine ->
            let t = Sigil.Tool.create machine in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      path
  in
  Format.printf "replayed %s: %d instructions@.@." path (Dbi.Machine.now m);
  Sigil.Report.pp ~limit Format.std_formatter (Option.get !tool)

let convert src dst chunk_bytes =
  Cli_common.guard @@ fun () ->
  match Tracefile.Convert.sniff src with
  | Tracefile.Convert.Text ->
    let n = Tracefile.Convert.text_to_binary ?chunk_bytes src dst in
    Format.printf "converted %s (text) -> %s (binary): %d records@." src dst n
  | Tracefile.Convert.Binary ->
    let n = Tracefile.Convert.binary_to_text src dst in
    Format.printf "converted %s (binary) -> %s (text): %d records@." src dst n

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

let repair src dst chunk_bytes =
  Cli_common.guard @@ fun () ->
  let report = Tracefile.Convert.repair ?chunk_bytes src dst in
  Format.printf "repaired %s -> %s: %a@." src dst Tracefile.Reader.pp_salvage_report report

let inspect path check =
  Cli_common.guard @@ fun () ->
  match Tracefile.Convert.sniff path with
  | Tracefile.Convert.Text ->
    let n = ref 0 in
    Sigil.Event_log.iter_file path (fun _ -> incr n);
    Format.printf "%s: text event trace@." path;
    Format.printf "  records:   %d@." !n;
    Format.printf "  file size: %d B@." (file_size path)
  | Tracefile.Convert.Binary ->
    let r = Tracefile.Reader.open_file path in
    Fun.protect
      ~finally:(fun () -> Tracefile.Reader.close r)
      (fun () ->
        Format.printf "%s: binary event trace (version %d)@." path (Tracefile.Reader.version r);
        Format.printf "  options:     %s@." (Tracefile.Reader.options_tag r);
        Format.printf "  records:     %d@." (Tracefile.Reader.entry_count r);
        Format.printf "  chunks:      %d (target %d B)@." (Tracefile.Reader.chunk_count r)
          (Tracefile.Reader.chunk_bytes r);
        Format.printf "  symbols:     %d@." (Tracefile.Reader.symbol_count r);
        Format.printf "  contexts:    %d@." (Tracefile.Reader.context_count r);
        Format.printf "  file size:   %d B@." (file_size path);
        if check then begin
          Tracefile.Reader.validate r;
          Format.printf "  integrity:   all chunk CRCs and counts verified@."
        end)

let convert_cmd =
  let src =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"SRC" ~doc:"Event trace to convert.")
  in
  let dst =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DST" ~doc:"Output file.")
  in
  let chunk_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-bytes" ] ~docv:"N"
          ~doc:"Target chunk payload size when writing binary (default 65536).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert an event trace between the text and framed binary formats (direction \
          auto-detected from SRC)")
    Term.(const convert $ src $ dst $ chunk_bytes)

let repair_cmd =
  let src =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SRC"
          ~doc:"Damaged binary trace (e.g. a .tmp left behind by a killed run).")
  in
  let dst =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DST" ~doc:"Clean output trace.")
  in
  let chunk_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-bytes" ] ~docv:"N"
          ~doc:"Target chunk payload size for the rewritten trace (default: the source's).")
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Salvage a damaged or crash-torn binary trace: recover the longest intact prefix of \
          chunks and rewrite it as a clean, fully-indexed trace (SRC is untouched)")
    Term.(const repair $ src $ dst $ chunk_bytes)

let inspect_cmd =
  let path =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Event trace to inspect.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Also decode every chunk, verifying CRCs and entry counts.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print an event trace's header, tables and framing metadata")
    Term.(const inspect $ path $ check)

let record_cmd =
  let path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Trace output file.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run a workload and record its raw event stream")
    Term.(const record $ Cli_common.workload_arg $ Cli_common.scale_arg $ path)

let replay_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file to replay.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Drive Sigil from a recorded trace (no re-run needed)")
    Term.(const replay $ path $ Cli_common.limit_arg)

let cmd =
  Cmd.group
    (Cmd.info "sigil_trace" ~doc:"Record, replay, convert and inspect guest event streams")
    [ record_cmd; replay_cmd; convert_cmd; inspect_cmd; repair_cmd ]

let () = exit (Cmd.eval cmd)
