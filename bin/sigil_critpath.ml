(* Critical-path case study (paper §IV-C): dependency chains from the
   event file, longest path and function-level parallelism limit. Works
   from a live run or from a saved event trace (binary or text); binary
   traces embed the producing run's symbol/context tables, so loaded
   traces print real function names. *)

open Cmdliner

let report title cp describe cores =
  Format.printf "== critical path: %s ==@." title;
  Format.printf "serial length (ops):        %d@." (Analysis.Critpath.serial_length cp);
  Format.printf "critical path length (ops): %d@." (Analysis.Critpath.critical_path_length cp);
  Format.printf "max function-level parallelism: %.2fx@.@." (Analysis.Critpath.parallelism cp);
  let names = List.map describe (Analysis.Critpath.critical_path_contexts cp) in
  Format.printf "critical path (leaf -> main):@.  %s@." (String.concat " -> " names);
  List.iter
    (fun n ->
      let s = Analysis.Critpath.schedule cp ~cores:n in
      Format.printf "@.%d scheduling slots: speedup %.2fx, utilization %.1f%%@." n
        s.Analysis.Critpath.speedup
        (100.0 *. s.Analysis.Critpath.utilization))
    cores

let print_summary title (s : Analysis.Critpath.summary) =
  Format.printf "== critical path (streaming summary): %s ==@." title;
  Format.printf "serial length (ops):        %d@." s.Analysis.Critpath.s_serial;
  Format.printf "critical path length (ops): %d@." s.Analysis.Critpath.s_critical;
  Format.printf "fragments:                  %d@." s.Analysis.Critpath.s_fragments;
  Format.printf "max function-level parallelism: %.2fx@."
    (Analysis.Critpath.summary_parallelism s)

let raw_ctx ctx = "ctx:" ^ string_of_int ctx

let run name scale load_path cores summary =
  Cli_common.guard @@ fun () ->
  match load_path with
  | Some path when Tracefile.Reader.is_tracefile path ->
    let r = Tracefile.Reader.open_file path in
    Fun.protect
      ~finally:(fun () -> Tracefile.Reader.close r)
      (fun () ->
        let stream = Tracefile.Reader.iter r in
        if summary then print_summary path (Analysis.Critpath.summarize_stream stream)
        else
          let describe =
            if Tracefile.Reader.has_names r then Tracefile.Reader.fn_name r else raw_ctx
          in
          report path (Analysis.Critpath.analyze_stream stream) describe cores)
  | Some path ->
    (* text event file: streamed line by line; context ids resolve only
       against the run that produced it, so print raw ids *)
    let stream = Sigil.Event_log.iter_file path in
    if summary then print_summary path (Analysis.Critpath.summarize_stream stream)
    else report path (Analysis.Critpath.analyze_stream stream) raw_ctx cores
  | None ->
    let workload = Cli_common.resolve name in
    let r = Driver.run_workload ~options:Sigil.Options.(with_events default) workload scale in
    let title = Printf.sprintf "%s (%s)" name (Workloads.Scale.name scale) in
    if summary then
      let log = Option.get (Sigil.Tool.event_log (Driver.sigil r)) in
      print_summary title (Analysis.Critpath.summarize_stream (Sigil.Event_log.iter log))
    else report title (Driver.critpath r) (Driver.fn_name r) cores

let cmd =
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:
            "Post-process a saved event trace (binary or text, auto-detected) instead of \
             running.")
  in
  let cores =
    Arg.(
      value
      & opt_all int []
      & info [ "cores" ] ~docv:"N"
          ~doc:"Also list-schedule the dependency chains onto $(docv) cores (repeatable).")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "Stream the trace through the O(1)-memory summary pass: serial length, critical \
             path and parallelism only (no dependency DAG, no path listing or scheduling).")
  in
  Cmd.v
    (Cmd.info "sigil_critpath" ~doc:"Critical-path analysis over Sigil event files")
    Term.(const run $ Cli_common.workload_arg $ Cli_common.scale_arg $ load $ cores $ summary)

let () = exit (Cmd.eval cmd)
