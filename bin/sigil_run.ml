(* Run one or more workloads under Sigil and dump the aggregate profiles
   (optionally the event file, a saved profile, a DOT graph, or a raw
   trace), the tool's primary interface. Multi-workload invocations fan the
   independent runs out over a domain pool (-j/--domains); reports print in
   argument order and are bit-identical to a sequential run. *)

open Cmdliner

let report name scale r =
  let tool = Driver.sigil r in
  let c = Dbi.Machine.counters r.Driver.machine in
  Format.printf "== sigil: %s (%s) ==@." name (Workloads.Scale.name scale);
  Format.printf "guest instructions: %d   calls: %d   syscalls: %d@."
    (Dbi.Machine.now r.Driver.machine) c.Dbi.Machine.calls c.Dbi.Machine.syscalls;
  Format.printf "shadow footprint: %.1f MB (peak %.1f MB), evictions: %d@.@."
    (float_of_int (Sigil.Tool.shadow_footprint_bytes tool) /. 1e6)
    (float_of_int (Sigil.Tool.shadow_footprint_peak_bytes tool) /. 1e6)
    (Sigil.Tool.shadow_evictions tool)

let pp_stats ~det snapshot =
  let s = if det then Telemetry.deterministic snapshot else snapshot in
  Telemetry.pp Format.std_formatter s

let run names scale limit max_chunks stripped domains fault_policy timeout budget events_path
    chunk_bytes checkpoint_every stats stats_out stats_det progress edges flat tree
    save_profile dot_path trace_path =
  let workloads = List.map Cli_common.resolve names in
  (if List.length names > 1 then
     let single_only =
       [
         ("--events", events_path <> None);
         ("--save-profile", save_profile <> None);
         ("--dot", dot_path <> None);
         ("--trace", trace_path <> None);
       ]
     in
     List.iter
       (fun (flag, set) ->
         if set then begin
           Format.eprintf "sigil_run: %s requires a single WORKLOAD@." flag;
           exit 2
         end)
       single_only);
  (match (trace_path, workloads) with
  | Some path, workload :: _ ->
    let m = Dbi.Trace.record path (fun m -> workload.Workloads.Workload.run m scale) in
    Format.printf "raw trace (%d guest instructions) written to %s@." (Dbi.Machine.now m) path
  | Some _, [] | None, _ -> ());
  let options = Cli_common.with_max_chunks Sigil.Options.default max_chunks in
  let options = if events_path <> None then Sigil.Options.with_events options else options in
  let options = Cli_common.with_guards options ~timeout ~budget in
  let want_stats = stats || stats_out <> None in
  let options = if want_stats then Sigil.Options.with_stats options else options in
  (* events stream straight into the binary chunk writer during the run:
     the tool buffers at most one chunk, never the whole trace *)
  let event_writer =
    Option.map
      (fun path -> Tracefile.Writer.create ?chunk_bytes ?checkpoint_every ~options path)
      events_path
  in
  let event_sink = Option.map Tracefile.Writer.sink event_writer in
  (* the pool handle survives [with_domains] only for its accounting
     atomics, which [Driver.Stats] folds into the wall-clock aggregate *)
  let results, pool_used =
    Cli_common.with_domains domains (fun pool ->
        Cli_common.with_progress progress (List.length workloads) (fun prog ->
            ( Driver.run_many ?pool ?progress:prog ~fault_policy
                (List.map (fun w -> Driver.job ~options ?event_sink ~stripped w scale) workloads),
              pool )))
  in
  let failures = ref 0 in
  List.iter2
    (fun name result ->
      match result with
      | Error e ->
        incr failures;
        Format.eprintf "sigil_run: FAILED %s@." (Driver.Run_error.to_string e)
      | Ok r ->
        report name scale r;
        let tool = Driver.sigil r in
        if flat then Analysis.Flat.pp ~limit Format.std_formatter tool
        else Sigil.Report.pp ~limit Format.std_formatter tool;
        if tree then begin
          Format.printf "@.calltree (inclusive ops, unique bytes in/out):@.";
          Analysis.Flat.calltree Format.std_formatter tool
        end;
        if edges then begin
          Format.printf "@.communication edges (by unique bytes):@.";
          Sigil.Report.pp_edges ~limit Format.std_formatter tool
        end)
    names results;
  (match results with
  | [ Ok r ] -> (
    let tool = Driver.sigil r in
    (match save_profile with
    | Some path ->
      Sigil.Profile_io.save tool path;
      Format.printf "@.profile written to %s@." path
    | None -> ());
    (match dot_path with
    | Some path ->
      Analysis.Dot.save_cdfg tool path;
      Format.printf "@.control data flow graph (DOT) written to %s@." path
    | None -> ());
    match (events_path, event_writer) with
    | Some path, Some w ->
      let m = r.Driver.machine in
      Tracefile.Writer.close ~symbols:(Dbi.Machine.symbols m) ~contexts:(Dbi.Machine.contexts m)
        w;
      Format.printf
        "@.binary event trace (%d records, %d chunks, peak buffer %d B) written to %s@."
        (Tracefile.Writer.entries w) (Tracefile.Writer.chunks w)
        (Tracefile.Writer.peak_buffer_bytes w)
        path
    | (Some _ | None), (Some _ | None) -> ())
  | _ ->
    (* the run feeding the trace writer failed (or there were several
       runs): never publish a partial trace under the requested name *)
    Option.iter Tracefile.Writer.discard event_writer);
  if want_stats then begin
    (* a single-run --events invocation also reports the trace writer's
       samples (the writer is closed by now; its counters remain valid) *)
    let named_results =
      match (results, event_writer) with
      | [ Ok r ], Some w ->
        let with_trace =
          Option.map
            (fun s -> Telemetry.merge s (Telemetry.of_samples (Tracefile.Writer.telemetry w)))
            r.Driver.stats
        in
        [ (List.hd names, Ok { r with Driver.stats = with_trace }) ]
      | _ -> List.combine names results
    in
    if stats then begin
      List.iter
        (fun (name, result) ->
          match result with
          | Ok r ->
            Format.printf "@.-- stats: %s --@." name;
            pp_stats ~det:stats_det (Driver.Stats.of_run r)
          | Error _ -> ())
        named_results;
      if List.length named_results > 1 then begin
        Format.printf "@.-- stats: aggregate --@.";
        pp_stats ~det:stats_det
          (Driver.Stats.aggregate ?pool:pool_used (List.map snd named_results))
      end
    end;
    match stats_out with
    | Some path ->
      Driver.Stats.write_json ~wall:(not stats_det) ?pool:pool_used ~scale named_results path;
      Format.printf "@.stats written to %s@." path
    | None -> ()
  end;
  if !failures > 0 then exit Cli_common.exit_partial

let cmd =
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Also record the sequential event trace to $(docv) in the framed binary format, \
             streamed chunk by chunk during the run (bounded memory). Use sigil_trace convert \
             to go to/from the line-oriented text format.")
  in
  let chunk_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk-bytes" ] ~docv:"N"
          ~doc:
            "Target payload bytes per --events chunk (default 65536). Smaller chunks cost more \
             framing overhead but tighten crash-recovery granularity.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Write a durable index checkpoint (and flush) into the --events trace every $(docv) \
             chunks (default 16) — the bound on data a hard kill can lose.")
  in
  let edges =
    Arg.(value & flag & info [ "edges" ] ~doc:"Print producer->consumer communication edges.")
  in
  let flat =
    Arg.(
      value & flag
      & info [ "flat" ] ~doc:"Merge calling contexts by function name (gprof-style rollup).")
  in
  let tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Print the calltree with inclusive costs.")
  in
  let save_profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-profile" ] ~docv:"FILE"
          ~doc:"Write the aggregate profile to $(docv) (reload with Sigil.Profile_io).")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the control data flow graph as Graphviz DOT.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Also record the raw event stream to $(docv) (replayable with Dbi.Trace, no re-run \
             needed).")
  in
  Cmd.v
    (Cmd.info "sigil_run" ~doc:"Profile workloads' function-level communication with Sigil")
    Term.(
      const run $ Cli_common.workloads_arg $ Cli_common.scale_arg $ Cli_common.limit_arg
      $ Cli_common.max_chunks_arg $ Cli_common.stripped_arg $ Cli_common.domains_arg
      $ Cli_common.fault_policy_arg $ Cli_common.timeout_arg $ Cli_common.instr_budget_arg
      $ events $ chunk_bytes $ checkpoint_every $ Cli_common.stats_arg $ Cli_common.stats_out_arg
      $ Cli_common.stats_det_arg $ Cli_common.progress_arg $ edges $ flat $ tree $ save_profile
      $ dot $ trace)

let () = exit (Cmd.eval cmd)
