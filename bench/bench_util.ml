(* Shared plumbing for the benchmark harness: section headers, run caching,
   and a thin Bechamel wrapper that prints one ns/op estimate per test. *)

open Bechamel

let section = Analysis.Table.section

let banner title =
  let line = String.make 78 '#' in
  Printf.printf "\n%s\n## %s\n%s\n" line title line

(* The pool behind --domains N; [None] (or N = 1) keeps every code path
   sequential. Sections must only print from the main domain so stdout stays
   deterministic; parallel work returns values for the main domain to render. *)
let pool : Pool.t option ref = ref None
let set_pool p = pool := p

(* [pmap f xs] fans a per-item computation out over the pool (in submission
   order, so results match List.map exactly) or degrades to List.map. *)
let pmap f xs = match !pool with Some p -> Pool.map p f xs | None -> List.map f xs

(* Workload runs are expensive; every figure reuses them through this
   cache. Key: workload name, scale, tool configuration tag. The mutex makes
   the cache safe to fill from pool domains (prewarm); concurrent misses on
   the same key at worst run the workload twice, and since runs are
   deterministic either result is the same. *)
let cache : (string, Driver.run) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()

let cached ~tag ~name ~scale make =
  let key = Printf.sprintf "%s/%s/%s" name (Workloads.Scale.name scale) tag in
  let hit = Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache key) in
  match hit with
  | Some run -> run
  | None ->
    let run = make () in
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some run -> run
        | None ->
          Hashtbl.add cache key run;
          run)

let workload name =
  match Workloads.Suite.find name with
  | Ok w -> w
  | Error e -> failwith e

(* dedup is the one benchmark run with the FIFO memory limiter, as in the
   paper (§III-A). *)
let dedup_max_chunks = 300

let baseline_options name =
  if name = "dedup" then Sigil.Options.with_max_chunks Sigil.Options.default dedup_max_chunks
  else Sigil.Options.default

let sigil_run ?(options_of = baseline_options) name scale =
  cached ~tag:"sigil" ~name ~scale (fun () ->
      Driver.run_workload ~options:(options_of name) (workload name) scale)

let reuse_run name scale =
  cached ~tag:"reuse" ~name ~scale (fun () ->
      Driver.run_workload ~options:Sigil.Options.(with_reuse default) (workload name) scale)

let events_run name scale =
  cached ~tag:"events" ~name ~scale (fun () ->
      Driver.run_workload ~options:Sigil.Options.(with_events default) (workload name) scale)

let line_run name scale =
  cached ~tag:"line" ~name ~scale (fun () ->
      Driver.run_workload
        ~options:(Sigil.Options.with_line_size Sigil.Options.default 64)
        (workload name) scale)

(* Sigil is built on top of Callgrind (§III), so "running Sigil" means
   both tools are attached: the Sigil run time includes Callgrind's work,
   exactly as in the paper's overhead figures. *)
let paired_run name scale =
  cached ~tag:"paired" ~name ~scale (fun () ->
      Driver.run_workload ~options:(baseline_options name) ~with_callgrind:true (workload name)
        scale)

let callgrind_run name scale =
  cached ~tag:"callgrind" ~name ~scale (fun () ->
      Driver.run_workload ~with_sigil:false ~with_callgrind:true (workload name) scale)

let native_time name scale =
  Driver.time_native (workload name) scale

(* Bechamel wrapper: run a group of microbenchmarks, print the OLS
   estimate (ns per run) for each, and return the [(name, ns)] rows so
   callers can feed BENCH_shadow.json or compute ratios. *)
let microbench ~name tests =
  let test = Test.make_grouped ~name tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun key ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (key, ns) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  List.iter (fun (key, ns) -> Printf.printf "  %-50s %10.1f ns/op\n" key ns) rows;
  rows

(* [ns_of rows leaf] finds the grouped row whose path ends in [leaf]. *)
let ns_of rows leaf =
  match
    List.find_opt
      (fun (key, _) ->
        let n = String.length key and l = String.length leaf in
        n >= l && String.sub key (n - l) l = leaf)
      rows
  with
  | Some (_, ns) -> ns
  | None -> nan

let events_per_sec ns = if Float.is_nan ns || ns <= 0.0 then 0.0 else 1e9 /. ns

(* Machine-readable perf trajectory: sections push (key, json value)
   pairs; [write_bench_json] renders a flat one-object file. *)
let json_fields : (string * string) list ref = ref []
let json_num v = Printf.sprintf "%.1f" v
let json_add key value = json_fields := (key, value) :: !json_fields

let json_add_obj key fields =
  json_add key
    ("{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
    ^ "}")

let write_bench_json path =
  let oc = open_out path in
  Printf.fprintf oc "{\n%s\n}\n"
    (String.concat ",\n"
       (List.rev_map (fun (k, v) -> Printf.sprintf "  %S: %s" k v) !json_fields));
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let pf = Printf.printf
