(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figs 4-13, Tables II-III), prints Bechamel microbenchmarks
   for the code path each experiment exercises, and runs the ablations
   called out in DESIGN.md. See EXPERIMENTS.md for paper-vs-measured.

     dune exec bench/main.exe *)

open Bench_util
open Bechamel

let parsec = List.map (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.name) Workloads.Suite.parsec
let small = Workloads.Scale.Simsmall
let medium = Workloads.Scale.Simmedium

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: instrumentation slowdowns                          *)
(* ------------------------------------------------------------------ *)

type overhead = {
  o_name : string;
  o_scale : Workloads.Scale.t;
  native_s : float;
  callgrind_s : float;
  sigil_s : float;
}

(* simsmall guest runs are milliseconds long, so take the best of two
   measurements; simmedium runs are long enough to measure once. *)
let repeats scale = if scale = small then 2 else 1

let best n f =
  let rec go best_s k = if k = 0 then best_s else go (min best_s (f ())) (k - 1) in
  go (f ()) (n - 1)

let measure_overhead name scale =
  let n = repeats scale in
  let native_s = best n (fun () -> native_time name scale) in
  let w = workload name in
  let callgrind_s =
    best n (fun () ->
        (Driver.run_workload ~with_sigil:false ~with_callgrind:true w scale).Driver.elapsed_s)
  in
  let sigil_s =
    best n (fun () ->
        (Driver.run_workload ~options:(baseline_options name) ~with_callgrind:true w scale)
          .Driver.elapsed_s)
  in
  {
    o_name = name;
    o_scale = scale;
    native_s = max native_s 1e-6;
    callgrind_s;
    sigil_s;
  }

let fig4_5_6 () =
  banner "Fig 4/5: slowdown of Sigil and Callgrind relative to native";
  (* per-workload measurements are independent; under --domains N they run
     concurrently (timings then include scheduling noise, as any wall-clock
     measurement does — the profile-derived figures stay bit-identical) *)
  let rows = pmap (fun n -> measure_overhead n small) parsec in
  let rows_medium = pmap (fun n -> measure_overhead n medium) parsec in
  print_string (section "Fig 4: slowdown vs native (simsmall)");
  print_string
    (Analysis.Table.render
       ~headers:[ "benchmark"; "native (s)"; "Callgrind x"; "Sigil x"; "Sigil/Callgrind" ]
       (List.map
          (fun r ->
            [
              r.o_name;
              Printf.sprintf "%.4f" r.native_s;
              Printf.sprintf "%.1f" (r.callgrind_s /. r.native_s);
              Printf.sprintf "%.1f" (r.sigil_s /. r.native_s);
              Printf.sprintf "%.2f" (r.sigil_s /. r.callgrind_s);
            ])
          rows));
  let avg f rows = List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows) in
  pf "\naverage slowdown vs native: Sigil %.1fx, Callgrind %.1fx\n"
    (avg (fun r -> r.sigil_s /. r.native_s) rows)
    (avg (fun r -> r.callgrind_s /. r.native_s) rows);
  print_string (section "Fig 5: slowdown of Sigil relative to Callgrind");
  List.iter
    (fun (label, rs) ->
      pf "%s\n" label;
      print_string
        (Analysis.Table.bar_chart
           ~fmt:(fun v -> Printf.sprintf "%.2fx" v)
           (List.map (fun r -> (r.o_name, r.sigil_s /. r.callgrind_s)) rs)))
    [ ("simsmall:", rows); ("simmedium:", rows_medium) ];
  pf
    "\ndedup runs with the FIFO memory limiter (--max-chunks %d), the paper's\n\
     outlier; its relative slowdown includes eviction work.\n"
    dedup_max_chunks;

  banner "Fig 6: Sigil shadow-memory usage (baseline profiling)";
  let footprint rows =
    List.map
      (fun r ->
        let run = paired_run r.o_name r.o_scale in
        ( r.o_name,
          float_of_int (Sigil.Tool.shadow_footprint_peak_bytes (Driver.sigil run)) /. 1e6 ))
      rows
  in
  let fp_small = footprint rows and fp_medium = footprint rows_medium in
  print_string
    (Analysis.Table.render
       ~headers:[ "benchmark"; "simsmall (MB)"; "simmedium (MB)" ]
       (List.map2
          (fun (n, s) (_, m) -> [ n; Printf.sprintf "%.1f" s; Printf.sprintf "%.1f" m ])
          fp_small fp_medium));
  json_add_obj "fig6_footprint_peak_mb_simsmall"
    (List.map (fun (n, mb) -> (n, Printf.sprintf "%.3f" mb)) fp_small);
  json_add_obj "fig6_footprint_peak_mb_simmedium"
    (List.map (fun (n, mb) -> (n, Printf.sprintf "%.3f" mb)) fp_medium);
  let evictions =
    Sigil.Tool.shadow_evictions (Driver.sigil (paired_run "dedup" medium))
  in
  pf "\ndedup simmedium evictions under the memory limit: %d\n" evictions

(* ------------------------------------------------------------------ *)
(* Figure 7 and Tables II/III: partitioning                            *)
(* ------------------------------------------------------------------ *)

(* candidate ranking fans the trim reduction over calltree subtrees on the
   shared pool (Partition.trim ?pool); bit-identical to the sequential pass *)
let trimmed name =
  let run = paired_run name small in
  Analysis.Partition.trim ?pool:!Bench_util.pool
    (Analysis.Cdfg.build ~callgrind:(Driver.callgrind run) (Driver.sigil run))

let fig7_tables () =
  banner "Fig 7: coverage of the trimmed-calltree leaves";
  let coverages = pmap (fun n -> (n, (trimmed n).Analysis.Partition.coverage)) parsec in
  print_string
    (Analysis.Table.bar_chart
       ~fmt:(fun v -> Printf.sprintf "%.0f%%" (100.0 *. v))
       coverages);
  pf "\nlow-coverage exceptions (paper: canneal, ferret, swaptions):\n";
  List.iter
    (fun (n, c) -> if c < 0.5 then pf "  %-14s %.0f%%\n" n (100.0 *. c))
    coverages;

  banner "Tables II/III: breakeven speedups of best/worst candidates";
  let table_benchmarks = [ "blackscholes"; "bodytrack"; "canneal"; "dedup" ] in
  let ranked_tables = pmap (fun name -> (name, Analysis.Partition.rank (trimmed name))) table_benchmarks in
  List.iter
    (fun (name, ranked) ->
      let render title cands =
        print_string (section (Printf.sprintf "%s: %s" name title));
        print_string
          (Analysis.Table.render
             ~headers:[ "function"; "S(breakeven)"; "coverage" ]
             (List.map
                (fun (c : Analysis.Partition.candidate) ->
                  [
                    c.Analysis.Partition.name;
                    Printf.sprintf "%.3f" c.Analysis.Partition.breakeven;
                    Printf.sprintf "%5.2f%%" (100.0 *. c.Analysis.Partition.coverage);
                  ])
                cands))
      in
      render "top 5 (Table II)" (Analysis.Partition.top 5 ranked);
      render "bottom 5 (Table III)" (Analysis.Partition.bottom 5 ranked))
    ranked_tables

(* ------------------------------------------------------------------ *)
(* Figures 8-11: data re-use                                           *)
(* ------------------------------------------------------------------ *)

let fig8_to_11 () =
  banner "Fig 8: breakdown of data bytes by re-use count (simsmall)";
  List.iter
    (fun name ->
      let run = reuse_run name small in
      let bd = Analysis.Reuse_report.byte_breakdown (Driver.sigil run) in
      pf "%-14s %s" name
        (Analysis.Table.stacked_bar
           [
             ("zero", bd.Analysis.Reuse_report.zero);
             ("1-9", bd.Analysis.Reuse_report.one_to_nine);
             (">9", bd.Analysis.Reuse_report.over_nine);
           ]))
    parsec;

  let vips = reuse_run "vips" small in
  let tool = Driver.sigil vips in
  banner "Fig 9: average re-use lifetimes of the top vips functions";
  print_string
    (Analysis.Table.bar_chart
       ~fmt:(fun v -> Printf.sprintf "%.0f instrs" v)
       (List.map
          (fun (r : Analysis.Reuse_report.fn_row) ->
            (r.Analysis.Reuse_report.label, r.Analysis.Reuse_report.avg_lifetime))
          (Analysis.Reuse_report.top_reusers ~n:8 tool)));

  List.iter
    (fun (figure, fn) ->
      banner (Printf.sprintf "Fig %s: re-use lifetime distribution of %S in vips" figure fn);
      let hist = Analysis.Reuse_report.lifetime_histogram_dominant tool fn in
      print_string
        (Analysis.Table.bar_chart
           ~fmt:(Printf.sprintf "%.0f")
           (List.map (fun (bin, c) -> (string_of_int bin, float_of_int c)) hist));
      let total = List.fold_left (fun a (_, c) -> a + c) 0 hist in
      let peak_bin, _ =
        List.fold_left (fun (b, c) (b', c') -> if c' > c then (b', c') else (b, c)) (0, 0) hist
      in
      pf "reused-byte episodes: %d; modal lifetime bin: %d\n" total peak_bin)
    [ ("10", "conv_gen"); ("11", "imb_XYZ2Lab") ]

(* ------------------------------------------------------------------ *)
(* Figure 12: line-granularity re-use                                  *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  banner "Fig 12: breakdown of 64B lines by re-use count (simsmall)";
  List.iter
    (fun name ->
      let run = line_run name small in
      let line = Option.get (Sigil.Tool.line_shadow (Driver.sigil run)) in
      let u10, u100, u1k, u10k, o10k = Sigil.Line_shadow.bin_fractions line in
      pf "%-14s %s" name
        (Analysis.Table.stacked_bar
           [ ("<10", u10); ("<100", u100); ("<1k", u1k); ("<10k", u10k); (">10k", o10k) ]))
    parsec

(* ------------------------------------------------------------------ *)
(* Figure 13: function-level parallelism                               *)
(* ------------------------------------------------------------------ *)

let fig13_benchmarks =
  [ "blackscholes"; "bodytrack"; "canneal"; "dedup"; "fluidanimate"; "streamcluster";
    "swaptions"; "libquantum" ]

let fig13 () =
  banner "Fig 13: maximum speedup based on function-level parallelism";
  let results =
    pmap
      (fun name ->
        let run = events_run name small in
        (name, run, Driver.critpath run))
      fig13_benchmarks
  in
  print_string
    (Analysis.Table.bar_chart
       ~fmt:(fun v -> Printf.sprintf "%.1fx" v)
       (List.map (fun (n, _, cp) -> (n, Analysis.Critpath.parallelism cp)) results));
  List.iter
    (fun name ->
      let _, run, cp = List.find (fun (n, _, _) -> n = name) results in
      let path =
        Analysis.Critpath.critical_path_contexts cp
        |> List.map (Driver.fn_name run)
        |> List.filter (fun n -> n <> "<root>")
      in
      let shown = List.filteri (fun i _ -> i < 8) path in
      pf "%s critical path (leaf -> main): %s%s\n" name
        (String.concat " -> " shown)
        (if List.length path > 8 then " -> ..." else ""))
    [ "streamcluster"; "fluidanimate" ];
  (* scheduling-slot application: speedup saturates at the parallelism limit *)
  pf "\nlist-scheduling the chains onto N cores (speedup / utilization):\n";
  pf "%-14s" "benchmark";
  List.iter (fun cores -> pf "  %12s" (Printf.sprintf "%d cores" cores)) [ 2; 4; 8; 16 ];
  pf "\n";
  List.iter
    (fun (name, _, cp) ->
      pf "%-14s" name;
      List.iter
        (fun cores ->
          let s = Analysis.Critpath.schedule cp ~cores in
          pf "  %5.1fx %4.0f%%" s.Analysis.Critpath.speedup
            (100.0 *. s.Analysis.Critpath.utilization))
        [ 2; 4; 8; 16 ];
      pf "\n")
    results

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the code path behind each experiment      *)
(* ------------------------------------------------------------------ *)

let microbenches () =
  banner "Microbenchmarks (Bechamel): per-event costs behind each figure";
  (* figs 4/5: tool dispatch cost per memory event *)
  let mk_machine tools =
    let m = Dbi.Machine.create ~call_overhead:0 () in
    List.iter (fun make -> Dbi.Machine.attach m (make m)) tools;
    ignore (Dbi.Machine.enter m "main");
    m
  in
  let native_m = mk_machine [] in
  let sigil_m = mk_machine [ (fun m -> Sigil.Tool.tool (Sigil.Tool.create m)) ] in
  let sigil_perbyte_m =
    mk_machine
      [
        (fun m ->
          Sigil.Tool.tool
            (Sigil.Tool.create ~options:Sigil.Options.(with_per_byte_shadow default) m));
      ]
  in
  let sigil_reuse_m =
    mk_machine
      [ (fun m -> Sigil.Tool.tool (Sigil.Tool.create ~options:Sigil.Options.(with_reuse default) m)) ]
  in
  let cg_m = mk_machine [ (fun m -> Callgrind.Tool.tool (Callgrind.Tool.create m)) ] in
  let counter = ref 0 in
  let rw m () =
    incr counter;
    let addr = 0x200000 + (!counter land 0xFFFF) in
    Dbi.Machine.write m addr 8;
    Dbi.Machine.read m addr 8
  in
  pf "fig4/fig5 (8-byte write+read event, per tool):\n";
  let fig4_rows =
    microbench ~name:"fig4_slowdown"
      [
        Test.make ~name:"native" (Staged.stage (rw native_m));
        Test.make ~name:"callgrind" (Staged.stage (rw cg_m));
        Test.make ~name:"sigil" (Staged.stage (rw sigil_m));
        Test.make ~name:"sigil-perbyte" (Staged.stage (rw sigil_perbyte_m));
        Test.make ~name:"sigil+reuse" (Staged.stage (rw sigil_reuse_m));
      ]
  in
  let sigil_ns = ns_of fig4_rows "sigil" and perbyte_ns = ns_of fig4_rows "sigil-perbyte" in
  pf "  range-batched sigil vs per-byte baseline: %.2fx\n" (perbyte_ns /. sigil_ns);
  json_add_obj "fig4_events_per_sec"
    (List.map
       (fun leaf -> (leaf, json_num (events_per_sec (ns_of fig4_rows leaf))))
       [ "native"; "callgrind"; "sigil"; "sigil-perbyte"; "sigil+reuse" ]);
  json_add "fig4_range_speedup_vs_per_byte" (Printf.sprintf "%.2f" (perbyte_ns /. sigil_ns));

  (* fig 6: shadow chunk allocation *)
  let shadow = Sigil.Shadow.create () in
  let chunk_counter = ref 0 in
  pf "fig6 (shadow memory):\n";
  let fig6_rows =
    microbench ~name:"fig6_memory"
      [
        Test.make ~name:"chunk cold touch"
          (Staged.stage (fun () ->
               chunk_counter := (!chunk_counter + 1) land 0xFFFF;
               Sigil.Shadow.write shadow ~ctx:1 ~call:1 ~now:0 (!chunk_counter * Sigil.Shadow.chunk_bytes)));
        Test.make ~name:"byte re-touch"
          (Staged.stage (fun () -> Sigil.Shadow.write shadow ~ctx:1 ~call:1 ~now:0 64));
      ]
  in
  ignore fig6_rows;

  (* fig 7 / tables: graph construction and trimming on a real profile *)
  let run = paired_run "canneal" small in
  pf "fig7/table2/table3 (post-processing on the canneal profile):\n";
  ignore @@ microbench ~name:"fig7_partition"
    [
      Test.make ~name:"Cdfg.build"
        (Staged.stage (fun () ->
             ignore (Analysis.Cdfg.build ~callgrind:(Driver.callgrind run) (Driver.sigil run))));
      (let cdfg = Analysis.Cdfg.build ~callgrind:(Driver.callgrind run) (Driver.sigil run) in
       Test.make ~name:"Partition.trim"
         (Staged.stage (fun () -> ignore (Analysis.Partition.trim cdfg))));
    ];

  (* figs 8-11: reuse-mode shadow reads *)
  let reuse_shadow = Sigil.Shadow.create ~reuse:true () in
  let t = ref 0 in
  pf "fig8-fig11 (reuse-mode shadow read):\n";
  ignore @@ microbench ~name:"fig8_reuse"
    [
      Test.make ~name:"read same episode"
        (Staged.stage (fun () ->
             incr t;
             ignore (Sigil.Shadow.read reuse_shadow ~ctx:1 ~call:1 ~now:!t 128)));
      Test.make ~name:"read alternating readers"
        (Staged.stage (fun () ->
             incr t;
             ignore (Sigil.Shadow.read reuse_shadow ~ctx:(1 + (!t land 1)) ~call:1 ~now:!t 256)));
    ];

  (* fig 12: line shadowing *)
  let line = Sigil.Line_shadow.create () in
  pf "fig12 (line-granularity touch):\n";
  ignore @@ microbench ~name:"fig12_line"
    [
      Test.make ~name:"line touch"
        (Staged.stage (fun () ->
             incr t;
             Sigil.Line_shadow.touch line ~now:!t (!t land 0xFFFF) 8));
    ];

  (* fig 13: event logging and chain building *)
  let log = Option.get (Sigil.Tool.event_log (Driver.sigil (events_run "libquantum" small))) in
  pf "fig13 (event-file post-processing, whole libquantum log):\n";
  ignore @@ microbench ~name:"fig13_critpath"
    [
      Test.make ~name:"Critpath.analyze"
        (Staged.stage (fun () -> ignore (Analysis.Critpath.analyze log)));
    ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                            *)
(* ------------------------------------------------------------------ *)

let ablation_shadow_layout () =
  banner "Ablation: two-level shadow table vs flat hashtable";
  (* same access pattern against both layouts *)
  let two_level = Sigil.Shadow.create () in
  let flat : (int, int) Hashtbl.t = Hashtbl.create 65536 in
  let t = ref 0 in
  ignore @@ microbench ~name:"ablation_shadow_layout"
    [
      Test.make ~name:"two-level write"
        (Staged.stage (fun () ->
             incr t;
             Sigil.Shadow.write two_level ~ctx:1 ~call:1 ~now:!t (!t land 0xFFFFF)));
      Test.make ~name:"flat hashtable write"
        (Staged.stage (fun () ->
             incr t;
             Hashtbl.replace flat (!t land 0xFFFFF) 1));
    ];
  pf
    "The two-level table also gives O(1) range flushes at chunk granularity,\n\
     which the FIFO limiter and end-of-run flush depend on.\n"

let ablation_memory_limit () =
  banner "Ablation: FIFO memory limiter on/off (dedup, simsmall)";
  let w = workload "dedup" in
  let run options =
    let t0 = Dbi.Runner.monotonic_s () in
    let r = Driver.run_workload ~options w small in
    (r, Dbi.Runner.monotonic_s () -. t0)
  in
  match pmap run [ Sigil.Options.default; Sigil.Options.with_max_chunks Sigil.Options.default 64 ] with
  | [ (unlimited, t_unl); (limited, t_lim) ] ->
    let footprint r = float_of_int (Sigil.Tool.shadow_footprint_peak_bytes (Driver.sigil r)) /. 1e6 in
    let unique r = fst (Sigil.Profile.totals (Sigil.Tool.profile (Driver.sigil r))) in
    pf "unlimited: %.1f MB peak, %.3fs, %d unique read bytes\n" (footprint unlimited) t_unl
      (unique unlimited);
    pf "limited:   %.1f MB peak, %.3fs, %d unique read bytes (%d evictions)\n"
      (footprint limited) t_lim (unique limited)
      (Sigil.Tool.shadow_evictions (Driver.sigil limited));
    pf "accuracy loss on unique counts: %.3f%%\n"
      (100.0
      *. Float.abs (float_of_int (unique limited - unique unlimited))
      /. float_of_int (max 1 (unique unlimited)))
  | _ -> assert false

let ablation_reader_set () =
  banner "Ablation: last-reader heuristic vs exact reader sets";
  (* worst case for the heuristic: one long call of f whose re-reads are
     interleaved with another reader, so the single last-reader pointer
     never sees f as "the last reader" even though this very call already
     consumed the byte *)
  let adversarial m =
    Dbi.Guest.call m "main" (fun () ->
        let a = Dbi.Guest.alloc m 64 in
        Dbi.Guest.call m "w" (fun () -> Dbi.Guest.write m a 8);
        Dbi.Guest.call m "f" (fun () ->
            for _ = 1 to 50 do
              Dbi.Guest.read m a 8;
              Dbi.Guest.call m "g" (fun () -> Dbi.Guest.read m a 8)
            done))
  in
  let compare_counts body label =
    let exact = Exact_shadow.create () in
    let sigil_tool = ref None in
    let _ =
      Dbi.Runner.run ~call_overhead:0
        ~tools:
          [
            (fun m ->
              let t = Sigil.Tool.create m in
              sigil_tool := Some t;
              Sigil.Tool.tool t);
            Exact_shadow.tool exact;
          ]
        body
    in
    let heuristic = fst (Sigil.Profile.totals (Sigil.Tool.profile (Option.get !sigil_tool))) in
    let truth = Exact_shadow.unique_reads exact in
    pf "%-28s heuristic unique: %8d   exact unique: %8d   overcount: %+.1f%%\n" label heuristic
      truth
      (100.0 *. float_of_int (heuristic - truth) /. float_of_int (max 1 truth))
  in
  compare_counts adversarial "adversarial alternation";
  let w = workload "canneal" in
  compare_counts (fun m -> w.Workloads.Workload.run m small) "canneal simsmall";
  pf
    "The single last-reader pointer (Table I) counts interleaved re-reads as\n\
     unique; real workloads rarely interleave that tightly, so the gap stays small.\n"

let ablation_range_batching () =
  banner "Ablation: range-batched shadow engine vs per-byte reference";
  (* identical machines, identical access stream; only the engine differs.
     8 B is the fig4 event; 64 B approximates a vector/line copy. *)
  let mk options =
    let m = Dbi.Machine.create ~call_overhead:0 () in
    Dbi.Machine.attach m (Sigil.Tool.tool (Sigil.Tool.create ~options m));
    ignore (Dbi.Machine.enter m "main");
    m
  in
  let range_m = mk Sigil.Options.default in
  let perbyte_m = mk Sigil.Options.(with_per_byte_shadow default) in
  let counter = ref 0 in
  let rw m size () =
    incr counter;
    let addr = 0x200000 + (!counter land 0xFFFF) in
    Dbi.Machine.write m addr size;
    Dbi.Machine.read m addr size
  in
  let rows =
    microbench ~name:"ablation_range_batching"
      [
        Test.make ~name:"range 8B rw" (Staged.stage (rw range_m 8));
        Test.make ~name:"per-byte 8B rw" (Staged.stage (rw perbyte_m 8));
        Test.make ~name:"range 64B rw" (Staged.stage (rw range_m 64));
        Test.make ~name:"per-byte 64B rw" (Staged.stage (rw perbyte_m 64));
      ]
  in
  let speedup sz =
    ns_of rows (Printf.sprintf "per-byte %s rw" sz) /. ns_of rows (Printf.sprintf "range %s rw" sz)
  in
  pf "range vs per-byte speedup: %.2fx at 8 B, %.2fx at 64 B\n" (speedup "8B") (speedup "64B");
  json_add_obj "ablation_range_vs_per_byte"
    [
      ("range_8b_events_per_sec", json_num (events_per_sec (ns_of rows "range 8B rw")));
      ("per_byte_8b_events_per_sec", json_num (events_per_sec (ns_of rows "per-byte 8B rw")));
      ("range_64b_events_per_sec", json_num (events_per_sec (ns_of rows "range 64B rw")));
      ("per_byte_64b_events_per_sec", json_num (events_per_sec (ns_of rows "per-byte 64B rw")));
      ("speedup_8b", Printf.sprintf "%.2f" (speedup "8B"));
      ("speedup_64b", Printf.sprintf "%.2f" (speedup "64B"));
    ];
  pf
    "One chunk lookup per span and one profile/transfer update per coalesced\n\
     run replace the per-byte table walk and hashtable hit.\n"

let ablation_granularity () =
  banner "Ablation: byte vs line shadow granularity (x264, simsmall)";
  let w = workload "x264" in
  let timed options =
    let t0 = Dbi.Runner.monotonic_s () in
    let r = Driver.run_workload ~options w small in
    (r, Dbi.Runner.monotonic_s () -. t0)
  in
  match pmap timed [ Sigil.Options.default; Sigil.Options.with_line_size Sigil.Options.default 64 ] with
  | [ (byte_run, t_byte); (line_run, t_line) ] ->
    pf "byte granularity: %.3fs, %.1f MB shadow\n" t_byte
      (float_of_int (Sigil.Tool.shadow_footprint_peak_bytes (Driver.sigil byte_run)) /. 1e6);
    pf "line granularity: %.3fs, %d line records\n" t_line
      (Sigil.Line_shadow.lines (Option.get (Sigil.Tool.line_shadow (Driver.sigil line_run))));
    pf "line mode trades per-function attribution for footprint and speed.\n"
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Events: framed binary traces vs text (sizes, encode/decode rates)   *)
(* ------------------------------------------------------------------ *)

let events_bench () =
  banner "Events: framed binary event traces vs text (simsmall)";
  let file_size path = Int64.to_int (In_channel.with_open_bin path In_channel.length) in
  let rows =
    (* timed sequentially so the throughput numbers are not cross-domain
       noise; the instrumented runs themselves come from the cache *)
    List.map
      (fun name ->
        let run = events_run name small in
        let log = Option.get (Sigil.Tool.event_log (Driver.sigil run)) in
        let entries = Sigil.Event_log.length log in
        let txt = Filename.temp_file ("bench_events_" ^ name) ".txt" in
        let tf = Filename.temp_file ("bench_events_" ^ name) ".tf" in
        Sigil.Event_log.save log txt;
        let m = run.Driver.machine in
        let t0 = Dbi.Runner.monotonic_s () in
        Tracefile.Writer.write_log ~symbols:(Dbi.Machine.symbols m)
          ~contexts:(Dbi.Machine.contexts m) log tf;
        let encode_s = Dbi.Runner.monotonic_s () -. t0 in
        let r = Tracefile.Reader.open_file tf in
        let seen = ref 0 in
        let t1 = Dbi.Runner.monotonic_s () in
        Tracefile.Reader.iter r (fun _ -> incr seen);
        let decode_s = Dbi.Runner.monotonic_s () -. t1 in
        Tracefile.Reader.close r;
        if !seen <> entries then
          failwith (Printf.sprintf "events bench: %s decoded %d of %d" name !seen entries);
        let text_b = file_size txt and bin_b = file_size tf in
        Sys.remove txt;
        Sys.remove tf;
        (name, entries, text_b, bin_b, encode_s, decode_s))
      parsec
  in
  let mrec n s = float_of_int n /. Float.max s 1e-9 /. 1e6 in
  pf "%-14s %9s %10s %10s %6s %11s %11s\n" "workload" "entries" "text B" "binary B" "ratio"
    "enc Mrec/s" "dec Mrec/s";
  List.iter
    (fun (name, entries, text_b, bin_b, enc_s, dec_s) ->
      pf "%-14s %9d %10d %10d %5.1fx %11.1f %11.1f\n" name entries text_b bin_b
        (float_of_int text_b /. float_of_int bin_b)
        (mrec entries enc_s) (mrec entries dec_s))
    rows;
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  let total_text = tot (fun (_, _, t, _, _, _) -> t) in
  let total_bin = tot (fun (_, _, _, b, _, _) -> b) in
  pf "total: %d B text, %d B binary (%.1fx smaller)\n" total_text total_bin
    (float_of_int total_text /. float_of_int total_bin);
  (* the sink the tool streams through during a run buffers at most one
     chunk: demonstrate on the paper's memory-limit workload *)
  let stream_tf = Filename.temp_file "bench_events_stream" ".tf" in
  let options = Sigil.Options.with_events (baseline_options "dedup") in
  let w = Tracefile.Writer.create ~options stream_tf in
  let _ =
    Driver.run_workload ~options ~event_sink:(Tracefile.Writer.sink w) (workload "dedup") small
  in
  Tracefile.Writer.close w;
  let stream_records = Tracefile.Writer.entries w in
  let stream_chunks = Tracefile.Writer.chunks w in
  let stream_peak = Tracefile.Writer.peak_buffer_bytes w in
  Sys.remove stream_tf;
  pf "streaming sink (dedup): %d records in %d chunks, peak buffer %d B (chunk target %d B)\n"
    stream_records stream_chunks stream_peak Tracefile.Frame.default_chunk_bytes;
  let oc = open_out "BENCH_events.json" in
  Printf.fprintf oc "{\n  \"scale\": \"simsmall\",\n  \"workloads\": [\n";
  List.iteri
    (fun i (name, entries, text_b, bin_b, enc_s, dec_s) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"entries\": %d, \"text_bytes\": %d, \"binary_bytes\": %d, \
         \"ratio\": %.2f, \"encode_mrec_s\": %.2f, \"decode_mrec_s\": %.2f}%s\n"
        name entries text_b bin_b
        (float_of_int text_b /. float_of_int bin_b)
        (mrec entries enc_s) (mrec entries dec_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"total_text_bytes\": %d,\n\
    \  \"total_binary_bytes\": %d,\n\
    \  \"total_ratio\": %.2f,\n\
    \  \"stream\": {\"workload\": \"dedup\", \"records\": %d, \"chunks\": %d, \
     \"peak_buffer_bytes\": %d, \"chunk_target_bytes\": %d}\n\
     }\n"
    total_text total_bin
    (float_of_int total_text /. float_of_int total_bin)
    stream_records stream_chunks stream_peak Tracefile.Frame.default_chunk_bytes;
  close_out oc;
  pf "wrote BENCH_events.json\n"

(* ------------------------------------------------------------------ *)
(* Shadow bench: telemetry overhead guard                              *)
(* ------------------------------------------------------------------ *)

(* failed workloads (suite's Isolate policy) or tripped guards; a non-zero
   count turns into exit code 3 (valid but incomplete/flagged results) at
   the end of the run *)
let suite_failures = ref 0

(* The probes themselves (mutable int bumps in the shadow engine, machine
   and writer) are always compiled in; Options.collect_stats only adds
   snapshot assembly at run end. This section measures exactly that
   stats-on vs stats-off delta on the shadow-heaviest workloads and guards
   it below [telemetry_guard_pct]. *)
let telemetry_guard_pct = 3.0
let telemetry_workloads = [ "canneal"; "dedup"; "streamcluster" ]

let telemetry_overhead_bench () =
  banner "Shadow bench: telemetry overhead (stats on vs off, simsmall)";
  (* simsmall runs last tens of milliseconds; min-of-5 suppresses scheduler
     noise that would otherwise dwarf the effect being guarded *)
  let time options name =
    best 5 (fun () -> (Driver.run_workload ~options (workload name) small).Driver.elapsed_s)
  in
  let rows =
    List.map
      (fun name ->
        let base_s = time (baseline_options name) name in
        let stats_s = time (Sigil.Options.with_stats (baseline_options name)) name in
        (name, base_s, stats_s))
      telemetry_workloads
  in
  List.iter
    (fun (name, base_s, stats_s) ->
      pf "%-14s base %.4fs   stats %.4fs   %+.2f%%\n" name base_s stats_s
        (100.0 *. (stats_s -. base_s) /. Float.max base_s 1e-9))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let base_total = tot (fun (_, b, _) -> b) and stats_total = tot (fun (_, _, s) -> s) in
  let overhead_pct = 100.0 *. (stats_total -. base_total) /. Float.max base_total 1e-9 in
  let ok = overhead_pct < telemetry_guard_pct in
  pf "total: base %.4fs, stats %.4fs -> overhead %+.2f%% (guard < %.1f%%): %s\n" base_total
    stats_total overhead_pct telemetry_guard_pct
    (if ok then "ok" else "EXCEEDED");
  let oc = open_out "BENCH_telemetry.json" in
  Printf.fprintf oc "{\n  \"scale\": \"simsmall\",\n  \"workloads\": [\n";
  List.iteri
    (fun i (name, base_s, stats_s) ->
      Printf.fprintf oc "    {\"name\": %S, \"base_s\": %.4f, \"stats_s\": %.4f}%s\n" name base_s
        stats_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"base_total_s\": %.4f,\n\
    \  \"stats_total_s\": %.4f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"guard_pct\": %.1f,\n\
    \  \"ok\": %b\n\
     }\n"
    base_total stats_total overhead_pct telemetry_guard_pct ok;
  close_out oc;
  pf "wrote BENCH_telemetry.json\n";
  if not ok then incr suite_failures

(* ------------------------------------------------------------------ *)
(* Suite: sequential vs domain-parallel full-evaluation wall-clock     *)
(* ------------------------------------------------------------------ *)

(* set from --domains; the suite section sizes its own pool with it so the
   comparison measures exactly N domains *)
let suite_domains = ref (Pool.recommended ())

let suite_bench () =
  let domains = !suite_domains in
  banner
    (Printf.sprintf "Suite: full PARSEC sweep, sequential vs %d-domain pool (simsmall)" domains);
  (* the Fig 4-7 configuration: Sigil on top of Callgrind, dedup limited *)
  let jobs () =
    List.map
      (fun name ->
        Driver.job ~options:(baseline_options name) ~with_callgrind:true (workload name) small)
      parsec
  in
  (* fingerprint the surviving runs only — failed jobs are reported, and
     the sequential/parallel comparison stays meaningful over the rest *)
  let fingerprint results =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (List.filter_map
               (function
                 | Ok r -> Some (Sigil.Profile_io.to_string (Driver.sigil r))
                 | Error _ -> None)
               results)))
  in
  let report_failures which results =
    List.iter
      (function
        | Ok _ -> ()
        | Error e ->
          incr suite_failures;
          pf "FAILED (%s): %s\n" which (Driver.Run_error.to_string e))
      results
  in
  let t0 = Dbi.Runner.monotonic_s () in
  let seq = Driver.run_many ~fault_policy:Driver.Isolate (jobs ()) in
  let sequential_s = Dbi.Runner.monotonic_s () -. t0 in
  let t1 = Dbi.Runner.monotonic_s () in
  let par =
    if domains > 1 then
      Pool.with_pool ~domains (fun p ->
          Driver.run_many ~pool:p ~fault_policy:Driver.Isolate (jobs ()))
    else Driver.run_many ~fault_policy:Driver.Isolate (jobs ())
  in
  let parallel_s = Dbi.Runner.monotonic_s () -. t1 in
  report_failures "sequential" seq;
  report_failures "parallel" par;
  let fp_seq = fingerprint seq and fp_par = fingerprint par in
  let speedup = sequential_s /. Float.max parallel_s 1e-9 in
  pf "%d workloads, %d domains (host reports %d cores)\n" (List.length parsec) domains
    (Domain.recommended_domain_count ());
  pf "sequential: %.3fs   parallel: %.3fs   speedup: %.2fx\n" sequential_s parallel_s speedup;
  pf "profile fingerprint: sequential %s, parallel %s -> %s\n" fp_seq fp_par
    (if fp_seq = fp_par then "bit-identical" else "MISMATCH");
  let oc = open_out "BENCH_suite.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workloads\": %d,\n\
    \  \"scale\": \"simsmall\",\n\
    \  \"domains\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"sequential_s\": %.3f,\n\
    \  \"parallel_s\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"bit_identical\": %b\n\
     }\n"
    (List.length parsec) domains
    (Domain.recommended_domain_count ())
    sequential_s parallel_s speedup (fp_seq = fp_par);
  close_out oc;
  pf "wrote BENCH_suite.json\n";
  if fp_seq <> fp_par then
    failwith "suite determinism violated: parallel profiles differ from sequential"

(* ------------------------------------------------------------------ *)

(* Cached runs the selected sections will ask for, warmed concurrently so
   the sections themselves (which print, and therefore stay on the main
   domain) find them ready. *)
let prewarm selected pool =
  let thunk f = (fun () -> ignore (f ())) in
  let thunks =
    List.concat_map
      (fun (section, _) ->
        match section with
        | "fig4" ->
          List.concat_map
            (fun n ->
              [ thunk (fun () -> paired_run n small); thunk (fun () -> paired_run n medium) ])
            parsec
        | "fig7" -> List.map (fun n -> thunk (fun () -> paired_run n small)) parsec
        | "fig8" -> List.map (fun n -> thunk (fun () -> reuse_run n small)) parsec
        | "fig12" -> List.map (fun n -> thunk (fun () -> line_run n small)) parsec
        | "fig13" -> List.map (fun n -> thunk (fun () -> events_run n small)) fig13_benchmarks
        | "events" -> List.map (fun n -> thunk (fun () -> events_run n small)) parsec
        | "micro" ->
          [ thunk (fun () -> paired_run "canneal" small);
            thunk (fun () -> events_run "libquantum" small) ]
        | "shadow" ->
          (* overhead timings must not share the cache; nothing to prewarm,
             but warm the code paths once so JIT-free OCaml cold-start cost
             (page faults, lazy symbol resolution) lands outside the timed
             region *)
          List.map
            (fun n -> thunk (fun () -> Driver.run_workload ~options:(baseline_options n) (workload n) small))
            telemetry_workloads
        | _ -> [])
      selected
  in
  if thunks <> [] then begin
    pf "prewarming %d cached runs across %d domains\n%!" (List.length thunks) (Pool.size pool);
    ignore (Pool.run pool thunks)
  end

let sections =
  [
    ("fig4", fig4_5_6);
    ("fig7", fig7_tables);
    ("fig8", fig8_to_11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("micro", microbenches);
    ("layout", ablation_shadow_layout);
    ("memlimit", ablation_memory_limit);
    ("readerset", ablation_reader_set);
    ("range", ablation_range_batching);
    ("granularity", ablation_granularity);
    ("events", events_bench);
    ("shadow", telemetry_overhead_bench);
    ("suite", suite_bench);
  ]

(* --stats-out FILE: run the full suite with telemetry and dump the
   sigil-stats/1 document (same format as sigil_run --stats-out). *)
let stats_sweep path =
  banner "Stats sweep: full PARSEC suite with telemetry (simsmall)";
  let jobs =
    List.map
      (fun name ->
        Driver.job
          ~options:(Sigil.Options.with_stats (baseline_options name))
          (workload name) small)
      parsec
  in
  let results = Driver.run_many ?pool:!Bench_util.pool ~fault_policy:Driver.Isolate jobs in
  List.iter
    (function
      | Ok _ -> ()
      | Error e ->
        incr suite_failures;
        pf "FAILED (stats sweep): %s\n" (Driver.Run_error.to_string e))
    results;
  Driver.Stats.write_json ?pool:!Bench_util.pool ~scale:small (List.combine parsec results) path;
  pf "wrote %s\n" path

(* dune exec bench/main.exe -- [--only sec1,sec2] [--domains N]
   [--stats-out FILE]; default runs everything on a Pool.recommended-sized
   pool. BENCH_shadow.json collects whatever the selected sections
   measured; the suite section additionally writes BENCH_suite.json, the
   shadow section BENCH_telemetry.json, and --stats-out dumps the
   harness's own telemetry sweep. *)
let () =
  let t0 = Dbi.Runner.monotonic_s () in
  let argv = Array.to_list Sys.argv in
  let stats_out =
    let rec parse = function
      | "--stats-out" :: v :: _ -> Some v
      | _ :: rest -> parse rest
      | [] -> None
    in
    parse argv
  in
  let only =
    let rec parse = function
      | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
      | _ :: rest -> parse rest
      | [] -> None
    in
    parse argv
  in
  let domains =
    let rec parse = function
      | "--domains" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | Some _ | None -> failwith (Printf.sprintf "--domains: bad count %S" v))
      | _ :: rest -> parse rest
      | [] -> Pool.recommended ()
    in
    parse argv
  in
  suite_domains := domains;
  let pool = if domains > 1 then Some (Pool.create ~domains ()) else None in
  Bench_util.set_pool pool;
  let selected =
    match only with
    | None -> sections
    | Some names ->
      List.iter
        (fun n ->
          if not (List.mem_assoc n sections) then
            failwith
              (Printf.sprintf "unknown section %S (have: %s)" n
                 (String.concat ", " (List.map fst sections))))
        names;
      List.filter (fun (n, _) -> List.mem n names) sections
  in
  (match pool with Some p -> prewarm selected p | None -> ());
  List.iter (fun (_, f) -> f ()) selected;
  Option.iter stats_sweep stats_out;
  write_bench_json "BENCH_shadow.json";
  (match pool with Some p -> Pool.shutdown p | None -> ());
  banner
    (Printf.sprintf "done in %.1fs (%d domain%s)"
       (Dbi.Runner.monotonic_s () -. t0)
       domains
       (if domains = 1 then "" else "s"));
  (* distinct from a crash (any other non-zero): results above are valid
     but incomplete *)
  if !suite_failures > 0 then exit 3
