(* Quickstart: write a tiny guest program against the Dbi API, run it under
   Sigil, and read the communication profile.

     dune exec examples/quickstart.exe

   The program below is the paper's running example in miniature: a
   producer fills a buffer, a consumer reads it twice (so half the traffic
   is re-use, not "true" communication), and a local scratch value never
   leaves the consumer. *)

let program m =
  Dbi.Guest.call m "main" (fun () ->
      let buf = Dbi.Guest.alloc m 1024 in
      Dbi.Guest.call m "producer" (fun () ->
          Dbi.Guest.iop m 200;
          Dbi.Guest.write_range m buf 1024);
      Dbi.Guest.call m "consumer" (fun () ->
          Dbi.Guest.read_range m buf 1024;
          (* re-read: an accelerator with an internal buffer would not
             fetch this again *)
          Dbi.Guest.read_range m buf 1024;
          Dbi.Guest.flop m 500;
          let scratch = Dbi.Guest.alloc m 8 in
          Dbi.Guest.write m scratch 8;
          Dbi.Guest.read m scratch 8);
      Dbi.Guest.free m buf)

let () =
  (* attach the Sigil tool, Valgrind-style, and run *)
  let sigil = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            sigil := Some t;
            Sigil.Tool.tool t);
        ]
      program
  in
  let tool = Option.get !sigil in

  Format.printf "Aggregate profile (per calling context):@.@.";
  Sigil.Report.pp Format.std_formatter tool;

  Format.printf "@.Communication edges (who feeds whom, unique vs total bytes):@.@.";
  Sigil.Report.pp_edges Format.std_formatter tool;

  (* the numbers to notice *)
  let profile = Sigil.Tool.profile tool in
  let machine = Sigil.Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  Dbi.Context.iter contexts (fun ctx ->
      if
        ctx <> Dbi.Context.root
        && Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx) = "consumer"
      then begin
        let s = Sigil.Profile.stats profile ctx in
        Format.printf
          "@.The consumer read %d input bytes in total, but only %d are unique —@.an \
           accelerator for it needs a quarter of the naive bandwidth estimate.@."
          (s.Sigil.Profile.input_unique + s.Sigil.Profile.input_nonunique)
          s.Sigil.Profile.input_unique
      end)
