(* Critical-path case study (paper §IV-C): record event files, build
   dependency chains, and compare the function-level parallelism limit
   across workloads (Fig 13), including the paper's two spotlights:
   streamcluster's PRNG chain and fluidanimate's single-function path.

     dune exec examples/critpath_study.exe *)

let benchmarks =
  [ "blackscholes"; "bodytrack"; "canneal"; "dedup"; "fluidanimate"; "streamcluster";
    "swaptions"; "libquantum" ]

let analyze name =
  match Driver.run_named ~options:Sigil.Options.(with_events default) name Workloads.Scale.Simsmall with
  | Error e -> failwith e
  | Ok r -> (r, Driver.critpath r)

let () =
  let results = List.map (fun name -> (name, analyze name)) benchmarks in

  print_string
    (Analysis.Table.section "Maximum speedup based on function-level parallelism (Fig 13)");
  print_string
    (Analysis.Table.bar_chart
       ~fmt:(fun v -> Printf.sprintf "%.1fx" v)
       (List.map (fun (name, (_, cp)) -> (name, Analysis.Critpath.parallelism cp)) results));

  (* the paper's two drill-downs *)
  List.iter
    (fun name ->
      let r, cp = List.assoc name results in
      let path =
        Analysis.Critpath.critical_path_contexts cp
        |> List.map (Driver.fn_name r)
        |> List.filter (fun n -> n <> "<root>")
      in
      Printf.printf "\n%s critical path (leaf -> main):\n  %s\n" name (String.concat " -> " path);
      Printf.printf "  serial %d ops, critical path %d ops, limit %.1fx\n"
        (Analysis.Critpath.serial_length cp)
        (Analysis.Critpath.critical_path_length cp)
        (Analysis.Critpath.parallelism cp))
    [ "streamcluster"; "fluidanimate" ];

  print_endline
    "\nstreamcluster is many short paths serialized only by the PRNG state walking\n\
     drand48_iterate -> nrand48_r -> lrand48; fluidanimate is one long chain of\n\
     ComputeForces calls, so accelerating that single function is the only lever.";

  (* scheduling slots: map the chains onto a fixed number of cores *)
  let name = "streamcluster" in
  let _, cp = List.assoc name results in
  print_string
    (Analysis.Table.section
       (Printf.sprintf "%s: list-scheduling the chains onto N cores" name));
  List.iter
    (fun cores ->
      let s = Analysis.Critpath.schedule cp ~cores in
      Printf.printf "%2d cores: speedup %6.2fx  utilization %5.1f%%\n" cores
        s.Analysis.Critpath.speedup
        (100.0 *. s.Analysis.Critpath.utilization))
    [ 1; 2; 4; 8; 16; 32 ];
  print_endline
    "The schedule saturates near the Fig-13 limit: beyond that, extra cores only\n\
     idle against the critical path.";

  (* event files are a first-class artifact: save one and re-analyze it *)
  let r, cp_live = List.assoc "libquantum" results in
  let log = Option.get (Sigil.Tool.event_log (Driver.sigil r)) in
  let path = Filename.temp_file "libquantum_events" ".txt" in
  Sigil.Event_log.save log path;
  let cp_loaded = Analysis.Critpath.analyze (Sigil.Event_log.load path) in
  Printf.printf
    "\nEvent file round-trip (%s): %d records; parallelism %.2fx live vs %.2fx reloaded.\n" path
    (Sigil.Event_log.length log)
    (Analysis.Critpath.parallelism cp_live)
    (Analysis.Critpath.parallelism cp_loaded);
  Sys.remove path
