examples/reuse_study.ml: Analysis Driver List Option Printf Sigil Workloads
