examples/critpath_study.ml: Analysis Driver Filename List Option Printf Sigil String Sys Workloads
