examples/partitioning_study.ml: Analysis Driver List Printf Workloads
