examples/cache_sensitivity.ml: Analysis Cachesim Callgrind Dbi List Option Printf Workloads
