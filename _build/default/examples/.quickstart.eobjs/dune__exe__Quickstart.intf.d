examples/quickstart.mli:
