examples/reuse_study.mli:
