examples/cache_sensitivity.mli:
