examples/quickstart.ml: Dbi Format Option Sigil
