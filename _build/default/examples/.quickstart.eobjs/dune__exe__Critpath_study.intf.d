examples/critpath_study.mli:
