(* Data-reuse case study (paper §IV-B): benchmark-wide re-use breakdowns
   (Fig 8), then drill into vips — the functions contributing most re-use
   and their lifetime histograms (Figs 9-11) — and finish with the
   line-granularity mode (Fig 12).

     dune exec examples/reuse_study.exe *)

let reuse_options = Sigil.Options.(with_reuse default)

let run name ?(options = reuse_options) () =
  match Driver.run_named ~options name Workloads.Scale.Simsmall with
  | Ok r -> r
  | Error e -> failwith e

let () =
  (* Fig 8: how often is a data element re-used? *)
  print_string (Analysis.Table.section "Re-use counts of data elements (Fig 8)");
  List.iter
    (fun name ->
      let r = run name () in
      let bd = Analysis.Reuse_report.byte_breakdown (Driver.sigil r) in
      Printf.printf "%-14s %s" name
        (Analysis.Table.stacked_bar
           [
             ("zero", bd.Analysis.Reuse_report.zero);
             ("1-9", bd.Analysis.Reuse_report.one_to_nine);
             (">9", bd.Analysis.Reuse_report.over_nine);
           ]))
    [ "blackscholes"; "streamcluster"; "canneal"; "facesim"; "raytrace"; "vips" ];
  print_endline
    "\nMost intermediate data is consumed once and never read again — it does not\n\
     need to be cached at all. blackscholes and streamcluster barely re-use\n\
     anything; the physics and graphics codes do.";

  (* Figs 9-11: drill into vips *)
  let r = run "vips" () in
  let tool = Driver.sigil r in
  print_string
    (Analysis.Table.section "vips: top functions by data re-use, with avg lifetimes (Fig 9)");
  let rows = Analysis.Reuse_report.top_reusers ~n:8 tool in
  print_string
    (Analysis.Table.bar_chart
       ~fmt:(fun v -> Printf.sprintf "%.0f instrs" v)
       (List.map
          (fun (row : Analysis.Reuse_report.fn_row) ->
            (row.Analysis.Reuse_report.label, row.Analysis.Reuse_report.avg_lifetime))
          rows));
  print_endline
    "\nconv_gen keeps bytes alive across seven row sweeps (bad temporal locality,\n\
     cache-size sensitive); imb_XYZ2Lab re-reads each pixel immediately (a\n\
     scratchpad of a few bytes would do).";

  List.iter
    (fun fn ->
      print_string
        (Analysis.Table.section
           (Printf.sprintf "vips: re-use lifetime histogram of %S (Figs 10/11)" fn));
      let hist = Analysis.Reuse_report.lifetime_histogram tool fn in
      (* log-ish rendering: show counts directly, the shape is the point *)
      print_string
        (Analysis.Table.bar_chart
           ~fmt:(Printf.sprintf "%.0f")
           (List.map (fun (bin, count) -> (string_of_int bin, float_of_int count)) hist)))
    [ "conv_gen"; "imb_XYZ2Lab" ];

  (* Fig 12: line granularity *)
  print_string (Analysis.Table.section "Line-granularity re-use, 64B lines (Fig 12)");
  List.iter
    (fun name ->
      let r =
        run name ~options:(Sigil.Options.with_line_size Sigil.Options.default 64) ()
      in
      let line = Option.get (Sigil.Tool.line_shadow (Driver.sigil r)) in
      let u10, u100, u1k, u10k, o10k = Sigil.Line_shadow.bin_fractions line in
      Printf.printf "%-14s %s" name
        (Analysis.Table.stacked_bar
           [ ("<10", u10); ("<100", u100); ("<1k", u1k); ("<10k", u10k); (">10k", o10k) ]))
    [ "blackscholes"; "dedup"; "raytrace"; "streamcluster"; "x264" ]
