(* Cache-size sensitivity (paper §IV-B2): "for such functions [with large
   re-use lifetimes] the cache size will heavily determine the performance
   of the function, and indeed, of the program."

   Sigil's re-use data predicts this *without* a cache model; here we
   validate the prediction by re-running vips under the Callgrind baseline
   with different L1D sizes and comparing per-function miss rates:
   conv_gen (long lifetimes, bad temporal locality) should be sensitive,
   imb_XYZ2Lab (immediate re-use) should be flat at its compulsory misses.

     dune exec examples/cache_sensitivity.exe *)

let l1d_sizes = [ 1024; 2048; 4096; 8192; 16384 ]

let run_with_l1d size =
  let cache_config =
    {
      Cachesim.Hierarchy.default with
      Cachesim.Hierarchy.l1d = { Cachesim.Cache.size; assoc = 4; line = 64 };
    }
  in
  let w = match Workloads.Suite.find "vips" with Ok w -> w | Error e -> failwith e in
  let tool = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Callgrind.Tool.create ~cache_config m in
            tool := Some t;
            Callgrind.Tool.tool t);
        ]
      (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
  in
  Option.get !tool

let miss_rate tool fn_name =
  let machine = Callgrind.Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let reads = ref 0 and misses = ref 0 in
  Dbi.Context.iter contexts (fun ctx ->
      if
        ctx <> Dbi.Context.root
        && Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx) = fn_name
      then begin
        let c = Callgrind.Tool.cost tool ctx in
        reads := !reads + c.Callgrind.Cost.dr;
        misses := !misses + c.Callgrind.Cost.d1mr
      end);
  if !reads = 0 then 0.0 else 100.0 *. float_of_int !misses /. float_of_int !reads

let () =
  let functions = [ "conv_gen"; "imb_XYZ2Lab"; "affine_gen" ] in
  let measurements =
    List.map (fun size -> (size, run_with_l1d size)) l1d_sizes
  in
  print_string
    (Analysis.Table.section "vips: L1D read-miss rate (%) per function vs cache size");
  print_string
    (Analysis.Table.render
       ~headers:("L1D bytes" :: functions)
       (List.map
          (fun (size, tool) ->
            string_of_int size
            :: List.map (fun fn -> Printf.sprintf "%.1f%%" (miss_rate tool fn)) functions)
          measurements));
  (* quantify the sensitivity as max-min across the sweep *)
  print_newline ();
  List.iter
    (fun fn ->
      let rates = List.map (fun (_, tool) -> miss_rate tool fn) measurements in
      let worst = List.fold_left max 0.0 rates
      and best = List.fold_left min 100.0 rates in
      Printf.printf "%-12s swing: %4.1f points (%.1f%% -> %.1f%%)\n" fn (worst -. best) worst
        best)
    functions;
  print_endline
    "\nconv_gen's miss rate collapses once the cache covers its seven-row re-use\n\
     window — exactly what its Sigil lifetime histogram (Fig 10) predicts.\n\
     imb_XYZ2Lab re-reads each pixel immediately, so its rate barely moves:\n\
     the platform-independent re-use profile anticipates the cache behaviour."
