(* HW/SW partitioning case study (paper §IV-A) across several PARSEC
   workloads: trim each calltree with the max-coverage/min-communication
   heuristic, show the coverage split (Fig 7) and the best / worst
   accelerator candidates (Tables II and III).

     dune exec examples/partitioning_study.exe *)

let benchmarks = [ "blackscholes"; "bodytrack"; "canneal"; "dedup"; "ferret"; "swaptions" ]

let study name =
  let workload =
    match Workloads.Suite.find name with
    | Ok w -> w
    | Error e -> failwith e
  in
  (* one run with Sigil and Callgrind attached together: Sigil supplies
     the dependency edges, Callgrind the cycle estimates for t_sw *)
  let r = Driver.run_workload ~with_callgrind:true workload Workloads.Scale.Simsmall in
  let cdfg = Driver.cdfg r in
  let trimmed = Analysis.Partition.trim cdfg in
  (name, trimmed)

let () =
  let results = List.map study benchmarks in

  print_string (Analysis.Table.section "Coverage of trimmed-calltree leaves (Fig 7)");
  print_string
    (Analysis.Table.bar_chart
       ~fmt:(fun v -> Printf.sprintf "%.0f%%" (100.0 *. v))
       (List.map
          (fun (name, (t : Analysis.Partition.trimmed)) -> (name, t.Analysis.Partition.coverage))
          results));
  print_newline ();
  print_endline
    "Candidate functions cover most of blackscholes/bodytrack/dedup but little of\n\
     canneal/ferret/swaptions: their hot code hides in driver loops with no\n\
     accelerator-sized boundary — exactly the paper's three exceptions.";

  List.iter
    (fun (name, trimmed) ->
      let ranked = Analysis.Partition.rank trimmed in
      let render cands =
        Analysis.Table.render
          ~headers:[ "candidate"; "S(breakeven)"; "coverage" ]
          (List.map
             (fun (c : Analysis.Partition.candidate) ->
               [
                 c.Analysis.Partition.name;
                 Printf.sprintf "%.3f" c.Analysis.Partition.breakeven;
                 Printf.sprintf "%5.1f%%" (100.0 *. c.Analysis.Partition.coverage);
               ])
             cands)
      in
      print_string (Analysis.Table.section (name ^ ": best five candidates (Table II)"));
      print_string (render (Analysis.Partition.top 5 ranked));
      print_string (Analysis.Table.section (name ^ ": worst five candidates (Table III)"));
      print_string (render (Analysis.Partition.bottom 5 ranked)))
    results;

  (* sensitivity: a narrower bus punishes communication-heavy candidates *)
  let name, trimmed8 = List.hd results in
  let workload = match Workloads.Suite.find name with Ok w -> w | Error e -> failwith e in
  let r = Driver.run_workload ~with_callgrind:true workload Workloads.Scale.Simsmall in
  let trimmed1 = Analysis.Partition.trim ~bus_bytes_per_cycle:1.0 (Driver.cdfg r) in
  Printf.printf
    "\nBus sensitivity (%s): coverage %.1f%% at 8 B/cycle vs %.1f%% at 1 B/cycle.\n" name
    (100.0 *. trimmed8.Analysis.Partition.coverage)
    (100.0 *. trimmed1.Analysis.Partition.coverage)
