let run_guest body =
  let tool = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      body
  in
  Option.get !tool

(* "kernel" runs in two contexts; context 2 reads what context 1 wrote, so
   the flat view must fold that edge into local traffic. *)
let two_contexts m =
  Dbi.Guest.call m "main" (fun () ->
      let a = Dbi.Guest.alloc m 64 in
      Dbi.Guest.call m "phase1" (fun () ->
          Dbi.Guest.call m "kernel" (fun () ->
              Dbi.Guest.iop m 10;
              Dbi.Guest.write m a 8));
      Dbi.Guest.call m "phase2" (fun () ->
          Dbi.Guest.call m "kernel" (fun () ->
              Dbi.Guest.iop m 20;
              Dbi.Guest.read m a 8)))

let find rows name = List.find (fun (r : Analysis.Flat.row) -> r.Analysis.Flat.name = name) rows

let test_contexts_merged () =
  let tool = run_guest two_contexts in
  let rows = Analysis.Flat.rows tool in
  let kernel = find rows "kernel" in
  Alcotest.(check int) "two contexts" 2 kernel.Analysis.Flat.contexts;
  Alcotest.(check int) "ops summed" 30 (kernel.Analysis.Flat.int_ops + kernel.Analysis.Flat.fp_ops);
  Alcotest.(check int) "calls summed" 2 kernel.Analysis.Flat.calls

let test_same_function_edge_is_local () =
  let tool = run_guest two_contexts in
  let kernel = find (Analysis.Flat.rows tool) "kernel" in
  Alcotest.(check int) "no cross-function input" 0 kernel.Analysis.Flat.input_total;
  Alcotest.(check int) "edge folded into local" 8 kernel.Analysis.Flat.local_total

let test_program_input_attributed () =
  let tool =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "reader" (fun () -> Dbi.Guest.read m 0x300000 8)))
  in
  let reader = find (Analysis.Flat.rows tool) "reader" in
  Alcotest.(check int) "program input is input" 8 reader.Analysis.Flat.input_unique

let test_sorted_by_ops () =
  let tool = run_guest two_contexts in
  match Analysis.Flat.rows tool with
  | first :: rest ->
    List.iter
      (fun (r : Analysis.Flat.row) ->
        Alcotest.(check bool) "descending ops" true
          (first.Analysis.Flat.int_ops + first.Analysis.Flat.fp_ops
          >= r.Analysis.Flat.int_ops + r.Analysis.Flat.fp_ops))
      rest
  | [] -> Alcotest.fail "no rows"

let render f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp_output () =
  let tool = run_guest two_contexts in
  let out = render (fun ppf -> Analysis.Flat.pp ppf tool) in
  Alcotest.(check bool) "mentions kernel" true (contains out "kernel")

let test_calltree_rendering () =
  let tool = run_guest two_contexts in
  let out = render (fun ppf -> Analysis.Flat.calltree ppf tool) in
  Alcotest.(check bool) "root line" true (contains out "<root>");
  Alcotest.(check bool) "indented kernel" true (contains out "    kernel");
  Alcotest.(check bool) "inclusive ops on root" true (contains out "incl-ops=30")

let test_calltree_depth_limit () =
  let tool = run_guest two_contexts in
  let out = render (fun ppf -> Analysis.Flat.calltree ~max_depth:1 ppf tool) in
  Alcotest.(check bool) "kernel pruned" false (contains out "kernel");
  Alcotest.(check bool) "main kept" true (contains out "main")

let () =
  Alcotest.run "flat"
    [
      ( "flat",
        [
          Alcotest.test_case "contexts merged" `Quick test_contexts_merged;
          Alcotest.test_case "same-function edge is local" `Quick
            test_same_function_edge_is_local;
          Alcotest.test_case "program input attributed" `Quick test_program_input_attributed;
          Alcotest.test_case "sorted by ops" `Quick test_sorted_by_ops;
          Alcotest.test_case "pp output" `Quick test_pp_output;
          Alcotest.test_case "calltree rendering" `Quick test_calltree_rendering;
          Alcotest.test_case "calltree depth limit" `Quick test_calltree_depth_limit;
        ] );
    ]
