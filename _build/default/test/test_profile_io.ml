(* Saved profiles must reload to exactly the live run's data. *)

let run_guest body =
  let tool = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      body
  in
  Option.get !tool

let toy m =
  Dbi.Guest.call m "main" (fun () ->
      let a = Dbi.Guest.alloc m 64 in
      Dbi.Guest.call m "operator new" (fun () -> Dbi.Guest.iop m 7);
      Dbi.Guest.call m "producer" (fun () -> Dbi.Guest.write_range m a 32);
      Dbi.Guest.call m "consumer" (fun () ->
          Dbi.Guest.read_range m a 32;
          Dbi.Guest.read_range m a 32;
          Dbi.Guest.flop m 9))

let with_temp f =
  let path = Filename.temp_file "sigil_profile" ".txt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_roundtrip_stats () =
  with_temp (fun path ->
      let tool = run_guest toy in
      Sigil.Profile_io.save tool path;
      let snap = Sigil.Profile_io.load path in
      let live = Sigil.Profile_io.snapshot_of_tool tool in
      Alcotest.(check int) "same context count"
        (List.length (Sigil.Profile_io.contexts live))
        (List.length (Sigil.Profile_io.contexts snap));
      List.iter2
        (fun (a : Sigil.Profile_io.ctx_stats) (b : Sigil.Profile_io.ctx_stats) ->
          Alcotest.(check bool) "stats equal" true (a = b))
        (Sigil.Profile_io.contexts live)
        (Sigil.Profile_io.contexts snap);
      Alcotest.(check bool) "edges equal" true
        (Sigil.Profile_io.edges live = Sigil.Profile_io.edges snap);
      Alcotest.(check (pair int int)) "totals equal" (Sigil.Profile_io.totals live)
        (Sigil.Profile_io.totals snap))

let test_totals_match_live_profile () =
  with_temp (fun path ->
      let tool = run_guest toy in
      Sigil.Profile_io.save tool path;
      let snap = Sigil.Profile_io.load path in
      Alcotest.(check (pair int int)) "totals match Profile.totals"
        (Sigil.Profile.totals (Sigil.Tool.profile tool))
        (Sigil.Profile_io.totals snap))

let test_paths_preserved () =
  with_temp (fun path ->
      let tool = run_guest toy in
      Sigil.Profile_io.save tool path;
      let snap = Sigil.Profile_io.load path in
      let paths = List.map (fun (s : Sigil.Profile_io.ctx_stats) -> Sigil.Profile_io.path snap s.Sigil.Profile_io.ctx) (Sigil.Profile_io.contexts snap) in
      List.iter
        (fun expected ->
          Alcotest.(check bool) ("has " ^ expected) true (List.mem expected paths))
        [ "<root>"; "main"; "main/operator new"; "main/producer"; "main/consumer" ])

let test_children () =
  with_temp (fun path ->
      let tool = run_guest toy in
      Sigil.Profile_io.save tool path;
      let snap = Sigil.Profile_io.load path in
      let main =
        List.find
          (fun (s : Sigil.Profile_io.ctx_stats) -> Sigil.Profile_io.path snap s.Sigil.Profile_io.ctx = "main")
          (Sigil.Profile_io.contexts snap)
      in
      Alcotest.(check int) "main has three children" 3
        (List.length (Sigil.Profile_io.children snap main.Sigil.Profile_io.ctx)))

let test_workload_roundtrip () =
  with_temp (fun path ->
      let w = match Workloads.Suite.find "vips" with Ok w -> w | Error e -> Alcotest.fail e in
      let tool = run_guest (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall) in
      Sigil.Profile_io.save tool path;
      let snap = Sigil.Profile_io.load path in
      Alcotest.(check (pair int int)) "totals survive"
        (Sigil.Profile.totals (Sigil.Tool.profile tool))
        (Sigil.Profile_io.totals snap))

let test_bad_header_rejected () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "not-a-profile\n";
      close_out oc;
      match Sigil.Profile_io.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "accepted bad header")

let test_malformed_line_rejected () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "sigil-profile 1\nQ bogus\n";
      close_out oc;
      match Sigil.Profile_io.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "accepted malformed line")

let () =
  Alcotest.run "profile_io"
    [
      ( "profile_io",
        [
          Alcotest.test_case "roundtrip stats" `Quick test_roundtrip_stats;
          Alcotest.test_case "totals match live" `Quick test_totals_match_live_profile;
          Alcotest.test_case "paths preserved" `Quick test_paths_preserved;
          Alcotest.test_case "children" `Quick test_children;
          Alcotest.test_case "workload roundtrip" `Quick test_workload_roundtrip;
          Alcotest.test_case "bad header rejected" `Quick test_bad_header_rejected;
          Alcotest.test_case "malformed line rejected" `Quick test_malformed_line_rejected;
        ] );
    ]
