open Sigil

let test_local_vs_input () =
  let p = Profile.create () in
  Profile.record_read p ~producer:1 ~consumer:1 ~unique:true ~bytes:4;
  Profile.record_read p ~producer:2 ~consumer:1 ~unique:true ~bytes:8;
  Profile.record_read p ~producer:2 ~consumer:1 ~unique:false ~bytes:2;
  let s = Profile.stats p 1 in
  Alcotest.(check int) "local unique" 4 s.Profile.local_unique;
  Alcotest.(check int) "input unique" 8 s.Profile.input_unique;
  Alcotest.(check int) "input nonunique" 2 s.Profile.input_nonunique;
  Alcotest.(check int) "local nonunique" 0 s.Profile.local_nonunique

let test_edges_aggregate () =
  let p = Profile.create () in
  Profile.record_read p ~producer:2 ~consumer:1 ~unique:true ~bytes:8;
  Profile.record_read p ~producer:2 ~consumer:1 ~unique:false ~bytes:8;
  Profile.record_read p ~producer:3 ~consumer:1 ~unique:true ~bytes:4;
  (match Profile.edges p with
  | edges ->
    Alcotest.(check int) "two edges" 2 (List.length edges);
    let e21 = List.find (fun (e : Profile.edge) -> e.Profile.src = 2) edges in
    Alcotest.(check int) "total bytes" 16 e21.Profile.bytes;
    Alcotest.(check int) "unique bytes" 8 e21.Profile.unique_bytes);
  Alcotest.(check (pair int int)) "input bytes of 1" (20, 12) (Profile.input_bytes p 1);
  Alcotest.(check (pair int int)) "output bytes of 2" (16, 8) (Profile.output_bytes p 2)

let test_local_reads_make_no_edges () =
  let p = Profile.create () in
  Profile.record_read p ~producer:1 ~consumer:1 ~unique:true ~bytes:100;
  Alcotest.(check int) "no edges" 0 (List.length (Profile.edges p))

let test_ops_calls_writes () =
  let p = Profile.create () in
  Profile.record_ops p ~ctx:4 Dbi.Event.Int_op 7;
  Profile.record_ops p ~ctx:4 Dbi.Event.Fp_op 3;
  Profile.record_call p ~ctx:4;
  Profile.record_call p ~ctx:4;
  Profile.record_write p ~ctx:4 ~bytes:12;
  let s = Profile.stats p 4 in
  Alcotest.(check int) "int ops" 7 s.Profile.int_ops;
  Alcotest.(check int) "fp ops" 3 s.Profile.fp_ops;
  Alcotest.(check int) "calls" 2 s.Profile.calls;
  Alcotest.(check int) "written" 12 s.Profile.written

let test_contexts_listing () =
  let p = Profile.create () in
  Profile.record_call p ~ctx:5;
  Profile.record_call p ~ctx:2;
  Alcotest.(check (list int)) "ascending" [ 2; 5 ] (Profile.contexts p)

let test_totals () =
  let p = Profile.create () in
  Profile.record_read p ~producer:1 ~consumer:2 ~unique:true ~bytes:10;
  Profile.record_read p ~producer:2 ~consumer:2 ~unique:false ~bytes:5;
  Alcotest.(check (pair int int)) "unique, total" (10, 15) (Profile.totals p)

let test_edge_cache_consistency () =
  (* alternate between two edges; the one-entry cache must not misroute *)
  let p = Profile.create () in
  for _ = 1 to 10 do
    Profile.record_read p ~producer:1 ~consumer:3 ~unique:true ~bytes:1;
    Profile.record_read p ~producer:2 ~consumer:3 ~unique:true ~bytes:1
  done;
  let by_src src =
    List.find (fun (e : Profile.edge) -> e.Profile.src = src) (Profile.edges p)
  in
  Alcotest.(check int) "edge 1->3" 10 (by_src 1).Profile.bytes;
  Alcotest.(check int) "edge 2->3" 10 (by_src 2).Profile.bytes

let qcheck_unique_bounded =
  QCheck.Test.make ~name:"edge unique <= total" ~count:200
    QCheck.(list (triple (int_range 0 5) (int_range 0 5) bool))
    (fun reads ->
      let p = Profile.create () in
      List.iter
        (fun (producer, consumer, unique) ->
          Profile.record_read p ~producer ~consumer ~unique ~bytes:3)
        reads;
      List.for_all
        (fun (e : Profile.edge) -> e.Profile.unique_bytes <= e.Profile.bytes)
        (Profile.edges p))

let qcheck_totals_conserved =
  QCheck.Test.make ~name:"stats sum equals totals" ~count:200
    QCheck.(list (triple (int_range 0 5) (int_range 0 5) bool))
    (fun reads ->
      let p = Profile.create () in
      List.iter
        (fun (producer, consumer, unique) ->
          Profile.record_read p ~producer ~consumer ~unique ~bytes:2)
        reads;
      let unique, total = Profile.totals p in
      unique <= total && total = 2 * List.length reads)

let () =
  Alcotest.run "profile"
    [
      ( "profile",
        [
          Alcotest.test_case "local vs input" `Quick test_local_vs_input;
          Alcotest.test_case "edges aggregate" `Quick test_edges_aggregate;
          Alcotest.test_case "local reads make no edges" `Quick test_local_reads_make_no_edges;
          Alcotest.test_case "ops calls writes" `Quick test_ops_calls_writes;
          Alcotest.test_case "contexts listing" `Quick test_contexts_listing;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "edge cache consistency" `Quick test_edge_cache_consistency;
          QCheck_alcotest.to_alcotest qcheck_unique_bounded;
          QCheck_alcotest.to_alcotest qcheck_totals_conserved;
        ] );
    ]
