let run_guest ?(options = Sigil.Options.default) body =
  let tool = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      body
  in
  Option.get !tool

let toy m =
  Dbi.Guest.call m "main" (fun () ->
      let a = Dbi.Guest.alloc m 64 in
      Dbi.Guest.call m "producer" (fun () ->
          Dbi.Guest.iop m 5;
          Dbi.Guest.write_range m a 32);
      Dbi.Guest.call m "consumer" (fun () ->
          Dbi.Guest.read_range m a 32;
          Dbi.Guest.flop m 9))

let render_cdfg ?min_bytes ?max_nodes tool =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Dot.cdfg ?min_bytes ?max_nodes tool ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_cdfg_structure () =
  let tool = run_guest toy in
  let dot = render_cdfg tool in
  Alcotest.(check bool) "digraph" true (contains dot "digraph cdfg");
  Alcotest.(check bool) "producer node" true (contains dot "producer");
  Alcotest.(check bool) "bold call edges" true (contains dot "style=bold");
  Alcotest.(check bool) "dashed data edge with weight" true (contains dot "style=dashed, label=\"32/32\"")

let test_cdfg_min_bytes_filter () =
  let tool = run_guest toy in
  let dot = render_cdfg ~min_bytes:1000 tool in
  Alcotest.(check bool) "data edge filtered" false (contains dot "style=dashed")

let test_cdfg_max_nodes_keeps_ancestors () =
  let tool =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "mid" (fun () ->
                Dbi.Guest.call m "hot" (fun () -> Dbi.Guest.iop m 1000))))
  in
  let dot = render_cdfg ~max_nodes:1 tool in
  (* keeping only the hottest leaf must still pull in its call chain *)
  Alcotest.(check bool) "hot kept" true (contains dot "hot");
  Alcotest.(check bool) "ancestor kept" true (contains dot "mid")

let test_critical_path_dot () =
  let tool = run_guest ~options:Sigil.Options.(with_events default) toy in
  let cp = Analysis.Critpath.analyze (Option.get (Sigil.Tool.event_log tool)) in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Dot.critical_path tool cp ppf;
  Format.pp_print_flush ppf ();
  let dot = Buffer.contents buf in
  Alcotest.(check bool) "digraph" true (contains dot "digraph critical_path");
  Alcotest.(check bool) "self/incl labels" true (contains dot "self=")

let test_save_files () =
  let tool = run_guest ~options:Sigil.Options.(with_events default) toy in
  let cp = Analysis.Critpath.analyze (Option.get (Sigil.Tool.event_log tool)) in
  let p1 = Filename.temp_file "cdfg" ".dot" and p2 = Filename.temp_file "cp" ".dot" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists p1 then Sys.remove p1;
      if Sys.file_exists p2 then Sys.remove p2)
    (fun () ->
      Analysis.Dot.save_cdfg tool p1;
      Analysis.Dot.save_critical_path tool cp p2;
      Alcotest.(check bool) "cdfg file non-empty" true ((Unix.stat p1).Unix.st_size > 0);
      Alcotest.(check bool) "cp file non-empty" true ((Unix.stat p2).Unix.st_size > 0))

let test_name_escaping () =
  let tool =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "weird\"name\\fn" (fun () -> Dbi.Guest.iop m 5)))
  in
  let dot = render_cdfg tool in
  Alcotest.(check bool) "no raw quote in label" false (contains dot "weird\"name")

let () =
  Alcotest.run "dot"
    [
      ( "dot",
        [
          Alcotest.test_case "cdfg structure" `Quick test_cdfg_structure;
          Alcotest.test_case "min bytes filter" `Quick test_cdfg_min_bytes_filter;
          Alcotest.test_case "max nodes keeps ancestors" `Quick test_cdfg_max_nodes_keeps_ancestors;
          Alcotest.test_case "critical path dot" `Quick test_critical_path_dot;
          Alcotest.test_case "save files" `Quick test_save_files;
          Alcotest.test_case "name escaping" `Quick test_name_escaping;
        ] );
    ]
