(* Every workload must run cleanly, deterministically, and scale. *)

let run_native ?(scale = Workloads.Scale.Simsmall) (w : Workloads.Workload.t) =
  let r = Dbi.Runner.time_native (fun m -> w.Workloads.Workload.run m scale) in
  r.Dbi.Runner.machine

let test_all_run_cleanly () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let m = run_native w in
      let c = Dbi.Machine.counters m in
      Alcotest.(check bool)
        (w.Workloads.Workload.name ^ " does work")
        true
        (c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops > 10_000
        && c.Dbi.Machine.reads > 100 && c.Dbi.Machine.writes > 100
        && c.Dbi.Machine.calls > 10);
      Alcotest.(check int)
        (w.Workloads.Workload.name ^ " balanced stack")
        0 (Dbi.Machine.stack_depth m))
    Workloads.Suite.all

let test_deterministic () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let a = Dbi.Machine.counters (run_native w) in
      let b = Dbi.Machine.counters (run_native w) in
      Alcotest.(check bool) (w.Workloads.Workload.name ^ " deterministic") true (a = b))
    Workloads.Suite.all

let test_scales_grow () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let small = Dbi.Machine.now (run_native ~scale:Workloads.Scale.Simsmall w) in
      let medium = Dbi.Machine.now (run_native ~scale:Workloads.Scale.Simmedium w) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: simmedium (%d) > simsmall (%d)" w.Workloads.Workload.name medium
           small)
        true
        (medium > small * 2))
    Workloads.Suite.all

let has_function m name =
  let found = ref false in
  Dbi.Symbol.iter (Dbi.Machine.symbols m) (fun _ n -> if n = name then found := true);
  !found

let test_signature_functions_present () =
  (* the functions the paper's tables and case studies name must exist in
     the corresponding workload's symbol table *)
  let expectations =
    [
      ("blackscholes", [ "strtof"; "_ieee754_exp"; "_ieee754_expf"; "_ieee754_logf"; "__mpn_mul"; "dl_addr" ]);
      ("bodytrack", [ "FlexImage::Set"; "_ieee754_log"; "ImageMeasurements::ImageErrorInside"; "std::vector"; "DMatrix" ]);
      ("canneal", [ "__mul"; "memchr"; "netlist::swap_locations"; "memmove"; "std::string::compare"; "__mpn_rshift"; "__mpn_lshift"; "isnan"; "std::locale::locale" ]);
      ("dedup", [ "sha1_block_data_order"; "_tr_flush_block"; "write_file"; "adler32"; "hashtable_search" ]);
      ("fluidanimate", [ "ComputeForces" ]);
      ("streamcluster", [ "drand48_iterate"; "nrand48_r"; "lrand48"; "pkmedian"; "localSearch"; "streamCluster" ]);
      ("vips", [ "conv_gen"; "imb_XYZ2Lab"; "affine_gen" ]);
      ("libquantum", [ "quantum_toffoli"; "quantum_cnot"; "quantum_sigma_x" ]);
    ]
  in
  List.iter
    (fun (name, fns) ->
      let w =
        match Workloads.Suite.find name with
        | Ok w -> w
        | Error e -> Alcotest.fail e
      in
      let m = run_native w in
      List.iter
        (fun fn ->
          Alcotest.(check bool) (Printf.sprintf "%s has %s" name fn) true (has_function m fn))
        fns)
    expectations

let test_sha1_two_contexts () =
  (* dedup's Table II rows: sha1 reached through two calling contexts *)
  let w = match Workloads.Suite.find "dedup" with Ok w -> w | Error e -> Alcotest.fail e in
  let m = run_native w in
  let contexts = Dbi.Machine.contexts m in
  let symbols = Dbi.Machine.symbols m in
  let count = ref 0 in
  Dbi.Context.iter contexts (fun ctx ->
      if
        ctx <> Dbi.Context.root
        && Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx) = "sha1_block_data_order"
      then incr count);
  Alcotest.(check int) "two sha1 contexts" 2 !count

let test_registry () =
  Alcotest.(check int) "13 PARSEC workloads" 13 (List.length Workloads.Suite.parsec);
  Alcotest.(check int) "14 total" 14 (List.length Workloads.Suite.all);
  (match Workloads.Suite.find "vips" with
  | Ok w -> Alcotest.(check string) "found vips" "vips" w.Workloads.Workload.name
  | Error e -> Alcotest.fail e);
  (match Workloads.Suite.find "doom" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "found nonexistent workload");
  let names = Workloads.Suite.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_scale_parsing () =
  (match Workloads.Scale.of_string "simmedium" with
  | Ok s -> Alcotest.(check int) "factor 4" 4 (Workloads.Scale.factor s)
  | Error e -> Alcotest.fail e);
  match Workloads.Scale.of_string "huge" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad scale"

let () =
  Alcotest.run "workloads"
    [
      ( "workloads",
        [
          Alcotest.test_case "all run cleanly" `Quick test_all_run_cleanly;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "scales grow" `Slow test_scales_grow;
          Alcotest.test_case "signature functions present" `Quick
            test_signature_functions_present;
          Alcotest.test_case "sha1 two contexts" `Quick test_sha1_two_contexts;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "scale parsing" `Quick test_scale_parsing;
        ] );
    ]
