(* Each synthetic workload exists to reproduce a qualitative property the
   paper reports for its namesake. These tests pin those signatures so
   future tuning cannot silently lose them. *)

let reuse_run name =
  let w = match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e in
  let tool = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options:Sigil.Options.(with_reuse default) m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
  in
  Option.get !tool

let events_run name =
  let w = match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e in
  let tool = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options:Sigil.Options.(with_events default) m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
  in
  Option.get !tool

let paired_run name =
  let w = match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e in
  let sigil = ref None and cg = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            sigil := Some t;
            Sigil.Tool.tool t);
          (fun m ->
            let t = Callgrind.Tool.create m in
            cg := Some t;
            Callgrind.Tool.tool t);
        ]
      (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
  in
  (Option.get !sigil, Option.get !cg)

let coverage name =
  let sigil, cg = paired_run name in
  (Analysis.Partition.trim (Analysis.Cdfg.build ~callgrind:cg sigil)).Analysis.Partition.coverage

let parallelism name =
  let tool = events_run name in
  Analysis.Critpath.parallelism
    (Analysis.Critpath.analyze (Option.get (Sigil.Tool.event_log tool)))

let fn_share_of_ops tool name =
  let profile = Sigil.Tool.profile tool in
  let machine = Sigil.Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let total = ref 0 and own = ref 0 in
  List.iter
    (fun ctx ->
      let s = Sigil.Profile.stats profile ctx in
      let ops = s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops in
      total := !total + ops;
      if
        ctx <> Dbi.Context.root
        && Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx) = name
      then own := !own + ops)
    (Sigil.Profile.contexts profile);
  float_of_int !own /. float_of_int (max 1 !total)

(* blackscholes: streaming, near-total zero re-use (Fig 8's leftmost bar) *)
let test_blackscholes_zero_reuse () =
  let bd = Analysis.Reuse_report.byte_breakdown (reuse_run "blackscholes") in
  Alcotest.(check bool) "zero-reuse dominant" true (bd.Analysis.Reuse_report.zero > 0.9)

(* bodytrack: FlexImage::Set's box communicates almost nothing (S = 1.000) *)
let test_bodytrack_fleximage_breakeven () =
  let sigil, cg = paired_run "bodytrack" in
  let cdfg = Analysis.Cdfg.build ~callgrind:cg sigil in
  let set_ctx =
    List.find
      (fun ctx -> (Analysis.Cdfg.node cdfg ctx).Analysis.Cdfg.name = "FlexImage::Set")
      (Analysis.Cdfg.contexts cdfg)
  in
  let s = Analysis.Partition.breakeven cdfg set_ctx in
  Alcotest.(check bool) (Printf.sprintf "S=%.4f close to 1.000" s) true (s < 1.002)

(* canneal & swaptions: the low-coverage exceptions of Fig 7 *)
let test_low_coverage_exceptions () =
  Alcotest.(check bool) "canneal low" true (coverage "canneal" < 0.5);
  Alcotest.(check bool) "swaptions low" true (coverage "swaptions" < 0.5);
  Alcotest.(check bool) "blackscholes high" true (coverage "blackscholes" > 0.5)

(* dedup: the suite's largest shadow footprint (Fig 6's outlier) *)
let test_dedup_largest_footprint () =
  let footprint name = Sigil.Tool.shadow_footprint_peak_bytes (reuse_run name) in
  let dedup = footprint "dedup" in
  List.iter
    (fun other ->
      Alcotest.(check bool) ("dedup > " ^ other) true (dedup > footprint other))
    [ "blackscholes"; "canneal"; "streamcluster"; "vips" ]

(* fluidanimate: ComputeForces dominates and the program is serial *)
let test_fluidanimate_computeforces () =
  let tool = reuse_run "fluidanimate" in
  Alcotest.(check bool) "ComputeForces >= 60% of ops" true
    (fn_share_of_ops tool "ComputeForces" > 0.6);
  Alcotest.(check bool) "serial program" true (parallelism "fluidanimate" < 1.5)

(* streamcluster: highest parallelism, PRNG chain on the critical path *)
let test_streamcluster_parallelism () =
  let sc = parallelism "streamcluster" in
  Alcotest.(check bool) "high limit" true (sc > 10.0);
  Alcotest.(check bool) "above fluidanimate" true (sc > parallelism "fluidanimate")

(* vips: conv_gen's lifetimes dwarf imb_XYZ2Lab's (Figs 9-11) *)
let test_vips_lifetime_ordering () =
  let tool = reuse_run "vips" in
  let reuse = Sigil.Tool.reuse tool in
  let avg name =
    List.fold_left
      (fun acc ctx -> max acc (Sigil.Reuse.avg_lifetime reuse ctx))
      0.0
      (Analysis.Reuse_report.find_contexts tool name)
  in
  let conv = avg "conv_gen" and xyz = avg "imb_XYZ2Lab" in
  Alcotest.(check bool)
    (Printf.sprintf "conv %.0f >> xyz %.0f" conv xyz)
    true
    (conv > 100.0 *. xyz)

(* raytrace: hot BVH ancestors give >1000-reuse lines (Fig 12) *)
let test_raytrace_hot_lines () =
  let w = match Workloads.Suite.find "raytrace" with Ok w -> w | Error e -> Alcotest.fail e in
  let tool = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t =
              Sigil.Tool.create ~options:(Sigil.Options.with_line_size Sigil.Options.default 64) m
            in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
  in
  let line = Option.get (Sigil.Tool.line_shadow (Option.get !tool)) in
  let b = Sigil.Line_shadow.bins line in
  Alcotest.(check bool) "hot lines exist" true
    (b.Sigil.Line_shadow.under_10000 + b.Sigil.Line_shadow.over_10000 > 0)

(* libquantum: block-parallel gates give a high limit (Fig 13) *)
let test_libquantum_parallelism () =
  let p = parallelism "libquantum" in
  Alcotest.(check bool) (Printf.sprintf "limit %.1f > 5" p) true (p > 5.0)

(* dedup: write_file and adler32 sit near the bottom of the candidate list
   (Table III flavour: I/O and checksum wrappers are poor accelerators) *)
let test_dedup_bottom_candidates () =
  let sigil, cg = paired_run "dedup" in
  let trimmed = Analysis.Partition.trim (Analysis.Cdfg.build ~callgrind:cg sigil) in
  let ranked = Analysis.Partition.rank trimmed in
  let bottom =
    List.map
      (fun (c : Analysis.Partition.candidate) -> c.Analysis.Partition.name)
      (Analysis.Partition.bottom 4 ranked)
  in
  Alcotest.(check bool) "write_file or adler32 in the worst four" true
    (List.mem "write_file" bottom || List.mem "adler32" bottom)

let () =
  Alcotest.run "workload_signatures"
    [
      ( "signatures",
        [
          Alcotest.test_case "blackscholes zero reuse" `Quick test_blackscholes_zero_reuse;
          Alcotest.test_case "bodytrack FlexImage::Set" `Quick
            test_bodytrack_fleximage_breakeven;
          Alcotest.test_case "low-coverage exceptions" `Slow test_low_coverage_exceptions;
          Alcotest.test_case "dedup largest footprint" `Slow test_dedup_largest_footprint;
          Alcotest.test_case "fluidanimate ComputeForces" `Quick
            test_fluidanimate_computeforces;
          Alcotest.test_case "streamcluster parallelism" `Quick
            test_streamcluster_parallelism;
          Alcotest.test_case "vips lifetime ordering" `Quick test_vips_lifetime_ordering;
          Alcotest.test_case "raytrace hot lines" `Quick test_raytrace_hot_lines;
          Alcotest.test_case "libquantum parallelism" `Quick test_libquantum_parallelism;
          Alcotest.test_case "dedup bottom candidates" `Slow test_dedup_bottom_candidates;
        ] );
    ]
