let test_determinism () =
  let a = Dbi.Prng.create 42L and b = Dbi.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Dbi.Prng.next a) (Dbi.Prng.next b)
  done

let test_seed_sensitivity () =
  let a = Dbi.Prng.create 1L and b = Dbi.Prng.create 2L in
  Alcotest.(check bool) "different seeds differ" true (Dbi.Prng.next a <> Dbi.Prng.next b)

let test_of_string_deterministic () =
  let a = Dbi.Prng.of_string "blackscholes:simsmall" in
  let b = Dbi.Prng.of_string "blackscholes:simsmall" in
  Alcotest.(check int64) "same string same stream" (Dbi.Prng.next a) (Dbi.Prng.next b);
  let c = Dbi.Prng.of_string "blackscholes:simmedium" in
  Alcotest.(check bool) "different string differs" true (Dbi.Prng.next a <> Dbi.Prng.next c)

let test_int_bounds () =
  let rng = Dbi.Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Dbi.Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_bound_one () =
  let rng = Dbi.Prng.create 7L in
  for _ = 1 to 10 do
    Alcotest.(check int) "bound 1 always 0" 0 (Dbi.Prng.int rng 1)
  done

let test_float_bounds () =
  let rng = Dbi.Prng.create 9L in
  for _ = 1 to 1000 do
    let v = Dbi.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_split_independent () =
  let a = Dbi.Prng.create 11L in
  let b = Dbi.Prng.split a in
  (* the split stream does not mirror the parent *)
  let eq = ref 0 in
  for _ = 1 to 20 do
    if Dbi.Prng.next a = Dbi.Prng.next b then incr eq
  done;
  Alcotest.(check bool) "streams diverge" true (!eq < 3)

let test_bool_mixes () =
  let rng = Dbi.Prng.create 3L in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Dbi.Prng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let test_int_distribution () =
  let rng = Dbi.Prng.create 5L in
  let counts = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Dbi.Prng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d populated" i) true (c > 700 && c < 1300))
    counts

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Prng.int stays in range" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Dbi.Prng.create seed in
      let v = Dbi.Prng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "of_string deterministic" `Quick test_of_string_deterministic;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bound one" `Quick test_int_bound_one;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
          Alcotest.test_case "int distribution" `Quick test_int_distribution;
          QCheck_alcotest.to_alcotest qcheck_int_in_range;
        ] );
    ]
