(* A recording tool that logs every callback it receives. *)
type recorded =
  | Enter of string * int
  | Leave of string
  | Read of int * int
  | Write of int * int
  | Op of Dbi.Event.op_kind * int
  | Branch of bool
  | Finish

let recorder m log : Dbi.Tool.t =
  let name ctx = Dbi.Context.path (Dbi.Machine.contexts m) (Dbi.Machine.symbols m) ctx in
  {
    name = "recorder";
    on_enter = (fun ~ctx ~fn:_ ~call -> log := Enter (name ctx, call) :: !log);
    on_leave = (fun ~ctx ~fn:_ -> log := Leave (name ctx) :: !log);
    on_read = (fun ~ctx:_ ~addr ~size -> log := Read (addr, size) :: !log);
    on_write = (fun ~ctx:_ ~addr ~size -> log := Write (addr, size) :: !log);
    on_op = (fun ~ctx:_ ~kind ~count -> log := Op (kind, count) :: !log);
    on_branch = (fun ~ctx:_ ~taken -> log := Branch taken :: !log);
    on_finish = (fun () -> log := Finish :: !log);
  }

let fresh ?(call_overhead = 0) () = Dbi.Machine.create ~call_overhead ()

let test_event_dispatch () =
  let m = fresh () in
  let log = ref [] in
  Dbi.Machine.attach m (recorder m log);
  let _ctx = Dbi.Machine.enter m "main" in
  Dbi.Machine.op m Dbi.Event.Int_op 5;
  Dbi.Machine.read m 0x200000 8;
  Dbi.Machine.write m 0x200000 4;
  Dbi.Machine.branch m ~taken:true;
  Dbi.Machine.leave m;
  Dbi.Machine.finish m;
  Alcotest.(check int) "seven events" 7 (List.length !log);
  match List.rev !log with
  | [ Enter ("main", 1); Op (Dbi.Event.Int_op, 5); Read (0x200000, 8); Write (0x200000, 4);
      Branch true; Leave "main"; Finish ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

let test_clock_semantics () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Alcotest.(check int) "starts at zero" 0 (Dbi.Machine.now m);
  Dbi.Machine.op m Dbi.Event.Fp_op 10;
  Dbi.Machine.read m 0x200000 8;
  Dbi.Machine.write m 0x200000 8;
  Dbi.Machine.branch m ~taken:false;
  (* retired instructions: 10 ops + 2 accesses + 1 branch *)
  Alcotest.(check int) "clock" 13 (Dbi.Machine.now m);
  Dbi.Machine.leave m

let test_counters () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Dbi.Machine.op m Dbi.Event.Int_op 3;
  Dbi.Machine.op m Dbi.Event.Fp_op 4;
  Dbi.Machine.read m 0x200000 8;
  Dbi.Machine.read m 0x200010 4;
  Dbi.Machine.write m 0x200000 2;
  Dbi.Machine.leave m;
  let c = Dbi.Machine.counters m in
  Alcotest.(check int) "int ops" 3 c.Dbi.Machine.int_ops;
  Alcotest.(check int) "fp ops" 4 c.Dbi.Machine.fp_ops;
  Alcotest.(check int) "reads" 2 c.Dbi.Machine.reads;
  Alcotest.(check int) "read bytes" 12 c.Dbi.Machine.read_bytes;
  Alcotest.(check int) "written bytes" 2 c.Dbi.Machine.written_bytes;
  Alcotest.(check int) "calls" 1 c.Dbi.Machine.calls

let test_call_numbers () =
  let m = fresh () in
  let ctx1 = Dbi.Machine.enter m "main" in
  let ctx2 = Dbi.Machine.enter m "f" in
  Dbi.Machine.leave m;
  let ctx2' = Dbi.Machine.enter m "f" in
  Dbi.Machine.leave m;
  Dbi.Machine.leave m;
  Alcotest.(check int) "same context" ctx2 ctx2';
  Alcotest.(check int) "f called twice" 2 (Dbi.Machine.call_number m ctx2);
  Alcotest.(check int) "main once" 1 (Dbi.Machine.call_number m ctx1)

let test_current_ctx_tracking () =
  let m = fresh () in
  Alcotest.(check int) "root before main" Dbi.Context.root (Dbi.Machine.current_ctx m);
  let main = Dbi.Machine.enter m "main" in
  let f = Dbi.Machine.enter m "f" in
  Alcotest.(check int) "inside f" f (Dbi.Machine.current_ctx m);
  Dbi.Machine.leave m;
  Alcotest.(check int) "back in main" main (Dbi.Machine.current_ctx m);
  Dbi.Machine.leave m;
  Alcotest.(check int) "back at root" Dbi.Context.root (Dbi.Machine.current_ctx m)

let test_call_overhead_charged_to_caller () =
  let m = Dbi.Machine.create ~call_overhead:10 () in
  let ops_at = ref [] in
  Dbi.Machine.attach m
    {
      (Dbi.Tool.nop "spy") with
      on_op = (fun ~ctx ~kind:_ ~count -> ops_at := (ctx, count) :: !ops_at);
    };
  let main = Dbi.Machine.enter m "main" in
  let _f = Dbi.Machine.enter m "f" in
  Dbi.Machine.leave m;
  Dbi.Machine.leave m;
  (* overhead for entering main lands at root; for f at main *)
  Alcotest.(check (list (pair int int)))
    "caller charged" [ (Dbi.Context.root, 10); (main, 10) ] (List.rev !ops_at)

let test_syscall_pseudo_function () =
  let m = fresh () in
  let log = ref [] in
  Dbi.Machine.attach m (recorder m log);
  let _ = Dbi.Machine.enter m "main" in
  Dbi.Machine.syscall m "read" ~reads:[] ~writes:[ (0x300000, 20) ];
  Dbi.Machine.leave m;
  (match List.rev !log with
  | Enter ("main", _) :: Enter ("main/sys:read", _) :: rest ->
    let writes = List.filter (function Write _ -> true | _ -> false) rest in
    let bytes =
      List.fold_left (fun acc -> function Write (_, n) -> acc + n | _ -> acc) 0 writes
    in
    Alcotest.(check int) "20 bytes written in word chunks" 20 bytes;
    Alcotest.(check int) "3 chunked writes" 3 (List.length writes)
  | _ -> Alcotest.fail "expected syscall pseudo-function entry");
  Alcotest.(check int) "syscall counted" 1 (Dbi.Machine.counters m).Dbi.Machine.syscalls

let test_is_syscall_fn () =
  Alcotest.(check bool) "sys:read" true (Dbi.Machine.is_syscall_fn "sys:read");
  Alcotest.(check bool) "plain" false (Dbi.Machine.is_syscall_fn "read");
  Alcotest.(check bool) "prefix only" false (Dbi.Machine.is_syscall_fn "sys:")

let test_unbalanced_leave_rejected () =
  let m = fresh () in
  Alcotest.check_raises "leave on empty" (Invalid_argument "Machine.leave: empty call stack")
    (fun () -> Dbi.Machine.leave m)

let test_finish_requires_empty_stack () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Alcotest.check_raises "finish mid-call" (Invalid_argument "Machine.finish: calls still live")
    (fun () -> Dbi.Machine.finish m)

let test_finish_idempotent () =
  let m = fresh () in
  let finishes = ref 0 in
  Dbi.Machine.attach m
    { (Dbi.Tool.nop "spy") with on_finish = (fun () -> incr finishes) };
  Dbi.Machine.finish m;
  Dbi.Machine.finish m;
  Alcotest.(check int) "one finish" 1 !finishes

let test_stripped_machine () =
  let m = Dbi.Machine.create ~stripped:true ~call_overhead:0 () in
  let ctx = Dbi.Machine.enter m "secret" in
  let name =
    Dbi.Symbol.name (Dbi.Machine.symbols m) (Dbi.Context.fn (Dbi.Machine.contexts m) ctx)
  in
  Dbi.Machine.leave m;
  Alcotest.(check bool) "name hidden" true (String.length name >= 4 && String.sub name 0 4 = "???:")

let test_bad_event_args () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Alcotest.check_raises "zero-size read" (Invalid_argument "Machine.read: size must be positive")
    (fun () -> Dbi.Machine.read m 0x200000 0);
  Alcotest.check_raises "negative ops" (Invalid_argument "Machine.op: negative count") (fun () ->
      Dbi.Machine.op m Dbi.Event.Int_op (-1));
  Dbi.Machine.leave m

let () =
  Alcotest.run "machine"
    [
      ( "machine",
        [
          Alcotest.test_case "event dispatch" `Quick test_event_dispatch;
          Alcotest.test_case "clock semantics" `Quick test_clock_semantics;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "call numbers" `Quick test_call_numbers;
          Alcotest.test_case "current ctx tracking" `Quick test_current_ctx_tracking;
          Alcotest.test_case "call overhead to caller" `Quick test_call_overhead_charged_to_caller;
          Alcotest.test_case "syscall pseudo-function" `Quick test_syscall_pseudo_function;
          Alcotest.test_case "is_syscall_fn" `Quick test_is_syscall_fn;
          Alcotest.test_case "unbalanced leave rejected" `Quick test_unbalanced_leave_rejected;
          Alcotest.test_case "finish requires empty stack" `Quick test_finish_requires_empty_stack;
          Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
          Alcotest.test_case "stripped machine" `Quick test_stripped_machine;
          Alcotest.test_case "bad event args" `Quick test_bad_event_args;
        ] );
    ]
