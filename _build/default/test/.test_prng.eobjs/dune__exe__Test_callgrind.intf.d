test/test_callgrind.mli:
