test/test_event_log.mli:
