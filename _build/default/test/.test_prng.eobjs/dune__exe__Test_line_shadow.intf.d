test/test_line_shadow.mli:
