test/test_reuse.ml: Alcotest List QCheck QCheck_alcotest Reuse Shadow Sigil
