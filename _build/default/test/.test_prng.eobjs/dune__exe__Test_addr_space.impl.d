test/test_addr_space.ml: Alcotest Dbi List QCheck QCheck_alcotest
