test/test_machine.ml: Alcotest Dbi List String
