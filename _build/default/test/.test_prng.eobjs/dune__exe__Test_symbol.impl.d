test/test_symbol.ml: Alcotest Dbi List
