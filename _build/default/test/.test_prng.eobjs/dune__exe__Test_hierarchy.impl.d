test/test_hierarchy.ml: Alcotest Cachesim
