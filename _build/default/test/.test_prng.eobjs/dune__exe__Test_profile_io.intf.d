test/test_profile_io.mli:
