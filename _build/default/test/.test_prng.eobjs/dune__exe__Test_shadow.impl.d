test/test_shadow.ml: Alcotest Dbi Hashtbl List QCheck QCheck_alcotest Shadow Sigil
