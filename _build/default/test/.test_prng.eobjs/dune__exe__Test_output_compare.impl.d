test/test_output_compare.ml: Alcotest Analysis Buffer Callgrind Dbi Filename Format Fun List Option Sigil String Sys Unix
