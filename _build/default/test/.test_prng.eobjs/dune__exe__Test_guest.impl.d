test/test_guest.ml: Alcotest Dbi
