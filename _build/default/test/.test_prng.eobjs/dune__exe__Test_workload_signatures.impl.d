test/test_workload_signatures.ml: Alcotest Analysis Callgrind Dbi List Option Printf Sigil Workloads
