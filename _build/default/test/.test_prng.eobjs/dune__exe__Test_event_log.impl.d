test/test_event_log.ml: Alcotest Event_log Filename Fmt List QCheck QCheck_alcotest Sigil Sys
