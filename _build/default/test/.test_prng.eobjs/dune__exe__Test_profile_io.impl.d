test/test_profile_io.ml: Alcotest Dbi Filename Fun List Option Sigil Sys Workloads
