test/test_workload_signatures.mli:
