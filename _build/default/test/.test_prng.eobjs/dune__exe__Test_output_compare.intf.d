test/test_output_compare.mli:
