test/test_integration.ml: Alcotest Analysis Callgrind Dbi List Option Sigil Workloads
