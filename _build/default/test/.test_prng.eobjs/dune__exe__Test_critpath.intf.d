test/test_critpath.mli:
