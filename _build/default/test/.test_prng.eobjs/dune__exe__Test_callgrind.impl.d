test/test_callgrind.ml: Alcotest Callgrind Dbi Option
