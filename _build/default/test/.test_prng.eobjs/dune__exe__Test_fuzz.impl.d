test/test_fuzz.ml: Alcotest Analysis Callgrind Dbi Filename Fun List Option Printf QCheck QCheck_alcotest Sigil String Sys
