test/test_cache.ml: Alcotest Cachesim List Printf QCheck QCheck_alcotest
