test/test_dot.ml: Alcotest Analysis Buffer Dbi Filename Format Fun Option Sigil String Sys Unix
