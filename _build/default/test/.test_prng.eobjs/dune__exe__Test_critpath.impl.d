test/test_critpath.ml: Alcotest Analysis Event_log List QCheck QCheck_alcotest Sigil
