test/test_context.ml: Alcotest Dbi List
