test/test_profile.ml: Alcotest Dbi List Profile QCheck QCheck_alcotest Sigil
