test/test_shadow.mli:
