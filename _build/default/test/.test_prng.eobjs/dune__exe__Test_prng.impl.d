test/test_prng.ml: Alcotest Array Dbi Printf QCheck QCheck_alcotest
