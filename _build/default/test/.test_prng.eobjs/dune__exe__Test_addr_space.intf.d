test/test_addr_space.mli:
