test/test_context.mli:
