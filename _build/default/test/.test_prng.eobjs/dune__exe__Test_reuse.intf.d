test/test_reuse.mli:
