test/test_cdfg.ml: Alcotest Analysis Callgrind Dbi List Option Sigil
