test/test_branch.ml: Alcotest Cachesim
