test/test_trace.ml: Alcotest Dbi Filename Fun List Option Sigil Sys Workloads
