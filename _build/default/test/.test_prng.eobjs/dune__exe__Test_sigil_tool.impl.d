test/test_sigil_tool.ml: Alcotest Dbi List Option Sigil String
