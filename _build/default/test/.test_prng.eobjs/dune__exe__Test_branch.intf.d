test/test_branch.mli:
