test/test_flat.mli:
