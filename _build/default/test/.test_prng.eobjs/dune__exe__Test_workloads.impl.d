test/test_workloads.ml: Alcotest Dbi List Printf Workloads
