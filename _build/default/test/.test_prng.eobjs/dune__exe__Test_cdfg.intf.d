test/test_cdfg.mli:
