test/test_partition.ml: Alcotest Analysis Callgrind Dbi Hashtbl List Option Sigil
