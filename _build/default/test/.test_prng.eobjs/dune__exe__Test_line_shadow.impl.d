test/test_line_shadow.ml: Alcotest Line_shadow List Sigil
