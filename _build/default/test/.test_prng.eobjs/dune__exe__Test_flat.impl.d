test/test_flat.ml: Alcotest Analysis Buffer Dbi Format List Option Sigil String
