test/test_sigil_tool.mli:
