(* Run a small guest program under the Callgrind tool and check its cost
   attribution. Call overhead is disabled so counts are exact. *)
let run_guest body =
  let tool = ref None in
  let r =
    Dbi.Runner.run ~call_overhead:0
      ~tools:[ (fun m -> let t = Callgrind.Tool.create m in tool := Some t; Callgrind.Tool.tool t) ]
      body
  in
  (Option.get !tool, r.Dbi.Runner.machine)

let find_ctx m path_wanted =
  let contexts = Dbi.Machine.contexts m in
  let symbols = Dbi.Machine.symbols m in
  let found = ref None in
  Dbi.Context.iter contexts (fun ctx ->
      if Dbi.Context.path contexts symbols ctx = path_wanted then found := Some ctx);
  match !found with
  | Some ctx -> ctx
  | None -> Alcotest.failf "no context %s" path_wanted

let test_ir_attribution () =
  let tool, m =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.iop m 5;
            Dbi.Guest.call m "f" (fun () ->
                Dbi.Guest.flop m 3;
                Dbi.Guest.read m 0x200000 8;
                Dbi.Guest.write m 0x200010 8);
            Dbi.Guest.branch m true))
  in
  let main_cost = Callgrind.Tool.cost tool (find_ctx m "main") in
  let f_cost = Callgrind.Tool.cost tool (find_ctx m "main/f") in
  (* main: 5 ops + 1 branch = 6 Ir; f: 3 ops + 2 accesses = 5 Ir *)
  Alcotest.(check int) "main ir" 6 main_cost.Callgrind.Cost.ir;
  Alcotest.(check int) "f ir" 5 f_cost.Callgrind.Cost.ir;
  Alcotest.(check int) "f fp ops" 3 f_cost.Callgrind.Cost.fp_ops;
  Alcotest.(check int) "f dr" 1 f_cost.Callgrind.Cost.dr;
  Alcotest.(check int) "f dw" 1 f_cost.Callgrind.Cost.dw;
  Alcotest.(check int) "main bc" 1 main_cost.Callgrind.Cost.bc;
  Alcotest.(check int) "f calls" 1 f_cost.Callgrind.Cost.calls

let test_inclusive_cost () =
  let tool, m =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.iop m 10;
            Dbi.Guest.call m "f" (fun () -> Dbi.Guest.iop m 7)))
  in
  let incl = Callgrind.Tool.inclusive_cost tool (find_ctx m "main") in
  Alcotest.(check int) "inclusive int ops" 17 incl.Callgrind.Cost.int_ops;
  let total = Callgrind.Tool.total tool in
  Alcotest.(check int) "total matches" 17 total.Callgrind.Cost.int_ops

let test_cache_misses_attributed () =
  let tool, m =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "cold" (fun () ->
                (* 64 distinct lines: all cold misses *)
                for i = 0 to 63 do
                  Dbi.Guest.read m (0x200000 + (i * 64)) 8
                done);
            Dbi.Guest.call m "hot" (fun () ->
                for _ = 1 to 4 do
                  Dbi.Guest.read m 0x200000 8
                done)))
  in
  let cold = Callgrind.Tool.cost tool (find_ctx m "main/cold") in
  let hot = Callgrind.Tool.cost tool (find_ctx m "main/hot") in
  Alcotest.(check int) "cold D1 misses" 64 cold.Callgrind.Cost.d1mr;
  Alcotest.(check int) "hot no D1 misses" 0 hot.Callgrind.Cost.d1mr

let test_estimate_formula () =
  let c = Callgrind.Cost.zero () in
  c.Callgrind.Cost.ir <- 100;
  c.Callgrind.Cost.bcm <- 2;
  c.Callgrind.Cost.d1mr <- 3;
  c.Callgrind.Cost.dlmw <- 1;
  (* 100 + 10*2 + 10*3 + 100*1 *)
  Alcotest.(check int) "CEst" 250 (Callgrind.Estimate.cycles c);
  Alcotest.(check (float 1e-12)) "seconds at 1GHz" 250e-9 (Callgrind.Estimate.seconds c)

let test_cost_arithmetic () =
  let a = Callgrind.Cost.zero () and b = Callgrind.Cost.zero () in
  a.Callgrind.Cost.ir <- 5;
  b.Callgrind.Cost.ir <- 7;
  b.Callgrind.Cost.i1mr <- 2;
  Callgrind.Cost.add ~into:a b;
  Alcotest.(check int) "added" 12 a.Callgrind.Cost.ir;
  Alcotest.(check int) "l1 misses" 2 (Callgrind.Cost.l1_misses a);
  let c = Callgrind.Cost.copy a in
  c.Callgrind.Cost.ir <- 0;
  Alcotest.(check int) "copy is independent" 12 a.Callgrind.Cost.ir

let test_report_rows_sorted () =
  let tool, _ =
    run_guest (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "light" (fun () -> Dbi.Guest.iop m 5);
            Dbi.Guest.call m "heavy" (fun () -> Dbi.Guest.iop m 5000)))
  in
  match Callgrind.Report.rows tool with
  | first :: _ ->
    Alcotest.(check string) "heaviest first" "main/heavy" first.Callgrind.Report.path
  | [] -> Alcotest.fail "no rows"

let test_unvisited_ctx_zero_cost () =
  let tool, _ = run_guest (fun m -> Dbi.Guest.call m "main" (fun () -> ())) in
  let c = Callgrind.Tool.cost tool 9999 in
  Alcotest.(check int) "zero" 0 c.Callgrind.Cost.ir

let () =
  Alcotest.run "callgrind"
    [
      ( "callgrind",
        [
          Alcotest.test_case "ir attribution" `Quick test_ir_attribution;
          Alcotest.test_case "inclusive cost" `Quick test_inclusive_cost;
          Alcotest.test_case "cache misses attributed" `Quick test_cache_misses_attributed;
          Alcotest.test_case "estimate formula" `Quick test_estimate_formula;
          Alcotest.test_case "cost arithmetic" `Quick test_cost_arithmetic;
          Alcotest.test_case "report rows sorted" `Quick test_report_rows_sorted;
          Alcotest.test_case "unvisited ctx zero cost" `Quick test_unvisited_ctx_zero_cost;
        ] );
    ]
