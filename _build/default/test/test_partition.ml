(* Partitioning over toy programs with controlled compute/communication
   ratios. *)

let run_guest body =
  let sigil = ref None and cg = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            sigil := Some t;
            Sigil.Tool.tool t);
          (fun m ->
            let t = Callgrind.Tool.create m in
            cg := Some t;
            Callgrind.Tool.tool t);
        ]
      body
  in
  Analysis.Cdfg.build ~callgrind:(Option.get !cg) (Option.get !sigil)

(* dense: huge compute on tiny data; sparse: one op per byte over a big
   fresh buffer (cannot break even at the default bus width) *)
let contrast m =
  Dbi.Guest.call m "main" (fun () ->
      let data = Dbi.Guest.alloc m 8192 in
      Dbi.Guest.write m data 8;
      Dbi.Guest.call m "feeder" (fun () -> Dbi.Guest.write_range m data 8192);
      Dbi.Guest.call m "dense" (fun () ->
          Dbi.Guest.read m data 8;
          Dbi.Guest.flop m 100000;
          Dbi.Guest.write m data 8);
      Dbi.Guest.call m "sparse" (fun () ->
          Dbi.Guest.read_range m data 4096;
          Dbi.Guest.write_range m (data + 4096) 4096))

let test_breakeven_ordering () =
  let cdfg = run_guest contrast in
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun ctx ->
      let n = Analysis.Cdfg.node cdfg ctx in
      Hashtbl.replace by_name n.Analysis.Cdfg.name (Analysis.Partition.breakeven cdfg ctx))
    (Analysis.Cdfg.contexts cdfg);
  let s name = Hashtbl.find by_name name in
  Alcotest.(check bool) "dense close to 1" true (s "dense" < 1.01);
  Alcotest.(check bool) "sparse much worse" true (s "sparse" > s "dense" +. 0.05)

let test_breakeven_formula () =
  let cdfg = run_guest contrast in
  let dense =
    List.find
      (fun ctx -> (Analysis.Cdfg.node cdfg ctx).Analysis.Cdfg.name = "dense")
      (Analysis.Cdfg.contexts cdfg)
  in
  let n = Analysis.Cdfg.node cdfg dense in
  let t_sw = float_of_int n.Analysis.Cdfg.incl_cycles in
  let t_comm =
    float_of_int (n.Analysis.Cdfg.incl_input_unique + n.Analysis.Cdfg.incl_output_unique) /. 8.0
  in
  Alcotest.(check (float 1e-9)) "eq. 1"
    (t_sw /. (t_sw -. t_comm))
    (Analysis.Partition.breakeven cdfg dense)

let test_bus_width_matters () =
  let cdfg = run_guest contrast in
  let sparse =
    List.find
      (fun ctx -> (Analysis.Cdfg.node cdfg ctx).Analysis.Cdfg.name = "sparse")
      (Analysis.Cdfg.contexts cdfg)
  in
  let slow = Analysis.Partition.breakeven ~bus_bytes_per_cycle:1.0 cdfg sparse in
  let fast = Analysis.Partition.breakeven ~bus_bytes_per_cycle:64.0 cdfg sparse in
  Alcotest.(check bool) "wider bus helps" true (fast < slow)

let test_trim_selects_and_excludes () =
  let cdfg = run_guest contrast in
  let trimmed = Analysis.Partition.trim cdfg in
  let names =
    List.map (fun (c : Analysis.Partition.candidate) -> c.Analysis.Partition.name)
      trimmed.Analysis.Partition.selected
  in
  Alcotest.(check bool) "dense selected" true (List.mem "dense" names);
  Alcotest.(check bool) "main never selected" false (List.mem "main" names);
  Alcotest.(check bool) "coverage in (0,1]" true
    (trimmed.Analysis.Partition.coverage > 0.0 && trimmed.Analysis.Partition.coverage <= 1.0)

let test_driver_box_blocked () =
  (* a driver whose subtree is the whole program must not be merged *)
  let body m =
    Dbi.Guest.call m "main" (fun () ->
        Dbi.Guest.call m "driver" (fun () ->
            for _ = 1 to 4 do
              Dbi.Guest.call m "work" (fun () ->
                  Dbi.Guest.flop m 10000;
                  Dbi.Guest.read m 0x200000 8)
            done))
  in
  let cdfg = run_guest body in
  let trimmed = Analysis.Partition.trim cdfg in
  let names =
    List.map (fun (c : Analysis.Partition.candidate) -> c.Analysis.Partition.name)
      trimmed.Analysis.Partition.selected
  in
  Alcotest.(check (list string)) "work selected, driver not" [ "work" ] names

let test_syscalls_never_candidates () =
  let body m =
    Dbi.Guest.call m "main" (fun () ->
        Dbi.Guest.syscall m "read" ~reads:[] ~writes:[ (0x200000, 4096) ];
        Dbi.Guest.call m "work" (fun () ->
            Dbi.Guest.read m 0x200000 8;
            Dbi.Guest.flop m 5000))
  in
  let cdfg = run_guest body in
  let trimmed = Analysis.Partition.trim cdfg in
  List.iter
    (fun (c : Analysis.Partition.candidate) ->
      Alcotest.(check bool) "no sys:" false (Dbi.Machine.is_syscall_fn c.Analysis.Partition.name))
    trimmed.Analysis.Partition.selected

let test_rank_dedups_by_name () =
  (* the same function selected in two contexts appears once, best first *)
  let body m =
    Dbi.Guest.call m "main" (fun () ->
        Dbi.Guest.call m "p1" (fun () ->
            Dbi.Guest.call m "kernel" (fun () ->
                Dbi.Guest.read m 0x200000 8;
                Dbi.Guest.flop m 10000));
        Dbi.Guest.call m "p2" (fun () ->
            Dbi.Guest.call m "kernel" (fun () ->
                Dbi.Guest.read_range m 0x300000 1024;
                Dbi.Guest.flop m 100)))
  in
  let cdfg = run_guest body in
  let ranked = Analysis.Partition.rank (Analysis.Partition.trim cdfg) in
  let kernels =
    List.filter (fun (c : Analysis.Partition.candidate) -> c.Analysis.Partition.name = "kernel")
      ranked
  in
  Alcotest.(check int) "kernel once" 1 (List.length kernels)

let test_top_bottom () =
  let mk name breakeven =
    {
      Analysis.Partition.ctx = 0;
      name;
      path = name;
      breakeven;
      coverage = 0.1;
      incl_cycles = 100;
      input_unique = 0;
      output_unique = 0;
      incl_ops = 100;
    }
  in
  let ranked = [ mk "a" 1.0; mk "b" 1.5; mk "c" 2.0 ] in
  Alcotest.(check (list string)) "top 2" [ "a"; "b" ]
    (List.map
       (fun (c : Analysis.Partition.candidate) -> c.Analysis.Partition.name)
       (Analysis.Partition.top 2 ranked));
  Alcotest.(check (list string)) "bottom 2 worst first" [ "c"; "b" ]
    (List.map
       (fun (c : Analysis.Partition.candidate) -> c.Analysis.Partition.name)
       (Analysis.Partition.bottom 2 ranked))

let () =
  Alcotest.run "partition"
    [
      ( "partition",
        [
          Alcotest.test_case "breakeven ordering" `Quick test_breakeven_ordering;
          Alcotest.test_case "breakeven formula" `Quick test_breakeven_formula;
          Alcotest.test_case "bus width matters" `Quick test_bus_width_matters;
          Alcotest.test_case "trim selects and excludes" `Quick test_trim_selects_and_excludes;
          Alcotest.test_case "driver box blocked" `Quick test_driver_box_blocked;
          Alcotest.test_case "syscalls never candidates" `Quick test_syscalls_never_candidates;
          Alcotest.test_case "rank dedups by name" `Quick test_rank_dedups_by_name;
          Alcotest.test_case "top and bottom" `Quick test_top_bottom;
        ] );
    ]
