open Sigil

(* Collecting sink for episode/version reports. *)
let collecting () =
  let episodes = ref [] and versions = ref [] in
  let sink =
    {
      Shadow.on_episode_end =
        (fun ~reader ~reads ~first ~last -> episodes := (reader, reads, first, last) :: !episodes);
      on_version_end = (fun ~producer ~nonunique -> versions := (producer, nonunique) :: !versions);
    }
  in
  (sink, episodes, versions)

let addr = 0x200000

let test_producer_tracking () =
  let t = Shadow.create () in
  Shadow.write t ~ctx:3 ~call:1 ~now:0 addr;
  let r = Shadow.read t ~ctx:5 ~call:1 ~now:1 addr in
  Alcotest.(check int) "producer is writer" 3 r.Shadow.producer;
  Alcotest.(check bool) "first read unique" true r.Shadow.unique

let test_never_written_is_program_input () =
  let t = Shadow.create () in
  let r = Shadow.read t ~ctx:5 ~call:1 ~now:0 addr in
  Alcotest.(check int) "root producer" Dbi.Context.root r.Shadow.producer;
  Alcotest.(check bool) "unique" true r.Shadow.unique

let test_nonunique_same_call () =
  let t = Shadow.create () in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  let r2 = Shadow.read t ~ctx:2 ~call:1 ~now:2 addr in
  Alcotest.(check bool) "same-call re-read non-unique" false r2.Shadow.unique;
  (* a later call of the same function must re-fetch: unique again *)
  let r3 = Shadow.read t ~ctx:2 ~call:2 ~now:3 addr in
  Alcotest.(check bool) "cross-call read unique" true r3.Shadow.unique

let test_reader_alternation_limitation () =
  (* the paper's single last-reader pointer: f,g,f counts the third read
     as unique again *)
  let t = Shadow.create () in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  let _ = Shadow.read t ~ctx:3 ~call:1 ~now:2 addr in
  let r = Shadow.read t ~ctx:2 ~call:1 ~now:3 addr in
  Alcotest.(check bool) "f again counts unique" true r.Shadow.unique

let test_write_resets_uniqueness () =
  let t = Shadow.create () in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  Shadow.write t ~ctx:1 ~call:2 ~now:2 addr;
  let r = Shadow.read t ~ctx:2 ~call:1 ~now:3 addr in
  Alcotest.(check bool) "new version, unique again" true r.Shadow.unique

let test_producer_call_tracked () =
  let t = Shadow.create ~track_writer_call:true () in
  Shadow.write t ~ctx:1 ~call:7 ~now:0 addr;
  let r = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  Alcotest.(check int) "producer call" 7 r.Shadow.producer_call

let test_episode_reporting () =
  let sink, episodes, _ = collecting () in
  let t = Shadow.create ~reuse:true ~sink () in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:10 addr in
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:25 addr in
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:40 addr in
  (* a different call of the same fn closes the episode *)
  let _ = Shadow.read t ~ctx:2 ~call:2 ~now:50 addr in
  Alcotest.(check (list (pair int (pair int (pair int int)))))
    "episode: reader 2, 3 reads, lifetime 10..40"
    [ (2, (3, (10, 40))) ]
    (List.map (fun (r, n, f, l) -> (r, (n, (f, l)))) !episodes)

let test_version_reporting_on_overwrite () =
  let sink, _, versions = collecting () in
  let t = Shadow.create ~reuse:true ~sink () in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:2 addr in
  Shadow.write t ~ctx:1 ~call:2 ~now:3 addr;
  Alcotest.(check (list (pair int int))) "version: producer 1, reuse 1" [ (1, 1) ] !versions

let test_flush_reports_everything () =
  let sink, episodes, versions = collecting () in
  let t = Shadow.create ~reuse:true ~sink () in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  Shadow.flush t;
  Alcotest.(check int) "one episode" 1 (List.length !episodes);
  Alcotest.(check int) "one version" 1 (List.length !versions);
  (* flush is terminal for that byte's state *)
  let r = Shadow.read t ~ctx:2 ~call:1 ~now:5 addr in
  Alcotest.(check int) "producer forgotten" Dbi.Context.root r.Shadow.producer

let test_input_version_reported () =
  let sink, _, versions = collecting () in
  let t = Shadow.create ~reuse:true ~sink () in
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 addr in
  Shadow.flush t;
  Alcotest.(check (list (pair int int)))
    "program input producer root" [ (Dbi.Context.root, 0) ] !versions

let test_fifo_eviction () =
  let t = Shadow.create ~max_chunks:2 () in
  let chunk = Shadow.chunk_bytes in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 0;
  Shadow.write t ~ctx:1 ~call:1 ~now:0 chunk;
  Alcotest.(check int) "two live" 2 (Shadow.chunks_live t);
  Shadow.write t ~ctx:1 ~call:1 ~now:0 (2 * chunk);
  Alcotest.(check int) "still two live" 2 (Shadow.chunks_live t);
  Alcotest.(check int) "one eviction" 1 (Shadow.evictions t);
  (* the oldest chunk was dropped: its producer is forgotten *)
  Alcotest.(check (option int)) "producer gone" None (Shadow.producer_of t 0);
  Alcotest.(check (option int)) "recent survives" (Some 1) (Shadow.producer_of t chunk)

let test_eviction_flushes_stats () =
  let sink, episodes, _ = collecting () in
  let t = Shadow.create ~reuse:true ~max_chunks:1 ~sink () in
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:1 0 in
  (* touching a second chunk evicts the first, closing its episode *)
  let _ = Shadow.read t ~ctx:2 ~call:1 ~now:2 Shadow.chunk_bytes in
  Alcotest.(check int) "episode flushed by eviction" 1 (List.length !episodes)

let test_footprint_accounting () =
  let t = Shadow.create () in
  let base = Shadow.footprint_bytes t in
  Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
  let one = Shadow.footprint_bytes t in
  Alcotest.(check bool) "grows with chunks" true (one > base);
  let reuse = Shadow.create ~reuse:true () in
  Shadow.write reuse ~ctx:1 ~call:1 ~now:0 addr;
  Alcotest.(check bool) "reuse mode costs more" true
    (Shadow.footprint_bytes reuse - base > one - base);
  Alcotest.(check int) "peak equals live here" (Shadow.footprint_bytes t)
    (Shadow.footprint_peak_bytes t)

let test_address_range_checked () =
  let t = Shadow.create () in
  Alcotest.check_raises "out of range" (Invalid_argument "Shadow: address out of range")
    (fun () -> ignore (Shadow.read t ~ctx:1 ~call:1 ~now:0 Shadow.max_address));
  Alcotest.check_raises "negative" (Invalid_argument "Shadow: address out of range") (fun () ->
      Shadow.write t ~ctx:1 ~call:1 ~now:0 (-1))

let qcheck_last_writer_wins =
  QCheck.Test.make ~name:"producer is always the last writer" ~count:200
    QCheck.(list (pair (int_range 1 20) (int_range 0 4095)))
    (fun writes ->
      let t = Shadow.create () in
      let last = Hashtbl.create 16 in
      List.iter
        (fun (ctx, a) ->
          Shadow.write t ~ctx ~call:1 ~now:0 a;
          Hashtbl.replace last a ctx)
        writes;
      Hashtbl.fold
        (fun a ctx ok ->
          ok
          &&
          let r = Shadow.read t ~ctx:99 ~call:1 ~now:1 a in
          r.Shadow.producer = ctx)
        last true)

let () =
  Alcotest.run "shadow"
    [
      ( "shadow",
        [
          Alcotest.test_case "producer tracking" `Quick test_producer_tracking;
          Alcotest.test_case "never written = program input" `Quick
            test_never_written_is_program_input;
          Alcotest.test_case "nonunique same call" `Quick test_nonunique_same_call;
          Alcotest.test_case "reader alternation limitation" `Quick
            test_reader_alternation_limitation;
          Alcotest.test_case "write resets uniqueness" `Quick test_write_resets_uniqueness;
          Alcotest.test_case "producer call tracked" `Quick test_producer_call_tracked;
          Alcotest.test_case "episode reporting" `Quick test_episode_reporting;
          Alcotest.test_case "version on overwrite" `Quick test_version_reporting_on_overwrite;
          Alcotest.test_case "flush reports everything" `Quick test_flush_reports_everything;
          Alcotest.test_case "input version reported" `Quick test_input_version_reported;
          Alcotest.test_case "fifo eviction" `Quick test_fifo_eviction;
          Alcotest.test_case "eviction flushes stats" `Quick test_eviction_flushes_stats;
          Alcotest.test_case "footprint accounting" `Quick test_footprint_accounting;
          Alcotest.test_case "address range checked" `Quick test_address_range_checked;
          QCheck_alcotest.to_alcotest qcheck_last_writer_wins;
        ] );
    ]
