let tiny =
  {
    Cachesim.Hierarchy.l1i = { Cachesim.Cache.size = 512; assoc = 2; line = 64 };
    l1d = { Cachesim.Cache.size = 512; assoc = 2; line = 64 };
    ll = { Cachesim.Cache.size = 4096; assoc = 4; line = 64 };
  }

let test_read_counts () =
  let h = Cachesim.Hierarchy.create tiny in
  Cachesim.Hierarchy.data_read h 0 8;
  let c = Cachesim.Hierarchy.counts h in
  Alcotest.(check int) "dr" 1 c.Cachesim.Hierarchy.dr;
  Alcotest.(check int) "cold miss both levels" 1 c.Cachesim.Hierarchy.d1mr;
  Alcotest.(check int) "ll miss" 1 c.Cachesim.Hierarchy.dlmr;
  Cachesim.Hierarchy.data_read h 0 8;
  let c = Cachesim.Hierarchy.counts h in
  Alcotest.(check int) "second read hits L1" 1 c.Cachesim.Hierarchy.d1mr

let test_ll_catches_l1_eviction () =
  let h = Cachesim.Hierarchy.create tiny in
  (* L1D: 512/2/64 = 4 sets; lines at stride 256 collide in set 0 *)
  Cachesim.Hierarchy.data_read h 0 8;
  Cachesim.Hierarchy.data_read h 256 8;
  Cachesim.Hierarchy.data_read h 512 8;
  (* evicts line 0 from L1, still in LL *)
  Cachesim.Hierarchy.data_read h 0 8;
  let c = Cachesim.Hierarchy.counts h in
  Alcotest.(check int) "4 L1 misses" 4 c.Cachesim.Hierarchy.d1mr;
  Alcotest.(check int) "only 3 LL misses" 3 c.Cachesim.Hierarchy.dlmr

let test_write_counts () =
  let h = Cachesim.Hierarchy.create tiny in
  Cachesim.Hierarchy.data_write h 0 8;
  Cachesim.Hierarchy.data_write h 0 8;
  let c = Cachesim.Hierarchy.counts h in
  Alcotest.(check int) "dw" 2 c.Cachesim.Hierarchy.dw;
  Alcotest.(check int) "one write miss" 1 c.Cachesim.Hierarchy.d1mw

let test_instruction_path_separate () =
  let h = Cachesim.Hierarchy.create tiny in
  Cachesim.Hierarchy.fetch h 0 4;
  Cachesim.Hierarchy.data_read h 0 4;
  let c = Cachesim.Hierarchy.counts h in
  (* the data read misses L1D (separate from L1I) but hits the shared LL *)
  Alcotest.(check int) "i1 miss" 1 c.Cachesim.Hierarchy.i1mr;
  Alcotest.(check int) "d1 miss" 1 c.Cachesim.Hierarchy.d1mr;
  Alcotest.(check int) "LL hit for data" 0 c.Cachesim.Hierarchy.dlmr

let test_counts_arithmetic () =
  let a = { Cachesim.Hierarchy.zero_counts with Cachesim.Hierarchy.ir = 3; d1mr = 1 } in
  let b = { Cachesim.Hierarchy.zero_counts with Cachesim.Hierarchy.ir = 4; dlmw = 2 } in
  let s = Cachesim.Hierarchy.add_counts a b in
  Alcotest.(check int) "ir adds" 7 s.Cachesim.Hierarchy.ir;
  Alcotest.(check int) "l1 misses" 1 (Cachesim.Hierarchy.l1_misses s);
  Alcotest.(check int) "ll misses" 2 (Cachesim.Hierarchy.ll_misses s)

let () =
  Alcotest.run "hierarchy"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "read counts" `Quick test_read_counts;
          Alcotest.test_case "ll catches l1 eviction" `Quick test_ll_catches_l1_eviction;
          Alcotest.test_case "write counts" `Quick test_write_counts;
          Alcotest.test_case "instruction path separate" `Quick test_instruction_path_separate;
          Alcotest.test_case "counts arithmetic" `Quick test_counts_arithmetic;
        ] );
    ]
