open Sigil

let test_line_granularity () =
  let t = Line_shadow.create ~line_size:64 () in
  Line_shadow.touch t ~now:0 0 8;
  Line_shadow.touch t ~now:1 32 8;
  (* same line *)
  Line_shadow.touch t ~now:2 64 8;
  (* next line *)
  Alcotest.(check int) "two lines" 2 (Line_shadow.lines t);
  match Line_shadow.records t with
  | [ a; b ] ->
    Alcotest.(check int) "line 0 twice" 2 a.Line_shadow.accesses;
    Alcotest.(check int) "line 0 reuse" 1 (Line_shadow.reuse_count a);
    Alcotest.(check int) "line 1 once" 1 b.Line_shadow.accesses;
    Alcotest.(check (pair int int)) "timestamps" (0, 1) (a.Line_shadow.first, a.Line_shadow.last)
  | _ -> Alcotest.fail "expected two records"

let test_straddling_access () =
  let t = Line_shadow.create ~line_size:64 () in
  Line_shadow.touch t ~now:0 60 8;
  Alcotest.(check int) "straddle touches both" 2 (Line_shadow.lines t)

let test_bins () =
  let t = Line_shadow.create ~line_size:64 () in
  let touch_n line n =
    for i = 1 to n do
      Line_shadow.touch t ~now:i (line * 64) 4
    done
  in
  touch_n 0 1;
  (* reuse 0: <10 *)
  touch_n 1 50;
  (* reuse 49: <100 *)
  touch_n 2 500;
  (* <1000 *)
  touch_n 3 5000;
  (* <10000 *)
  touch_n 4 20000;
  (* >10000 *)
  let b = Line_shadow.bins t in
  Alcotest.(check int) "<10" 1 b.Line_shadow.under_10;
  Alcotest.(check int) "<100" 1 b.Line_shadow.under_100;
  Alcotest.(check int) "<1000" 1 b.Line_shadow.under_1000;
  Alcotest.(check int) "<10000" 1 b.Line_shadow.under_10000;
  Alcotest.(check int) ">10000" 1 b.Line_shadow.over_10000

let test_fractions_sum_to_one () =
  let t = Line_shadow.create () in
  Line_shadow.touch t ~now:0 0 8;
  Line_shadow.touch t ~now:0 64 8;
  let a, b, c, d, e = Line_shadow.bin_fractions t in
  Alcotest.(check (float 1e-9)) "sum 1" 1.0 (a +. b +. c +. d +. e)

let test_empty_fractions () =
  let t = Line_shadow.create () in
  let a, b, c, d, e = Line_shadow.bin_fractions t in
  Alcotest.(check (float 1e-9)) "all zero" 0.0 (a +. b +. c +. d +. e)

let test_records_sorted () =
  let t = Line_shadow.create ~line_size:64 () in
  Line_shadow.touch t ~now:0 640 8;
  Line_shadow.touch t ~now:0 0 8;
  Line_shadow.touch t ~now:0 320 8;
  let addrs = List.map (fun r -> r.Line_shadow.line_addr) (Line_shadow.records t) in
  Alcotest.(check (list int)) "ascending" [ 0; 5; 10 ] addrs

let test_line_size_validation () =
  Alcotest.check_raises "non pow2"
    (Invalid_argument "Line_shadow.create: line size must be a positive power of two") (fun () ->
      ignore (Line_shadow.create ~line_size:48 ()))

let () =
  Alcotest.run "line_shadow"
    [
      ( "line_shadow",
        [
          Alcotest.test_case "line granularity" `Quick test_line_granularity;
          Alcotest.test_case "straddling access" `Quick test_straddling_access;
          Alcotest.test_case "bins" `Quick test_bins;
          Alcotest.test_case "fractions sum to one" `Quick test_fractions_sum_to_one;
          Alcotest.test_case "empty fractions" `Quick test_empty_fractions;
          Alcotest.test_case "records sorted" `Quick test_records_sorted;
          Alcotest.test_case "line size validation" `Quick test_line_size_validation;
        ] );
    ]
