let make_symbols names =
  let syms = Dbi.Symbol.create () in
  let ids = List.map (Dbi.Symbol.intern syms) names in
  (syms, ids)

let test_root_exists () =
  let t = Dbi.Context.create () in
  Alcotest.(check int) "only root" 1 (Dbi.Context.count t);
  Alcotest.(check int) "root depth" 0 (Dbi.Context.depth t Dbi.Context.root);
  Alcotest.(check (option int)) "root has no parent" None (Dbi.Context.parent t Dbi.Context.root)

let test_enter_interns () =
  let t = Dbi.Context.create () in
  let a = Dbi.Context.enter t Dbi.Context.root 0 in
  let a' = Dbi.Context.enter t Dbi.Context.root 0 in
  Alcotest.(check int) "same path same ctx" a a';
  Alcotest.(check int) "two nodes" 2 (Dbi.Context.count t)

let test_context_sensitivity () =
  (* D called from B and from C gets two distinct contexts (the paper's
     D1/D2 in Fig 2) *)
  let t = Dbi.Context.create () in
  let b = Dbi.Context.enter t Dbi.Context.root 1 in
  let c = Dbi.Context.enter t Dbi.Context.root 2 in
  let d1 = Dbi.Context.enter t b 3 in
  let d2 = Dbi.Context.enter t c 3 in
  Alcotest.(check bool) "distinct contexts" true (d1 <> d2);
  Alcotest.(check int) "same function" (Dbi.Context.fn t d1) (Dbi.Context.fn t d2)

let test_depth_and_parent () =
  let t = Dbi.Context.create () in
  let a = Dbi.Context.enter t Dbi.Context.root 0 in
  let b = Dbi.Context.enter t a 1 in
  Alcotest.(check int) "depth 2" 2 (Dbi.Context.depth t b);
  Alcotest.(check (option int)) "parent" (Some a) (Dbi.Context.parent t b)

let test_path_rendering () =
  let syms, ids = make_symbols [ "main"; "localSearch"; "pkmedian" ] in
  let t = Dbi.Context.create () in
  let ctx =
    List.fold_left (fun parent fn -> Dbi.Context.enter t parent fn) Dbi.Context.root ids
  in
  Alcotest.(check string) "path" "main/localSearch/pkmedian" (Dbi.Context.path t syms ctx);
  Alcotest.(check string) "root path" "<root>" (Dbi.Context.path t syms Dbi.Context.root)

let test_children_order () =
  let t = Dbi.Context.create () in
  let a = Dbi.Context.enter t Dbi.Context.root 0 in
  let b = Dbi.Context.enter t Dbi.Context.root 1 in
  let c = Dbi.Context.enter t Dbi.Context.root 2 in
  ignore (Dbi.Context.enter t Dbi.Context.root 1);
  Alcotest.(check (list int)) "creation order, no dups" [ a; b; c ]
    (Dbi.Context.children t Dbi.Context.root)

let test_recursion_chains () =
  (* self-recursion makes a fresh context per depth level *)
  let t = Dbi.Context.create () in
  let rec go parent n acc =
    if n = 0 then acc
    else
      let ctx = Dbi.Context.enter t parent 0 in
      go ctx (n - 1) (ctx :: acc)
  in
  let ctxs = go Dbi.Context.root 5 [] in
  let distinct = List.sort_uniq compare ctxs in
  Alcotest.(check int) "five distinct" 5 (List.length distinct)

let test_fn_of_root_rejected () =
  let t = Dbi.Context.create () in
  Alcotest.check_raises "root has no fn" (Invalid_argument "Context.fn: root has no function")
    (fun () -> ignore (Dbi.Context.fn t Dbi.Context.root))

let () =
  Alcotest.run "context"
    [
      ( "context",
        [
          Alcotest.test_case "root exists" `Quick test_root_exists;
          Alcotest.test_case "enter interns" `Quick test_enter_interns;
          Alcotest.test_case "context sensitivity" `Quick test_context_sensitivity;
          Alcotest.test_case "depth and parent" `Quick test_depth_and_parent;
          Alcotest.test_case "path rendering" `Quick test_path_rendering;
          Alcotest.test_case "children order" `Quick test_children_order;
          Alcotest.test_case "recursion chains" `Quick test_recursion_chains;
          Alcotest.test_case "fn of root rejected" `Quick test_fn_of_root_rejected;
        ] );
    ]
