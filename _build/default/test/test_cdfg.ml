(* CDFG construction over a toy program shaped like the paper's Fig 1/2:
   main calls A and C; A calls B; data flows A->C and B->C across the
   A-subtree boundary. *)

let run_guest body =
  let sigil = ref None and cg = ref None in
  let r =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            sigil := Some t;
            Sigil.Tool.tool t);
          (fun m ->
            let t = Callgrind.Tool.create m in
            cg := Some t;
            Callgrind.Tool.tool t);
        ]
      body
  in
  (Option.get !sigil, Option.get !cg, r.Dbi.Runner.machine)

let find_ctx m path_wanted =
  let contexts = Dbi.Machine.contexts m in
  let symbols = Dbi.Machine.symbols m in
  let found = ref None in
  Dbi.Context.iter contexts (fun ctx ->
      if Dbi.Context.path contexts symbols ctx = path_wanted then found := Some ctx);
  match !found with
  | Some ctx -> ctx
  | None -> Alcotest.failf "no context %s" path_wanted

let toy m =
  Dbi.Guest.call m "main" (fun () ->
      let buf = Dbi.Guest.alloc m 64 in
      Dbi.Guest.call m "A" (fun () ->
          Dbi.Guest.iop m 100;
          Dbi.Guest.write m buf 8;
          (* A -> C, crosses A's box *)
          Dbi.Guest.call m "B" (fun () ->
              Dbi.Guest.iop m 50;
              Dbi.Guest.write m (buf + 8) 8;
              (* B -> C, crosses too *)
              Dbi.Guest.write m (buf + 16) 8);
          Dbi.Guest.read m (buf + 16) 8 (* B -> A, internal to A's box *));
      Dbi.Guest.call m "C" (fun () ->
          Dbi.Guest.iop m 30;
          Dbi.Guest.read m buf 8;
          Dbi.Guest.read m (buf + 8) 8))

let build () =
  let sigil, cg, m = run_guest toy in
  (Analysis.Cdfg.build ~callgrind:cg sigil, m)

let test_inclusive_ops () =
  let cdfg, m = build () in
  let node path = Analysis.Cdfg.node cdfg (find_ctx m path) in
  Alcotest.(check int) "A self" 100 (node "main/A").Analysis.Cdfg.self_ops;
  Alcotest.(check int) "A inclusive" 150 (node "main/A").Analysis.Cdfg.incl_ops;
  Alcotest.(check int) "root inclusive" 180 (Analysis.Cdfg.root cdfg).Analysis.Cdfg.incl_ops

let test_crossing_edges () =
  let cdfg, m = build () in
  let node path = Analysis.Cdfg.node cdfg (find_ctx m path) in
  (* A's box: out-crossing bytes are A->C (8) and B->C (8); B->A stays in *)
  let a = node "main/A" in
  Alcotest.(check int) "A box output unique" 16 a.Analysis.Cdfg.incl_output_unique;
  Alcotest.(check int) "A box input" 0 a.Analysis.Cdfg.incl_input_unique;
  (* B's own box leaks both its writes: B->C and B->A *)
  let b = node "main/A/B" in
  Alcotest.(check int) "B box output unique" 16 b.Analysis.Cdfg.incl_output_unique;
  let c = node "main/C" in
  Alcotest.(check int) "C box input unique" 16 c.Analysis.Cdfg.incl_input_unique;
  Alcotest.(check int) "C box output" 0 c.Analysis.Cdfg.incl_output_unique

let test_internal_edges_absorbed () =
  let cdfg, m = build () in
  (* the main box contains every transfer: nothing crosses it except
     program I/O (none here) *)
  let main = Analysis.Cdfg.node cdfg (find_ctx m "main") in
  Alcotest.(check int) "main input" 0 main.Analysis.Cdfg.incl_input_unique;
  Alcotest.(check int) "main output" 0 main.Analysis.Cdfg.incl_output_unique

let test_ancestor_relation () =
  let cdfg, m = build () in
  let a = find_ctx m "main/A" and b = find_ctx m "main/A/B" and c = find_ctx m "main/C" in
  Alcotest.(check bool) "A anc B" true (Analysis.Cdfg.is_ancestor cdfg a b);
  Alcotest.(check bool) "B not anc A" false (Analysis.Cdfg.is_ancestor cdfg b a);
  Alcotest.(check bool) "A not anc C" false (Analysis.Cdfg.is_ancestor cdfg a c);
  Alcotest.(check bool) "self ancestor" true (Analysis.Cdfg.is_ancestor cdfg a a)

let test_cycles_from_callgrind () =
  let cdfg, _ = build () in
  (* with a callgrind table attached, cycles >= ops (misses only add) *)
  let root = Analysis.Cdfg.root cdfg in
  Alcotest.(check bool) "cycles >= ops" true
    (root.Analysis.Cdfg.incl_cycles >= root.Analysis.Cdfg.incl_ops);
  Alcotest.(check int) "total matches root" root.Analysis.Cdfg.incl_cycles
    (Analysis.Cdfg.total_cycles cdfg)

let test_without_callgrind_cycles_are_ops () =
  let sigil, _, _ = run_guest toy in
  let cdfg = Analysis.Cdfg.build sigil in
  let root = Analysis.Cdfg.root cdfg in
  Alcotest.(check int) "cycles = ops" root.Analysis.Cdfg.incl_ops root.Analysis.Cdfg.incl_cycles

let test_preorder_contexts () =
  let cdfg, _ = build () in
  match Analysis.Cdfg.contexts cdfg with
  | first :: rest ->
    Alcotest.(check int) "root first" Dbi.Context.root first;
    Alcotest.(check bool) "all nodes present" true (List.length rest >= 4)
  | [] -> Alcotest.fail "empty preorder"

let () =
  Alcotest.run "cdfg"
    [
      ( "cdfg",
        [
          Alcotest.test_case "inclusive ops" `Quick test_inclusive_ops;
          Alcotest.test_case "crossing edges" `Quick test_crossing_edges;
          Alcotest.test_case "internal edges absorbed" `Quick test_internal_edges_absorbed;
          Alcotest.test_case "ancestor relation" `Quick test_ancestor_relation;
          Alcotest.test_case "cycles from callgrind" `Quick test_cycles_from_callgrind;
          Alcotest.test_case "without callgrind cycles=ops" `Quick
            test_without_callgrind_cycles_are_ops;
          Alcotest.test_case "preorder contexts" `Quick test_preorder_contexts;
        ] );
    ]
