(* End-to-end checks: a toy guest program with hand-computed communication,
   run under the full Sigil tool. Call overhead is disabled so operation
   counts are exact. *)

let run_guest ?(options = Sigil.Options.default) body =
  let tool = ref None in
  let r =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      body
  in
  (Option.get !tool, r.Dbi.Runner.machine)

let find_ctx m path_wanted =
  let contexts = Dbi.Machine.contexts m in
  let symbols = Dbi.Machine.symbols m in
  let found = ref None in
  Dbi.Context.iter contexts (fun ctx ->
      if Dbi.Context.path contexts symbols ctx = path_wanted then found := Some ctx);
  match !found with
  | Some ctx -> ctx
  | None -> Alcotest.failf "no context %s" path_wanted

(* main writes 8 bytes, producer writes 16 more; consumer reads all 24,
   re-reads main's 8, and writes + reads back 8 of its own. *)
let toy m =
  Dbi.Guest.call m "main" (fun () ->
      let a = Dbi.Guest.alloc m 64 in
      Dbi.Guest.write m a 8;
      Dbi.Guest.call m "producer" (fun () ->
          Dbi.Guest.iop m 5;
          Dbi.Guest.write m (a + 8) 8;
          Dbi.Guest.write m (a + 16) 8);
      Dbi.Guest.call m "consumer" (fun () ->
          Dbi.Guest.read m a 8;
          Dbi.Guest.read m (a + 8) 8;
          Dbi.Guest.read m (a + 16) 8;
          Dbi.Guest.read m a 8;
          (* re-read: non-unique *)
          Dbi.Guest.flop m 7;
          Dbi.Guest.write m (a + 24) 8;
          Dbi.Guest.read m (a + 24) 8 (* local *)))

let test_classification_exact () =
  let tool, m = run_guest toy in
  let p = Sigil.Tool.profile tool in
  let s = Sigil.Profile.stats p (find_ctx m "main/consumer") in
  Alcotest.(check int) "input unique" 24 s.Sigil.Profile.input_unique;
  Alcotest.(check int) "input nonunique" 8 s.Sigil.Profile.input_nonunique;
  Alcotest.(check int) "local unique" 8 s.Sigil.Profile.local_unique;
  Alcotest.(check int) "local nonunique" 0 s.Sigil.Profile.local_nonunique;
  Alcotest.(check int) "written" 8 s.Sigil.Profile.written;
  Alcotest.(check int) "fp ops" 7 s.Sigil.Profile.fp_ops;
  let sp = Sigil.Profile.stats p (find_ctx m "main/producer") in
  Alcotest.(check int) "producer writes" 16 sp.Sigil.Profile.written;
  Alcotest.(check int) "producer int ops" 5 sp.Sigil.Profile.int_ops

let test_edges_exact () =
  let tool, m = run_guest toy in
  let p = Sigil.Tool.profile tool in
  let consumer = find_ctx m "main/consumer" in
  let producer = find_ctx m "main/producer" in
  let main = find_ctx m "main" in
  let edge src =
    List.find (fun (e : Sigil.Profile.edge) -> e.Sigil.Profile.src = src)
      (Sigil.Profile.in_edges p consumer)
  in
  Alcotest.(check (pair int int)) "main->consumer (total, unique)" (16, 8)
    ((edge main).Sigil.Profile.bytes, (edge main).Sigil.Profile.unique_bytes);
  Alcotest.(check (pair int int)) "producer->consumer" (16, 16)
    ((edge producer).Sigil.Profile.bytes, (edge producer).Sigil.Profile.unique_bytes);
  Alcotest.(check (pair int int)) "producer output" (16, 16)
    (Sigil.Profile.output_bytes p producer)

let test_reuse_bins_exact () =
  let tool, _ = run_guest ~options:Sigil.Options.(with_reuse default) toy in
  let bins = Sigil.Reuse.version_bins (Sigil.Tool.reuse tool) in
  (* 16 producer bytes + 8 local bytes read once; 8 main bytes re-read *)
  Alcotest.(check int) "zero reuse" 24 bins.Sigil.Reuse.zero;
  Alcotest.(check int) "low reuse" 8 bins.Sigil.Reuse.low;
  Alcotest.(check int) "high reuse" 0 bins.Sigil.Reuse.high

let test_event_log_structure () =
  let tool, m = run_guest ~options:Sigil.Options.(with_events default) toy in
  let log =
    match Sigil.Tool.event_log tool with
    | Some log -> log
    | None -> Alcotest.fail "no event log"
  in
  let consumer = find_ctx m "main/consumer" in
  let producer = find_ctx m "main/producer" in
  let main = find_ctx m "main" in
  let xfers =
    List.filter_map
      (function
        | Sigil.Event_log.Xfer { src_ctx; dst_ctx; bytes; unique_bytes; _ }
          when dst_ctx = consumer ->
          Some (src_ctx, bytes, unique_bytes)
        | Sigil.Event_log.Xfer _ | Sigil.Event_log.Call _ | Sigil.Event_log.Ret _
        | Sigil.Event_log.Comp _ ->
          None)
      (Sigil.Event_log.entries log)
  in
  Alcotest.(check int) "two transfer edges into consumer" 2 (List.length xfers);
  Alcotest.(check bool) "from main" true (List.mem (main, 16, 8) xfers);
  Alcotest.(check bool) "from producer" true (List.mem (producer, 16, 16) xfers);
  (* calls and returns are balanced *)
  let calls, rets =
    List.fold_left
      (fun (c, r) -> function
        | Sigil.Event_log.Call _ -> (c + 1, r)
        | Sigil.Event_log.Ret _ -> (c, r + 1)
        | Sigil.Event_log.Comp _ | Sigil.Event_log.Xfer _ -> (c, r))
      (0, 0) (Sigil.Event_log.entries log)
  in
  Alcotest.(check int) "balanced" calls rets;
  Alcotest.(check int) "three calls" 3 calls

let test_same_function_cross_call_edge () =
  (* a function consuming data from an earlier call of itself produces a
     dependency edge in the event log but local bytes in the profile *)
  let body m =
    Dbi.Guest.call m "main" (fun () ->
        let a = Dbi.Guest.alloc m 16 in
        Dbi.Guest.call m "iter" (fun () -> Dbi.Guest.write m a 8);
        Dbi.Guest.call m "iter" (fun () ->
            Dbi.Guest.read m a 8;
            Dbi.Guest.write m a 8))
  in
  let tool, m = run_guest ~options:Sigil.Options.(with_events default) body in
  let iter_ctx = find_ctx m "main/iter" in
  let p = Sigil.Tool.profile tool in
  let s = Sigil.Profile.stats p iter_ctx in
  Alcotest.(check int) "classified local" 8 s.Sigil.Profile.local_unique;
  let log = Option.get (Sigil.Tool.event_log tool) in
  let self_edges =
    List.filter
      (function
        | Sigil.Event_log.Xfer { src_ctx; dst_ctx; src_call; dst_call; _ } ->
          src_ctx = iter_ctx && dst_ctx = iter_ctx && src_call <> dst_call
        | Sigil.Event_log.Call _ | Sigil.Event_log.Ret _ | Sigil.Event_log.Comp _ -> false)
      (Sigil.Event_log.entries log)
  in
  Alcotest.(check int) "cross-call self edge" 1 (List.length self_edges)

let test_line_mode () =
  let body m =
    Dbi.Guest.call m "main" (fun () ->
        let a = Dbi.Guest.alloc m 256 in
        for _ = 1 to 3 do
          Dbi.Guest.read m a 8
        done;
        Dbi.Guest.read m (a + 128) 8)
  in
  let tool, _ = run_guest ~options:Sigil.Options.(with_line_size default 64) body in
  match Sigil.Tool.line_shadow tool with
  | None -> Alcotest.fail "line mode not active"
  | Some line ->
    Alcotest.(check int) "two lines touched" 2 (Sigil.Line_shadow.lines line);
    (* line mode replaces function aggregation *)
    Alcotest.(check (list int)) "no byte profile" []
      (Sigil.Profile.contexts (Sigil.Tool.profile tool))

let test_memory_limit_accuracy_loss () =
  let body m =
    Dbi.Guest.call m "main" (fun () ->
        let chunk = Sigil.Shadow.chunk_bytes in
        let a = Dbi.Guest.alloc m (4 * chunk) in
        Dbi.Guest.call m "producer" (fun () -> Dbi.Guest.write m a 8);
        (* touch three more chunks to push the first out *)
        Dbi.Guest.call m "toucher" (fun () ->
            Dbi.Guest.write m (a + chunk) 8;
            Dbi.Guest.write m (a + (2 * chunk)) 8;
            Dbi.Guest.write m (a + (3 * chunk)) 8);
        Dbi.Guest.call m "consumer" (fun () -> Dbi.Guest.read m a 8))
  in
  let tool, m = run_guest ~options:Sigil.Options.(with_max_chunks default 2) body in
  Alcotest.(check bool) "evictions happened" true (Sigil.Tool.shadow_evictions tool > 0);
  (* the read of the evicted byte is misattributed to program input *)
  let p = Sigil.Tool.profile tool in
  let consumer = find_ctx m "main/consumer" in
  match Sigil.Profile.in_edges p consumer with
  | [ e ] -> Alcotest.(check int) "producer forgotten" Dbi.Context.root e.Sigil.Profile.src
  | edges -> Alcotest.failf "expected one edge, got %d" (List.length edges)

let test_report_rows () =
  let tool, _ = run_guest toy in
  let rows = Sigil.Report.rows tool in
  Alcotest.(check bool) "has rows" true (List.length rows >= 3);
  let consumer = List.find (fun r -> r.Sigil.Report.path = "main/consumer") rows in
  Alcotest.(check int) "row input unique" 24 consumer.Sigil.Report.input_unique;
  Alcotest.(check int) "row input total" 32 consumer.Sigil.Report.input_total

let test_stripped_run_still_works () =
  let tool = ref None in
  let r =
    Dbi.Runner.run ~stripped:true ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      toy
  in
  let rows = Sigil.Report.rows (Option.get !tool) in
  Alcotest.(check bool) "rows exist" true (List.length rows >= 3);
  List.iter
    (fun row ->
      Alcotest.(check bool) "names degraded" true
        (row.Sigil.Report.path = "<root>"
        || String.length row.Sigil.Report.path >= 4
           && String.sub row.Sigil.Report.path 0 4 = "???:"))
    rows;
  ignore r

let () =
  Alcotest.run "sigil_tool"
    [
      ( "sigil_tool",
        [
          Alcotest.test_case "classification exact" `Quick test_classification_exact;
          Alcotest.test_case "edges exact" `Quick test_edges_exact;
          Alcotest.test_case "reuse bins exact" `Quick test_reuse_bins_exact;
          Alcotest.test_case "event log structure" `Quick test_event_log_structure;
          Alcotest.test_case "same-fn cross-call edge" `Quick test_same_function_cross_call_edge;
          Alcotest.test_case "line mode" `Quick test_line_mode;
          Alcotest.test_case "memory limit accuracy loss" `Quick test_memory_limit_accuracy_loss;
          Alcotest.test_case "report rows" `Quick test_report_rows;
          Alcotest.test_case "stripped run still works" `Quick test_stripped_run_still_works;
        ] );
    ]
