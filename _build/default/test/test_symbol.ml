let test_intern_idempotent () =
  let t = Dbi.Symbol.create () in
  let a = Dbi.Symbol.intern t "main" in
  let b = Dbi.Symbol.intern t "main" in
  Alcotest.(check int) "same id" a b;
  Alcotest.(check int) "count" 1 (Dbi.Symbol.count t)

let test_dense_ids () =
  let t = Dbi.Symbol.create () in
  let ids = List.map (Dbi.Symbol.intern t) [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check (list int)) "dense from zero" [ 0; 1; 2; 3 ] ids

let test_name_roundtrip () =
  let t = Dbi.Symbol.create () in
  let id = Dbi.Symbol.intern t "pkmedian" in
  Alcotest.(check string) "name back" "pkmedian" (Dbi.Symbol.name t id)

let test_stripped_names () =
  let t = Dbi.Symbol.create ~stripped:true () in
  let id = Dbi.Symbol.intern t "secret_function" in
  Alcotest.(check bool) "stripped flag" true (Dbi.Symbol.is_stripped t);
  Alcotest.(check string) "degraded name" ("???:" ^ string_of_int id) (Dbi.Symbol.name t id)

let test_code_bases_disjoint () =
  let t = Dbi.Symbol.create () in
  let a = Dbi.Symbol.intern t "f" and b = Dbi.Symbol.intern t "g" in
  let ba = Dbi.Symbol.code_base t a and bb = Dbi.Symbol.code_base t b in
  Alcotest.(check bool) "pages disjoint" true (abs (ba - bb) >= Dbi.Symbol.code_page_size);
  Alcotest.(check bool) "above data space" true (ba > Dbi.Addr_space.stack_top)

let test_unknown_id_rejected () =
  let t = Dbi.Symbol.create () in
  Alcotest.check_raises "bad id" (Invalid_argument "Symbol: unknown id") (fun () ->
      ignore (Dbi.Symbol.name t 5))

let test_iter_order () =
  let t = Dbi.Symbol.create () in
  List.iter (fun n -> ignore (Dbi.Symbol.intern t n)) [ "x"; "y"; "z" ];
  let seen = ref [] in
  Dbi.Symbol.iter t (fun id name -> seen := (id, name) :: !seen);
  Alcotest.(check (list (pair int string)))
    "id order" [ (0, "x"); (1, "y"); (2, "z") ] (List.rev !seen)

let test_growth () =
  let t = Dbi.Symbol.create () in
  for i = 0 to 499 do
    ignore (Dbi.Symbol.intern t ("fn" ^ string_of_int i))
  done;
  Alcotest.(check int) "count grows" 500 (Dbi.Symbol.count t);
  Alcotest.(check string) "late name intact" "fn499" (Dbi.Symbol.name t 499)

let () =
  Alcotest.run "symbol"
    [
      ( "symbol",
        [
          Alcotest.test_case "intern idempotent" `Quick test_intern_idempotent;
          Alcotest.test_case "dense ids" `Quick test_dense_ids;
          Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "stripped names" `Quick test_stripped_names;
          Alcotest.test_case "code bases disjoint" `Quick test_code_bases_disjoint;
          Alcotest.test_case "unknown id rejected" `Quick test_unknown_id_rejected;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "table growth" `Quick test_growth;
        ] );
    ]
