let fresh () = Dbi.Machine.create ~call_overhead:0 ()

exception Boom

let test_call_returns_value () =
  let m = fresh () in
  let v = Dbi.Guest.call m "main" (fun () -> 42) in
  Alcotest.(check int) "value through" 42 v;
  Dbi.Machine.finish m

let test_call_unwinds_on_exception () =
  let m = fresh () in
  (try Dbi.Guest.call m "main" (fun () -> raise Boom) with Boom -> ());
  Alcotest.(check int) "stack unwound" 0 (Dbi.Machine.stack_depth m);
  Dbi.Machine.finish m

let test_with_buffer_frees () =
  let m = fresh () in
  Dbi.Guest.call m "main" (fun () ->
      Dbi.Guest.with_buffer m 64 (fun buf -> Dbi.Guest.write m buf 8));
  Alcotest.(check int) "no live blocks" 0 (Dbi.Addr_space.live_blocks (Dbi.Machine.space m))

let test_with_buffer_frees_on_exception () =
  let m = fresh () in
  (try
     Dbi.Guest.call m "main" (fun () ->
         Dbi.Guest.with_buffer m 64 (fun _ -> raise Boom))
   with Boom -> ());
  Alcotest.(check int) "freed on raise" 0 (Dbi.Addr_space.live_blocks (Dbi.Machine.space m))

let test_with_frame_balanced () =
  let m = fresh () in
  Dbi.Guest.call m "main" (fun () ->
      Dbi.Guest.with_frame m 32 (fun fr -> Dbi.Guest.write m fr 8));
  (* a second frame starts at the same place the first one did *)
  let f1 = Dbi.Addr_space.push_frame (Dbi.Machine.space m) 32 in
  Dbi.Addr_space.pop_frame (Dbi.Machine.space m);
  let f2 = Dbi.Guest.with_frame m 32 (fun fr -> fr) in
  Alcotest.(check int) "frames balanced" f1 f2

let test_read_range_chunking () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Dbi.Guest.read_range m 0x200000 20;
  Dbi.Machine.leave m;
  let c = Dbi.Machine.counters m in
  Alcotest.(check int) "3 accesses for 20 bytes" 3 c.Dbi.Machine.reads;
  Alcotest.(check int) "20 bytes total" 20 c.Dbi.Machine.read_bytes

let test_memcpy_moves_bytes () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Dbi.Guest.memcpy m ~dst:0x300000 ~src:0x200000 24;
  Dbi.Machine.leave m;
  let c = Dbi.Machine.counters m in
  Alcotest.(check int) "read bytes" 24 c.Dbi.Machine.read_bytes;
  Alcotest.(check int) "written bytes" 24 c.Dbi.Machine.written_bytes;
  Alcotest.(check int) "one op per word" 3 c.Dbi.Machine.int_ops

let test_branch_and_ops () =
  let m = fresh () in
  let _ = Dbi.Machine.enter m "main" in
  Dbi.Guest.branch m true;
  Dbi.Guest.iop m 2;
  Dbi.Guest.flop m 3;
  Dbi.Machine.leave m;
  let c = Dbi.Machine.counters m in
  Alcotest.(check int) "branch" 1 c.Dbi.Machine.branches;
  Alcotest.(check int) "iops" 2 c.Dbi.Machine.int_ops;
  Alcotest.(check int) "flops" 3 c.Dbi.Machine.fp_ops

let () =
  Alcotest.run "guest"
    [
      ( "guest",
        [
          Alcotest.test_case "call returns value" `Quick test_call_returns_value;
          Alcotest.test_case "call unwinds on exception" `Quick test_call_unwinds_on_exception;
          Alcotest.test_case "with_buffer frees" `Quick test_with_buffer_frees;
          Alcotest.test_case "with_buffer frees on exception" `Quick
            test_with_buffer_frees_on_exception;
          Alcotest.test_case "with_frame balanced" `Quick test_with_frame_balanced;
          Alcotest.test_case "read_range chunking" `Quick test_read_range_chunking;
          Alcotest.test_case "memcpy moves bytes" `Quick test_memcpy_moves_bytes;
          Alcotest.test_case "branch and ops" `Quick test_branch_and_ops;
        ] );
    ]
