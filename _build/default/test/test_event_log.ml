open Sigil

let sample_entries =
  [
    Event_log.Call { ctx = 1; call = 1 };
    Event_log.Comp { ctx = 1; call = 1; int_ops = 10; fp_ops = 2 };
    Event_log.Xfer
      { src_ctx = 0; src_call = 0; dst_ctx = 1; dst_call = 1; bytes = 64; unique_bytes = 32 };
    Event_log.Ret { ctx = 1; call = 1 };
  ]

let entry = Alcotest.testable (fun ppf e -> Fmt.string ppf (Event_log.entry_to_string e)) ( = )

let test_add_and_iterate () =
  let log = Event_log.create () in
  List.iter (Event_log.add log) sample_entries;
  Alcotest.(check int) "length" 4 (Event_log.length log);
  Alcotest.(check (list entry)) "order preserved" sample_entries (Event_log.entries log)

let test_string_roundtrip () =
  List.iter
    (fun e ->
      let s = Event_log.entry_to_string e in
      Alcotest.check entry ("roundtrip " ^ s) e (Event_log.entry_of_string s))
    sample_entries

let test_malformed_rejected () =
  List.iter
    (fun line ->
      match Event_log.entry_of_string line with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" line)
    [ "Z 1 2"; "C 1"; "O 1 2 3"; "X 1 2 3"; "C one 1"; "" ]

let test_file_roundtrip () =
  let log = Event_log.create () in
  List.iter (Event_log.add log) sample_entries;
  let path = Filename.temp_file "sigil_events" ".txt" in
  Event_log.save log path;
  let loaded = Event_log.load path in
  Sys.remove path;
  Alcotest.(check (list entry)) "file roundtrip" sample_entries (Event_log.entries loaded)

let qcheck_entry_gen =
  let open QCheck.Gen in
  let small = int_range 0 1000 in
  oneof
    [
      map2 (fun ctx call -> Event_log.Call { ctx; call }) small small;
      map2 (fun ctx call -> Event_log.Ret { ctx; call }) small small;
      map2
        (fun (ctx, call) (int_ops, fp_ops) -> Event_log.Comp { ctx; call; int_ops; fp_ops })
        (pair small small) (pair small small);
      map3
        (fun (src_ctx, src_call) (dst_ctx, dst_call) (bytes, unique_bytes) ->
          Event_log.Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes })
        (pair small small) (pair small small) (pair small small);
    ]

let qcheck_roundtrip =
  QCheck.Test.make ~name:"entry text roundtrip" ~count:500
    (QCheck.make ~print:Event_log.entry_to_string qcheck_entry_gen)
    (fun e -> Event_log.entry_of_string (Event_log.entry_to_string e) = e)

let () =
  Alcotest.run "event_log"
    [
      ( "event_log",
        [
          Alcotest.test_case "add and iterate" `Quick test_add_and_iterate;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
    ]
