open Sigil

let feed_episode sink ~reader ~reads ~first ~last =
  sink.Shadow.on_episode_end ~reader ~reads ~first ~last

let feed_version sink ~producer ~nonunique = sink.Shadow.on_version_end ~producer ~nonunique

let test_episode_accumulation () =
  let r = Reuse.create () in
  let sink = Reuse.sink r in
  feed_episode sink ~reader:3 ~reads:1 ~first:0 ~last:0;
  feed_episode sink ~reader:3 ~reads:4 ~first:100 ~last:1600;
  feed_episode sink ~reader:3 ~reads:2 ~first:200 ~last:700;
  let fr = Reuse.fn_reuse r 3 in
  Alcotest.(check int) "episodes" 3 fr.Reuse.episodes;
  Alcotest.(check int) "reused episodes" 2 fr.Reuse.reused_episodes;
  Alcotest.(check int) "reuse reads" 4 fr.Reuse.reuse_reads;
  Alcotest.(check int) "lifetime sum" 2000 fr.Reuse.lifetime_sum;
  Alcotest.(check (float 1e-9)) "avg lifetime" 1000.0 (Reuse.avg_lifetime r 3)

let test_histogram_binning () =
  let r = Reuse.create ~lifetime_bin:1000 () in
  let sink = Reuse.sink r in
  feed_episode sink ~reader:1 ~reads:2 ~first:0 ~last:999;
  (* bin 0 *)
  feed_episode sink ~reader:1 ~reads:2 ~first:0 ~last:1000;
  (* bin 1000 *)
  feed_episode sink ~reader:1 ~reads:2 ~first:500 ~last:3700;
  (* 3200 -> bin 3000 *)
  Alcotest.(check (list (pair int int)))
    "bins" [ (0, 1); (1000, 1); (3000, 1) ] (Reuse.histogram r 1)

let test_single_read_episodes_not_in_histogram () =
  let r = Reuse.create () in
  let sink = Reuse.sink r in
  feed_episode sink ~reader:1 ~reads:1 ~first:5 ~last:5;
  Alcotest.(check (list (pair int int))) "empty histogram" [] (Reuse.histogram r 1);
  Alcotest.(check (float 1e-9)) "avg 0" 0.0 (Reuse.avg_lifetime r 1)

let test_version_bins () =
  let r = Reuse.create () in
  let sink = Reuse.sink r in
  feed_version sink ~producer:1 ~nonunique:0;
  feed_version sink ~producer:1 ~nonunique:1;
  feed_version sink ~producer:2 ~nonunique:9;
  feed_version sink ~producer:2 ~nonunique:10;
  feed_version sink ~producer:2 ~nonunique:500;
  let b = Reuse.version_bins r in
  Alcotest.(check int) "zero" 1 b.Reuse.zero;
  Alcotest.(check int) "1-9" 2 b.Reuse.low;
  Alcotest.(check int) ">9" 2 b.Reuse.high

let test_contexts_listing () =
  let r = Reuse.create () in
  let sink = Reuse.sink r in
  feed_episode sink ~reader:7 ~reads:1 ~first:0 ~last:0;
  feed_episode sink ~reader:2 ~reads:1 ~first:0 ~last:0;
  Alcotest.(check (list int)) "ascending" [ 2; 7 ] (Reuse.contexts r)

let test_empty_context () =
  let r = Reuse.create () in
  let fr = Reuse.fn_reuse r 42 in
  Alcotest.(check int) "no episodes" 0 fr.Reuse.episodes;
  Alcotest.(check (list (pair int int))) "no histogram" [] (Reuse.histogram r 42)

let test_bin_width_validation () =
  Alcotest.check_raises "bad width" (Invalid_argument "Reuse.create: bin width must be positive")
    (fun () -> ignore (Reuse.create ~lifetime_bin:0 ()))

let qcheck_histogram_counts_match =
  QCheck.Test.make ~name:"histogram total = reused episodes" ~count:200
    QCheck.(list (pair (int_range 1 5) (int_range 0 100_000)))
    (fun eps ->
      let r = Reuse.create () in
      let sink = Reuse.sink r in
      List.iter
        (fun (reads, lifetime) ->
          feed_episode sink ~reader:1 ~reads ~first:0 ~last:lifetime)
        eps;
      let hist_total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Reuse.histogram r 1) in
      hist_total = (Reuse.fn_reuse r 1).Reuse.reused_episodes)

let () =
  Alcotest.run "reuse"
    [
      ( "reuse",
        [
          Alcotest.test_case "episode accumulation" `Quick test_episode_accumulation;
          Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
          Alcotest.test_case "single-read episodes excluded" `Quick
            test_single_read_episodes_not_in_histogram;
          Alcotest.test_case "version bins" `Quick test_version_bins;
          Alcotest.test_case "contexts listing" `Quick test_contexts_listing;
          Alcotest.test_case "empty context" `Quick test_empty_context;
          Alcotest.test_case "bin width validation" `Quick test_bin_width_validation;
          QCheck_alcotest.to_alcotest qcheck_histogram_counts_match;
        ] );
    ]
