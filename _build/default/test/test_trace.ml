(* Trace record/replay: the replayed machine must be indistinguishable from
   the original for every tool. *)

let small_guest m =
  Dbi.Guest.call m "main" (fun () ->
      let a = Dbi.Guest.alloc m 128 in
      Dbi.Guest.call m "operator new" (fun () ->
          Dbi.Guest.iop m 10;
          Dbi.Guest.write m a 8);
      Dbi.Guest.call m "producer" (fun () ->
          Dbi.Guest.flop m 20;
          Dbi.Guest.write_range m a 64);
      Dbi.Guest.call m "consumer" (fun () ->
          Dbi.Guest.read_range m a 64;
          Dbi.Guest.branch m true);
      Dbi.Guest.syscall m "write" ~reads:[ (a, 16) ] ~writes:[])

let with_temp f =
  let path = Filename.temp_file "dbi_trace" ".txt" in
  let finally () = if Sys.file_exists path then Sys.remove path in
  Fun.protect ~finally (fun () -> f path)

let test_counters_reproduced () =
  with_temp (fun path ->
      let original = Dbi.Trace.record path small_guest in
      let replayed = Dbi.Trace.replay ~tools:[] path in
      let a = Dbi.Machine.counters original and b = Dbi.Machine.counters replayed in
      Alcotest.(check int) "int ops" a.Dbi.Machine.int_ops b.Dbi.Machine.int_ops;
      Alcotest.(check int) "fp ops" a.Dbi.Machine.fp_ops b.Dbi.Machine.fp_ops;
      Alcotest.(check int) "reads" a.Dbi.Machine.reads b.Dbi.Machine.reads;
      Alcotest.(check int) "writes" a.Dbi.Machine.writes b.Dbi.Machine.writes;
      Alcotest.(check int) "read bytes" a.Dbi.Machine.read_bytes b.Dbi.Machine.read_bytes;
      Alcotest.(check int) "branches" a.Dbi.Machine.branches b.Dbi.Machine.branches;
      Alcotest.(check int) "calls" a.Dbi.Machine.calls b.Dbi.Machine.calls;
      Alcotest.(check int) "clock" (Dbi.Machine.now original) (Dbi.Machine.now replayed))

let test_sigil_profile_reproduced () =
  with_temp (fun path ->
      (* sigil attached live vs sigil driven from the trace *)
      let live = ref None in
      let _ =
        Dbi.Runner.run
          ~tools:
            [
              Dbi.Trace.recorder (open_out path);
              (fun m ->
                let t = Sigil.Tool.create m in
                live := Some t;
                Sigil.Tool.tool t);
            ]
          small_guest
      in
      let replayed = ref None in
      let _ =
        Dbi.Trace.replay
          ~tools:
            [
              (fun m ->
                let t = Sigil.Tool.create m in
                replayed := Some t;
                Sigil.Tool.tool t);
            ]
          path
      in
      let totals t = Sigil.Profile.totals (Sigil.Tool.profile (Option.get t)) in
      Alcotest.(check (pair int int)) "profile totals identical" (totals !live) (totals !replayed);
      let edge_count t =
        List.length (Sigil.Profile.edges (Sigil.Tool.profile (Option.get t)))
      in
      Alcotest.(check int) "edge count identical" (edge_count !live) (edge_count !replayed))

let test_workload_trace_roundtrip () =
  with_temp (fun path ->
      let w =
        match Workloads.Suite.find "swaptions" with Ok w -> w | Error e -> Alcotest.fail e
      in
      let original =
        Dbi.Trace.record path (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
      in
      let replayed = Dbi.Trace.replay ~tools:[] path in
      Alcotest.(check int) "clock identical" (Dbi.Machine.now original)
        (Dbi.Machine.now replayed);
      Alcotest.(check int) "context tree identical"
        (Dbi.Context.count (Dbi.Machine.contexts original))
        (Dbi.Context.count (Dbi.Machine.contexts replayed)))

let test_spaced_names_roundtrip () =
  let machine =
    Dbi.Trace.replay_events ~tools:[] [ "E main"; "E operator new"; "I 5"; "L"; "L" ]
  in
  let found = ref false in
  Dbi.Symbol.iter (Dbi.Machine.symbols machine) (fun _ n ->
      if n = "operator new" then found := true);
  Alcotest.(check bool) "name with space preserved" true !found

let test_malformed_rejected () =
  List.iter
    (fun line ->
      match Dbi.Trace.replay_events ~tools:[] [ "E main"; line ] with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" line)
    [ "Z 1"; "R 1"; "I x"; "B 2 3"; "E" ]

let test_blank_lines_ignored () =
  let machine = Dbi.Trace.replay_events ~tools:[] [ ""; "E main"; "  "; "I 3"; "L"; "" ] in
  Alcotest.(check int) "ops counted" 3 (Dbi.Machine.counters machine).Dbi.Machine.int_ops

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "counters reproduced" `Quick test_counters_reproduced;
          Alcotest.test_case "sigil profile reproduced" `Quick test_sigil_profile_reproduced;
          Alcotest.test_case "workload trace roundtrip" `Quick test_workload_trace_roundtrip;
          Alcotest.test_case "spaced names roundtrip" `Quick test_spaced_names_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "blank lines ignored" `Quick test_blank_lines_ignored;
        ] );
    ]
