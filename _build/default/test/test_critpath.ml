open Sigil

let log_of entries =
  let log = Event_log.create () in
  List.iter (Event_log.add log) entries;
  log

let call ctx call = Event_log.Call { ctx; call }
let ret ctx call = Event_log.Ret { ctx; call }
let comp ctx call ops = Event_log.Comp { ctx; call; int_ops = ops; fp_ops = 0 }

let xfer (src_ctx, src_call) (dst_ctx, dst_call) bytes =
  Event_log.Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes = bytes }

let test_serial_chain () =
  (* second call of f consumes the first call's output: fully serial *)
  let t =
    Analysis.Critpath.analyze
      (log_of
         [
           call 1 1; comp 1 1 10; ret 1 1;
           call 1 2; xfer (1, 1) (1, 2) 8; comp 1 2 10; ret 1 2;
         ])
  in
  Alcotest.(check int) "serial" 20 (Analysis.Critpath.serial_length t);
  Alcotest.(check int) "critical path" 20 (Analysis.Critpath.critical_path_length t);
  Alcotest.(check (float 1e-9)) "no parallelism" 1.0 (Analysis.Critpath.parallelism t)

let test_independent_calls_parallel () =
  let t =
    Analysis.Critpath.analyze
      (log_of [ call 1 1; comp 1 1 10; ret 1 1; call 1 2; comp 1 2 10; ret 1 2 ])
  in
  Alcotest.(check int) "critical path one call" 10 (Analysis.Critpath.critical_path_length t);
  Alcotest.(check (float 1e-9)) "2x parallel" 2.0 (Analysis.Critpath.parallelism t)

let test_non_blocking_caller () =
  (* A(5) calls B(7); A resumes for 4 more ops without reading B's data:
     the resumption depends only on A's previous occurrence (Fig 3) *)
  let entries = [ call 1 1; comp 1 1 5; call 2 1; comp 2 1 7; ret 2 1; comp 1 1 4; ret 1 1 ] in
  let t = Analysis.Critpath.analyze (log_of entries) in
  Alcotest.(check int) "serial" 16 (Analysis.Critpath.serial_length t);
  (* chains: A1(5)->B(12) and A1(5)->A2(9); B wins *)
  Alcotest.(check int) "critical path through B" 12 (Analysis.Critpath.critical_path_length t)

let test_data_dep_orders_caller () =
  (* same shape, but A's resumption consumes B's output *)
  let entries =
    [ call 1 1; comp 1 1 5; call 2 1; comp 2 1 7; ret 2 1;
      xfer (2, 1) (1, 1) 8; comp 1 1 4; ret 1 1 ]
  in
  let t = Analysis.Critpath.analyze (log_of entries) in
  Alcotest.(check int) "fully serial now" 16 (Analysis.Critpath.critical_path_length t)

let test_occurrences_within_call_ordered () =
  (* one call split into two fragments by a child call: occurrence order
     is conservatively enforced even without data deps *)
  let entries =
    [ call 1 1; comp 1 1 6; call 2 1; ret 2 1; comp 1 1 6; ret 1 1 ]
  in
  let t = Analysis.Critpath.analyze (log_of entries) in
  Alcotest.(check int) "both fragments chain" 12 (Analysis.Critpath.critical_path_length t)

let test_path_nodes_and_contexts () =
  let t =
    Analysis.Critpath.analyze
      (log_of
         [
           call 1 1; comp 1 1 3;
           call 2 1; xfer (1, 1) (2, 1) 4; comp 2 1 5; ret 2 1;
           ret 1 1;
         ])
  in
  (match Analysis.Critpath.critical_path t with
  | path ->
    Alcotest.(check bool) "non-empty" true (List.length path >= 2);
    let last = List.nth path (List.length path - 1) in
    Alcotest.(check int) "leaf is ctx 2" 2 last.Analysis.Critpath.ctx;
    Alcotest.(check int) "leaf inclusive" 8 last.Analysis.Critpath.inclusive);
  match Analysis.Critpath.critical_path_contexts t with
  | leaf :: _ -> Alcotest.(check int) "leaf first" 2 leaf
  | [] -> Alcotest.fail "empty context path"

let test_unknown_producer_ignored () =
  (* transfers from evicted/unknown producers impose no ordering *)
  let t =
    Analysis.Critpath.analyze
      (log_of [ call 1 1; xfer (99, 5) (1, 1) 8; comp 1 1 10; ret 1 1 ])
  in
  Alcotest.(check int) "runs fine" 10 (Analysis.Critpath.critical_path_length t)

let test_mismatched_comp_rejected () =
  match Analysis.Critpath.analyze (log_of [ call 1 1; comp 2 9 10 ]) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "accepted mismatched Comp"

let test_empty_log () =
  let t = Analysis.Critpath.analyze (log_of []) in
  Alcotest.(check int) "zero serial" 0 (Analysis.Critpath.serial_length t);
  Alcotest.(check (float 1e-9)) "parallelism 1" 1.0 (Analysis.Critpath.parallelism t)

let test_node_count () =
  let t =
    Analysis.Critpath.analyze
      (log_of [ call 1 1; comp 1 1 6; call 2 1; ret 2 1; comp 1 1 6; ret 1 1 ])
  in
  (* root fragment + A occ0 + B occ0 + A occ1 *)
  Alcotest.(check int) "four nodes" 4 (Analysis.Critpath.node_count t)

let test_schedule_one_core_serializes () =
  let t =
    Analysis.Critpath.analyze
      (log_of [ call 1 1; comp 1 1 10; ret 1 1; call 1 2; comp 1 2 10; ret 1 2 ])
  in
  let s = Analysis.Critpath.schedule t ~cores:1 in
  Alcotest.(check int) "makespan = serial" (Analysis.Critpath.serial_length t)
    s.Analysis.Critpath.makespan;
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 s.Analysis.Critpath.speedup

let test_schedule_parallel_work () =
  let t =
    Analysis.Critpath.analyze
      (log_of [ call 1 1; comp 1 1 10; ret 1 1; call 1 2; comp 1 2 10; ret 1 2 ])
  in
  let s = Analysis.Critpath.schedule t ~cores:2 in
  Alcotest.(check int) "two independent calls overlap" 10 s.Analysis.Critpath.makespan;
  Alcotest.(check (float 1e-9)) "speedup 2" 2.0 s.Analysis.Critpath.speedup

let test_schedule_respects_deps () =
  let t =
    Analysis.Critpath.analyze
      (log_of
         [
           call 1 1; comp 1 1 10; ret 1 1;
           call 1 2; xfer (1, 1) (1, 2) 8; comp 1 2 10; ret 1 2;
         ])
  in
  let s = Analysis.Critpath.schedule t ~cores:8 in
  Alcotest.(check int) "dependency serializes" 20 s.Analysis.Critpath.makespan

let test_schedule_bounds () =
  let t =
    Analysis.Critpath.analyze
      (log_of
         [ call 1 1; comp 1 1 7; ret 1 1; call 2 1; comp 2 1 9; ret 2 1;
           call 3 1; comp 3 1 5; ret 3 1 ])
  in
  List.iter
    (fun cores ->
      let s = Analysis.Critpath.schedule t ~cores in
      Alcotest.(check bool) "makespan >= critical path" true
        (s.Analysis.Critpath.makespan >= Analysis.Critpath.critical_path_length t);
      Alcotest.(check bool) "speedup <= cores" true
        (s.Analysis.Critpath.speedup <= float_of_int cores +. 1e-9);
      Alcotest.(check bool) "utilization in (0,1]" true
        (s.Analysis.Critpath.utilization > 0.0 && s.Analysis.Critpath.utilization <= 1.0 +. 1e-9))
    [ 1; 2; 4; 16 ]

let test_schedule_cores_validated () =
  let t = Analysis.Critpath.analyze (log_of []) in
  Alcotest.check_raises "zero cores" (Invalid_argument "Critpath.schedule: cores must be positive")
    (fun () -> ignore (Analysis.Critpath.schedule t ~cores:0))

let qcheck_parallelism_at_least_one =
  (* random well-formed single-level logs: parallelism >= 1 *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (pair (int_range 1 5) (int_range 0 50)))
  in
  QCheck.Test.make ~name:"parallelism >= 1" ~count:100 (QCheck.make gen) (fun calls ->
      let _, entries =
        List.fold_left
          (fun (counts, acc) (ctx, ops) ->
            let n = (try List.assoc ctx counts with Not_found -> 0) + 1 in
            let counts = (ctx, n) :: List.remove_assoc ctx counts in
            (counts, ret ctx n :: comp ctx n ops :: call ctx n :: acc))
          ([], []) calls
      in
      let t = Analysis.Critpath.analyze (log_of (List.rev entries)) in
      Analysis.Critpath.parallelism t >= 1.0 -. 1e-9
      && Analysis.Critpath.critical_path_length t <= Analysis.Critpath.serial_length t)

let () =
  Alcotest.run "critpath"
    [
      ( "critpath",
        [
          Alcotest.test_case "serial chain" `Quick test_serial_chain;
          Alcotest.test_case "independent calls parallel" `Quick test_independent_calls_parallel;
          Alcotest.test_case "non-blocking caller" `Quick test_non_blocking_caller;
          Alcotest.test_case "data dep orders caller" `Quick test_data_dep_orders_caller;
          Alcotest.test_case "occurrences ordered" `Quick test_occurrences_within_call_ordered;
          Alcotest.test_case "path nodes and contexts" `Quick test_path_nodes_and_contexts;
          Alcotest.test_case "unknown producer ignored" `Quick test_unknown_producer_ignored;
          Alcotest.test_case "mismatched comp rejected" `Quick test_mismatched_comp_rejected;
          Alcotest.test_case "empty log" `Quick test_empty_log;
          Alcotest.test_case "node count" `Quick test_node_count;
          Alcotest.test_case "schedule one core" `Quick test_schedule_one_core_serializes;
          Alcotest.test_case "schedule parallel work" `Quick test_schedule_parallel_work;
          Alcotest.test_case "schedule respects deps" `Quick test_schedule_respects_deps;
          Alcotest.test_case "schedule bounds" `Quick test_schedule_bounds;
          Alcotest.test_case "schedule cores validated" `Quick test_schedule_cores_validated;
          QCheck_alcotest.to_alcotest qcheck_parallelism_at_least_one;
        ] );
    ]
