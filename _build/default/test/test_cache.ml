let small = { Cachesim.Cache.size = 1024; assoc = 2; line = 64 }
(* 1024/2/64 = 8 sets *)

let test_cold_miss_then_hit () =
  let c = Cachesim.Cache.create small in
  Alcotest.(check bool) "first access misses" false (Cachesim.Cache.access c 0 8);
  Alcotest.(check bool) "second access hits" true (Cachesim.Cache.access c 0 8);
  Alcotest.(check int) "accesses" 2 (Cachesim.Cache.accesses c);
  Alcotest.(check int) "misses" 1 (Cachesim.Cache.misses c)

let test_same_line_hits () =
  let c = Cachesim.Cache.create small in
  ignore (Cachesim.Cache.access c 0 8);
  Alcotest.(check bool) "same line, other offset" true (Cachesim.Cache.access c 56 8)

let test_straddle_counts_one_access () =
  let c = Cachesim.Cache.create small in
  ignore (Cachesim.Cache.access c 60 8);
  (* touches lines 0 and 1 *)
  Alcotest.(check int) "one access" 1 (Cachesim.Cache.accesses c);
  Alcotest.(check bool) "both lines now resident" true
    (Cachesim.Cache.access c 0 8 && Cachesim.Cache.access c 64 8)

let test_lru_eviction () =
  let c = Cachesim.Cache.create small in
  (* set 0 holds 2 ways; lines mapping to set 0 are 64-byte lines at
     stride sets*64 = 512 *)
  ignore (Cachesim.Cache.access c 0 8);
  ignore (Cachesim.Cache.access c 512 8);
  (* touch line 0 again so 512 is LRU *)
  ignore (Cachesim.Cache.access c 0 8);
  ignore (Cachesim.Cache.access c 1024 8);
  (* evicts 512 *)
  Alcotest.(check bool) "mru stays" true (Cachesim.Cache.access c 0 8);
  Alcotest.(check bool) "lru evicted" false (Cachesim.Cache.access c 512 8)

let test_full_occupancy () =
  let c = Cachesim.Cache.create small in
  for i = 0 to 15 do
    ignore (Cachesim.Cache.access c (i * 64) 8)
  done;
  Alcotest.(check int) "16 cold fills" 16 (Cachesim.Cache.lines_filled c);
  for i = 0 to 15 do
    Alcotest.(check bool) (Printf.sprintf "line %d resident" i) true
      (Cachesim.Cache.access c (i * 64) 8)
  done

let test_reset () =
  let c = Cachesim.Cache.create small in
  ignore (Cachesim.Cache.access c 0 8);
  Cachesim.Cache.reset c;
  Alcotest.(check int) "counters cleared" 0 (Cachesim.Cache.accesses c);
  Alcotest.(check bool) "contents cleared" false (Cachesim.Cache.access c 0 8)

let test_geometry_validation () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Cache.create: geometry must be powers of two") (fun () ->
      ignore (Cachesim.Cache.create { Cachesim.Cache.size = 1000; assoc = 2; line = 64 }));
  Alcotest.check_raises "assoc*line > size"
    (Invalid_argument "Cache.create: assoc * line > size") (fun () ->
      ignore (Cachesim.Cache.create { Cachesim.Cache.size = 64; assoc = 2; line = 64 }))

let qcheck_misses_bounded =
  QCheck.Test.make ~name:"misses <= accesses" ~count:200
    QCheck.(list (int_range 0 100_000))
    (fun addrs ->
      let c = Cachesim.Cache.create small in
      List.iter (fun a -> ignore (Cachesim.Cache.access c a 4)) addrs;
      Cachesim.Cache.misses c <= Cachesim.Cache.accesses c
      && Cachesim.Cache.accesses c = List.length addrs)

let qcheck_working_set_fits =
  QCheck.Test.make ~name:"small working set stops missing" ~count:50
    QCheck.(int_range 1 8)
    (fun nlines ->
      let c = Cachesim.Cache.create { Cachesim.Cache.size = 4096; assoc = 8; line = 64 } in
      (* touch nlines distinct lines twice; second round must all hit *)
      for i = 0 to nlines - 1 do
        ignore (Cachesim.Cache.access c (i * 64) 8)
      done;
      let all_hit = ref true in
      for i = 0 to nlines - 1 do
        if not (Cachesim.Cache.access c (i * 64) 8) then all_hit := false
      done;
      !all_hit)

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "same line hits" `Quick test_same_line_hits;
          Alcotest.test_case "straddle counts one access" `Quick test_straddle_counts_one_access;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "full occupancy" `Quick test_full_occupancy;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
          QCheck_alcotest.to_alcotest qcheck_misses_bounded;
          QCheck_alcotest.to_alcotest qcheck_working_set_fits;
        ] );
    ]
