(* Callgrind output-format writer + profile comparison. *)

let run_sigil body =
  let tool = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      body
  in
  Option.get !tool

let run_callgrind body =
  let tool = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Callgrind.Tool.create m in
            tool := Some t;
            Callgrind.Tool.tool t);
        ]
      body
  in
  Option.get !tool

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let toy ops m =
  Dbi.Guest.call m "main" (fun () ->
      Dbi.Guest.call m "worker" (fun () ->
          Dbi.Guest.iop m ops;
          Dbi.Guest.read m 0x200000 8))

let render_callgrind tool =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Callgrind.Output.write tool ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_callgrind_format_headers () =
  let tool = run_callgrind (toy 10) in
  let out = render_callgrind tool in
  Alcotest.(check bool) "version" true (contains out "version: 1");
  Alcotest.(check bool) "events line" true
    (contains out "events: Ir Dr Dw I1mr D1mr D1mw ILmr DLmr DLmw Bc Bcm");
  Alcotest.(check bool) "fn record" true (contains out "fn=worker");
  Alcotest.(check bool) "call record" true (contains out "cfn=worker");
  Alcotest.(check bool) "calls line" true (contains out "calls=1")

let test_callgrind_format_costs () =
  let tool = run_callgrind (toy 10) in
  let out = render_callgrind tool in
  (* worker self: Ir = 10 ops + 1 read = 11, Dr = 1 *)
  Alcotest.(check bool) "worker self cost line" true (contains out "11 1 0")

let test_callgrind_context_suffixes () =
  let tool =
    run_callgrind (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "a" (fun () -> Dbi.Guest.call m "k" (fun () -> Dbi.Guest.iop m 1));
            Dbi.Guest.call m "b" (fun () -> Dbi.Guest.call m "k" (fun () -> Dbi.Guest.iop m 2))))
  in
  let out = render_callgrind tool in
  Alcotest.(check bool) "first context plain" true (contains out "fn=k\n");
  Alcotest.(check bool) "second context suffixed" true (contains out "fn=k'ctx1")

let test_callgrind_save () =
  let tool = run_callgrind (toy 10) in
  let path = Filename.temp_file "callgrind" ".out" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Callgrind.Output.save tool path;
      Alcotest.(check bool) "file non-empty" true ((Unix.stat path).Unix.st_size > 100))

let snapshot body = Sigil.Profile_io.snapshot_of_tool (run_sigil body)

let test_compare_same () =
  let a = snapshot (toy 10) and b = snapshot (toy 10) in
  let deltas = Analysis.Compare.diff a b in
  List.iter
    (fun (d : Analysis.Compare.delta) ->
      Alcotest.(check bool) ("same " ^ d.Analysis.Compare.path) true
        (d.Analysis.Compare.status = `Same))
    deltas;
  Alcotest.(check (list string)) "nothing changed" []
    (List.map
       (fun (d : Analysis.Compare.delta) -> d.Analysis.Compare.path)
       (Analysis.Compare.changed deltas))

let test_compare_changed () =
  let a = snapshot (toy 10) and b = snapshot (toy 50) in
  let changed = Analysis.Compare.changed (Analysis.Compare.diff a b) in
  match List.find_opt (fun (d : Analysis.Compare.delta) -> d.Analysis.Compare.path = "main/worker") changed with
  | Some d ->
    Alcotest.(check int) "ops before" 10 d.Analysis.Compare.ops_before;
    Alcotest.(check int) "ops after" 50 d.Analysis.Compare.ops_after;
    Alcotest.(check bool) "status changed" true (d.Analysis.Compare.status = `Changed)
  | None -> Alcotest.fail "worker delta missing"

let test_compare_added_removed () =
  let a = snapshot (toy 10) in
  let b =
    snapshot (fun m ->
        Dbi.Guest.call m "main" (fun () ->
            Dbi.Guest.call m "newcomer" (fun () -> Dbi.Guest.iop m 5)))
  in
  let deltas = Analysis.Compare.diff a b in
  let by_path p =
    List.find (fun (d : Analysis.Compare.delta) -> d.Analysis.Compare.path = p) deltas
  in
  Alcotest.(check bool) "worker removed" true ((by_path "main/worker").Analysis.Compare.status = `Removed);
  Alcotest.(check bool) "newcomer added" true ((by_path "main/newcomer").Analysis.Compare.status = `Added)

let test_compare_sorted_by_magnitude () =
  let a = snapshot (toy 10) and b = snapshot (toy 5000) in
  match Analysis.Compare.changed (Analysis.Compare.diff a b) with
  | first :: _ ->
    Alcotest.(check string) "biggest mover first" "main/worker" first.Analysis.Compare.path
  | [] -> Alcotest.fail "no changes"

let () =
  Alcotest.run "output_compare"
    [
      ( "callgrind_output",
        [
          Alcotest.test_case "format headers" `Quick test_callgrind_format_headers;
          Alcotest.test_case "format costs" `Quick test_callgrind_format_costs;
          Alcotest.test_case "context suffixes" `Quick test_callgrind_context_suffixes;
          Alcotest.test_case "save" `Quick test_callgrind_save;
        ] );
      ( "compare",
        [
          Alcotest.test_case "same" `Quick test_compare_same;
          Alcotest.test_case "changed" `Quick test_compare_changed;
          Alcotest.test_case "added and removed" `Quick test_compare_added_removed;
          Alcotest.test_case "sorted by magnitude" `Quick test_compare_sorted_by_magnitude;
        ] );
    ]
