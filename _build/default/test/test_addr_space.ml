let test_alloc_aligned () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 13 in
  Alcotest.(check int) "8-aligned" 0 (a land 7);
  Alcotest.(check bool) "at or above heap base" true (a >= Dbi.Addr_space.heap_base)

let test_alloc_disjoint () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 100 in
  let b = Dbi.Addr_space.alloc t 100 in
  Alcotest.(check bool) "disjoint" true (b >= a + 100 || a >= b + 100)

let test_free_and_reuse () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 64 in
  Dbi.Addr_space.free t a;
  let b = Dbi.Addr_space.alloc t 64 in
  Alcotest.(check int) "freed block reused" a b

let test_free_requires_live_base () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 64 in
  Alcotest.check_raises "mid-block free rejected"
    (Invalid_argument "Addr_space.free: not a live block base") (fun () ->
      Dbi.Addr_space.free t (a + 8));
  Dbi.Addr_space.free t a;
  Alcotest.check_raises "double free rejected"
    (Invalid_argument "Addr_space.free: not a live block base") (fun () ->
      Dbi.Addr_space.free t a)

let test_split_fit () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 128 in
  Dbi.Addr_space.free t a;
  let b = Dbi.Addr_space.alloc t 32 in
  let c = Dbi.Addr_space.alloc t 32 in
  Alcotest.(check int) "first split piece" a b;
  Alcotest.(check int) "second split piece" (a + 32) c

let test_live_accounting () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 100 in
  let _b = Dbi.Addr_space.alloc t 50 in
  Alcotest.(check int) "live bytes aligned" (104 + 56) (Dbi.Addr_space.heap_live_bytes t);
  Alcotest.(check int) "two blocks" 2 (Dbi.Addr_space.live_blocks t);
  Dbi.Addr_space.free t a;
  Alcotest.(check int) "after free" 56 (Dbi.Addr_space.heap_live_bytes t);
  Alcotest.(check int) "one block" 1 (Dbi.Addr_space.live_blocks t)

let test_live_block_lookup () =
  let t = Dbi.Addr_space.create () in
  let a = Dbi.Addr_space.alloc t 64 in
  Alcotest.(check (option (pair int int))) "interior lookup" (Some (a, 64))
    (Dbi.Addr_space.live_block t (a + 10));
  Alcotest.(check (option (pair int int))) "outside lookup" None
    (Dbi.Addr_space.live_block t (a + 64))

let test_frames_lifo () =
  let t = Dbi.Addr_space.create () in
  let f1 = Dbi.Addr_space.push_frame t 32 in
  let f2 = Dbi.Addr_space.push_frame t 32 in
  Alcotest.(check bool) "stack grows down" true (f2 < f1);
  Alcotest.(check bool) "below stack top" true (f1 < Dbi.Addr_space.stack_top);
  Dbi.Addr_space.pop_frame t;
  Dbi.Addr_space.pop_frame t;
  Alcotest.check_raises "pop on empty" (Invalid_argument "Addr_space.pop_frame: no live frame")
    (fun () -> Dbi.Addr_space.pop_frame t)

let test_bad_sizes () =
  let t = Dbi.Addr_space.create () in
  Alcotest.check_raises "zero alloc" (Invalid_argument "Addr_space.alloc: size must be positive")
    (fun () -> ignore (Dbi.Addr_space.alloc t 0));
  Alcotest.check_raises "zero frame"
    (Invalid_argument "Addr_space.push_frame: size must be positive") (fun () ->
      ignore (Dbi.Addr_space.push_frame t 0))

(* random alloc/free interleavings never produce overlapping live blocks *)
let qcheck_no_overlap =
  QCheck.Test.make ~name:"no live blocks overlap" ~count:100
    QCheck.(list (pair bool (int_range 1 256)))
    (fun ops ->
      let t = Dbi.Addr_space.create () in
      let live = ref [] in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc || !live = [] then begin
            let a = Dbi.Addr_space.alloc t size in
            live := (a, size) :: !live
          end
          else
            match !live with
            | (a, _) :: rest ->
              Dbi.Addr_space.free t a;
              live := rest
            | [] -> ())
        ops;
      let rec pairs = function
        | [] -> true
        | (a, sa) :: rest ->
          List.for_all (fun (b, sb) -> a + sa <= b || b + sb <= a) rest && pairs rest
      in
      pairs !live)

let () =
  Alcotest.run "addr_space"
    [
      ( "addr_space",
        [
          Alcotest.test_case "alloc aligned" `Quick test_alloc_aligned;
          Alcotest.test_case "alloc disjoint" `Quick test_alloc_disjoint;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "free requires live base" `Quick test_free_requires_live_base;
          Alcotest.test_case "split fit" `Quick test_split_fit;
          Alcotest.test_case "live accounting" `Quick test_live_accounting;
          Alcotest.test_case "live block lookup" `Quick test_live_block_lookup;
          Alcotest.test_case "frames lifo" `Quick test_frames_lifo;
          Alcotest.test_case "bad sizes" `Quick test_bad_sizes;
          QCheck_alcotest.to_alcotest qcheck_no_overlap;
        ] );
    ]
