(* Cross-module integration: full Sigil + Callgrind runs over real
   workloads, checking the invariants the paper's experiments rely on. *)

let run name ~options =
  let w = match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e in
  let sigil = ref None and cg = ref None in
  let r =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options m in
            sigil := Some t;
            Sigil.Tool.tool t);
          (fun m ->
            let t = Callgrind.Tool.create m in
            cg := Some t;
            Callgrind.Tool.tool t);
        ]
      (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
  in
  (Option.get !sigil, Option.get !cg, r.Dbi.Runner.machine)

let full_options = Sigil.Options.(with_events (with_reuse default))

let test_sigil_and_machine_agree () =
  let sigil, _, m = run "blackscholes" ~options:Sigil.Options.default in
  let c = Dbi.Machine.counters m in
  let p = Sigil.Tool.profile sigil in
  let ops =
    List.fold_left
      (fun acc ctx ->
        let s = Sigil.Profile.stats p ctx in
        acc + s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops)
      0 (Sigil.Profile.contexts p)
  in
  Alcotest.(check int) "ops conserved" (c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops) ops;
  let written =
    List.fold_left
      (fun acc ctx -> acc + (Sigil.Profile.stats p ctx).Sigil.Profile.written)
      0 (Sigil.Profile.contexts p)
  in
  Alcotest.(check int) "written bytes conserved" c.Dbi.Machine.written_bytes written;
  let _, total = Sigil.Profile.totals p in
  Alcotest.(check int) "read bytes conserved" c.Dbi.Machine.read_bytes total

let test_callgrind_and_machine_agree () =
  let _, cg, m = run "swaptions" ~options:Sigil.Options.default in
  let c = Dbi.Machine.counters m in
  let total = Callgrind.Tool.total cg in
  Alcotest.(check int) "Ir = ops + accesses + branches"
    (c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops + c.Dbi.Machine.reads + c.Dbi.Machine.writes
   + c.Dbi.Machine.branches)
    total.Callgrind.Cost.ir;
  Alcotest.(check int) "dr" c.Dbi.Machine.reads total.Callgrind.Cost.dr;
  Alcotest.(check int) "dw" c.Dbi.Machine.writes total.Callgrind.Cost.dw

let test_partitioning_invariants () =
  List.iter
    (fun name ->
      let sigil, cg, _ = run name ~options:Sigil.Options.default in
      let cdfg = Analysis.Cdfg.build ~callgrind:cg sigil in
      let trimmed = Analysis.Partition.trim cdfg in
      Alcotest.(check bool)
        (name ^ " coverage in (0,1]")
        true
        (trimmed.Analysis.Partition.coverage > 0.0 && trimmed.Analysis.Partition.coverage <= 1.0001);
      List.iter
        (fun (c : Analysis.Partition.candidate) ->
          Alcotest.(check bool) (name ^ " breakeven >= 1") true (c.Analysis.Partition.breakeven >= 1.0);
          Alcotest.(check bool) (name ^ " not main") true (c.Analysis.Partition.name <> "main"))
        trimmed.Analysis.Partition.selected)
    [ "canneal"; "fluidanimate" ]

let test_low_coverage_trio_is_lower () =
  let coverage name =
    let sigil, cg, _ = run name ~options:Sigil.Options.default in
    let cdfg = Analysis.Cdfg.build ~callgrind:cg sigil in
    (Analysis.Partition.trim cdfg).Analysis.Partition.coverage
  in
  let canneal = coverage "canneal" and swaptions = coverage "swaptions" in
  let blackscholes = coverage "blackscholes" and fluidanimate = coverage "fluidanimate" in
  Alcotest.(check bool) "canneal < blackscholes" true (canneal < blackscholes);
  Alcotest.(check bool) "swaptions < fluidanimate" true (swaptions < fluidanimate);
  Alcotest.(check bool) "majority above 50%" true
    (blackscholes > 0.5 && fluidanimate > 0.5)

let test_critical_path_shapes () =
  let parallelism name =
    let sigil, _, _ = run name ~options:full_options in
    match Sigil.Tool.event_log sigil with
    | Some log -> Analysis.Critpath.parallelism (Analysis.Critpath.analyze log)
    | None -> Alcotest.fail "no event log"
  in
  let sc = parallelism "streamcluster" in
  let fa = parallelism "fluidanimate" in
  Alcotest.(check bool) "streamcluster high" true (sc > 10.0);
  Alcotest.(check bool) "fluidanimate serial" true (fa < 1.5);
  Alcotest.(check bool) "both >= 1" true (sc >= 1.0 && fa >= 1.0)

let test_streamcluster_rand_chain () =
  let sigil, _, m = run "streamcluster" ~options:full_options in
  let log = Option.get (Sigil.Tool.event_log sigil) in
  let cp = Analysis.Critpath.analyze log in
  let contexts = Dbi.Machine.contexts m in
  let symbols = Dbi.Machine.symbols m in
  let names =
    List.filter_map
      (fun ctx ->
        if ctx = Dbi.Context.root then None
        else Some (Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx)))
      (Analysis.Critpath.critical_path_contexts cp)
  in
  (* the paper's §IV-C chain, leaf to main *)
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("path contains " ^ expected) true (List.mem expected names))
    [ "drand48_iterate"; "pkmedian"; "localSearch"; "streamCluster"; "main" ]

let test_vips_reuse_contrast () =
  let sigil, _, _ = run "vips" ~options:full_options in
  let rows = Analysis.Reuse_report.top_reusers ~n:10 sigil in
  let find label =
    List.find_opt (fun (r : Analysis.Reuse_report.fn_row) -> r.Analysis.Reuse_report.label = label) rows
  in
  (match (find "conv_gen", find "imb_XYZ2Lab") with
  | Some conv, Some xyz ->
    Alcotest.(check bool) "conv_gen lifetime much larger" true
      (conv.Analysis.Reuse_report.avg_lifetime > 20.0 *. xyz.Analysis.Reuse_report.avg_lifetime)
  | _ -> Alcotest.fail "expected conv_gen and imb_XYZ2Lab among top reusers");
  let h_conv = Analysis.Reuse_report.lifetime_histogram sigil "conv_gen" in
  let h_xyz = Analysis.Reuse_report.lifetime_histogram sigil "imb_XYZ2Lab" in
  let max_bin h = List.fold_left (fun acc (b, _) -> max acc b) 0 h in
  Alcotest.(check bool) "conv_gen long tail" true (max_bin h_conv > 10 * max_bin h_xyz);
  Alcotest.(check bool) "xyz2lab peaks at zero" true
    (match h_xyz with (0, _) :: _ -> true | _ -> false)

let test_fig8_blackscholes_zero_reuse () =
  let sigil, _, _ = run "blackscholes" ~options:full_options in
  let bd = Analysis.Reuse_report.byte_breakdown sigil in
  Alcotest.(check bool) "mostly zero reuse" true (bd.Analysis.Reuse_report.zero > 0.8);
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1.0
    (bd.Analysis.Reuse_report.zero +. bd.Analysis.Reuse_report.one_to_nine
   +. bd.Analysis.Reuse_report.over_nine)

let test_dedup_memory_limiter () =
  let w = match Workloads.Suite.find "dedup" with Ok w -> w | Error e -> Alcotest.fail e in
  let run_with options =
    let sigil = ref None in
    let _ =
      Dbi.Runner.run
        ~tools:
          [
            (fun m ->
              let t = Sigil.Tool.create ~options m in
              sigil := Some t;
              Sigil.Tool.tool t);
          ]
        (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)
    in
    Option.get !sigil
  in
  let unlimited = run_with Sigil.Options.(with_reuse default) in
  let limited = run_with Sigil.Options.(with_max_chunks (with_reuse default) 24) in
  Alcotest.(check int) "no evictions unlimited" 0 (Sigil.Tool.shadow_evictions unlimited);
  Alcotest.(check bool) "limited evicts" true (Sigil.Tool.shadow_evictions limited > 0);
  Alcotest.(check bool) "limited uses less memory" true
    (Sigil.Tool.shadow_footprint_peak_bytes limited
    < Sigil.Tool.shadow_footprint_peak_bytes unlimited);
  (* accuracy loss is bounded: totals shift, but by little *)
  let _, t_unl = Sigil.Profile.totals (Sigil.Tool.profile unlimited) in
  let _, t_lim = Sigil.Profile.totals (Sigil.Tool.profile limited) in
  Alcotest.(check int) "total reads identical" t_unl t_lim

let test_line_mode_on_workload () =
  let sigil, _, _ = run "raytrace" ~options:Sigil.Options.(with_line_size default 64) in
  match Sigil.Tool.line_shadow sigil with
  | None -> Alcotest.fail "no line shadow"
  | Some line ->
    let a, b, c, d, e = Sigil.Line_shadow.bin_fractions line in
    Alcotest.(check (float 1e-6)) "fractions sum" 1.0 (a +. b +. c +. d +. e);
    (* the hot top of the BVH is re-read by every ray *)
    Alcotest.(check bool) "heavy line reuse exists" true (c +. d +. e > 0.004);
    let hot =
      List.exists
        (fun r -> Sigil.Line_shadow.reuse_count r > 1000)
        (Sigil.Line_shadow.records line)
    in
    Alcotest.(check bool) "some line re-used >1000 times" true hot

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "sigil and machine agree" `Quick test_sigil_and_machine_agree;
          Alcotest.test_case "callgrind and machine agree" `Quick
            test_callgrind_and_machine_agree;
          Alcotest.test_case "partitioning invariants" `Quick test_partitioning_invariants;
          Alcotest.test_case "low-coverage trio" `Slow test_low_coverage_trio_is_lower;
          Alcotest.test_case "critical path shapes" `Slow test_critical_path_shapes;
          Alcotest.test_case "streamcluster rand chain" `Slow test_streamcluster_rand_chain;
          Alcotest.test_case "vips reuse contrast" `Slow test_vips_reuse_contrast;
          Alcotest.test_case "fig8 blackscholes zero reuse" `Quick
            test_fig8_blackscholes_zero_reuse;
          Alcotest.test_case "dedup memory limiter" `Slow test_dedup_memory_limiter;
          Alcotest.test_case "line mode on workload" `Slow test_line_mode_on_workload;
        ] );
    ]
