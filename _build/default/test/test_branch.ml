let test_learns_stable_pattern () =
  let b = Cachesim.Branch.create ~entries:64 () in
  (* always-taken branch: after warmup, predictions are correct *)
  for _ = 1 to 4 do
    ignore (Cachesim.Branch.predict b 0x1000 true)
  done;
  let correct = Cachesim.Branch.predict b 0x1000 true in
  Alcotest.(check bool) "learned taken" true correct

let test_alternating_hurts () =
  let b = Cachesim.Branch.create ~entries:64 () in
  for i = 1 to 100 do
    ignore (Cachesim.Branch.predict b 0x2000 (i mod 2 = 0))
  done;
  (* 2-bit counters mispredict heavily on alternation *)
  Alcotest.(check bool) "many mispredicts" true (Cachesim.Branch.mispredicts b > 30)

let test_counters () =
  let b = Cachesim.Branch.create ~entries:64 () in
  for _ = 1 to 10 do
    ignore (Cachesim.Branch.predict b 0x3000 true)
  done;
  Alcotest.(check int) "branches" 10 (Cachesim.Branch.branches b);
  Alcotest.(check bool) "mispredicts bounded" true (Cachesim.Branch.mispredicts b <= 10)

let test_sites_independent () =
  let b = Cachesim.Branch.create ~entries:1024 () in
  for _ = 1 to 8 do
    ignore (Cachesim.Branch.predict b 0x100 true);
    ignore (Cachesim.Branch.predict b 0x200 false)
  done;
  Alcotest.(check bool) "both learned" true
    (Cachesim.Branch.predict b 0x100 true && Cachesim.Branch.predict b 0x200 false)

let test_entries_validation () =
  Alcotest.check_raises "bad entries"
    (Invalid_argument "Branch.create: entries must be a positive power of two") (fun () ->
      ignore (Cachesim.Branch.create ~entries:100 ()))

let () =
  Alcotest.run "branch"
    [
      ( "branch",
        [
          Alcotest.test_case "learns stable pattern" `Quick test_learns_stable_pattern;
          Alcotest.test_case "alternating hurts" `Quick test_alternating_hurts;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "sites independent" `Quick test_sites_independent;
          Alcotest.test_case "entries validation" `Quick test_entries_validation;
        ] );
    ]
