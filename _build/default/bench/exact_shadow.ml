(* Reference implementation for the reader-set ablation (DESIGN.md §5).

   Sigil's Table I stores a single "last reader" pointer per byte, so when
   two functions alternate reads of the same byte every read looks unique.
   This tool keeps the exact set of (reader context, call) pairs per byte
   version and counts a read as unique only on first membership — the
   ground truth the heuristic approximates. It is deliberately simple (hashtable per byte)
   and therefore slow and memory-hungry; the ablation quantifies both the
   accuracy gap and the cost gap. *)

type cell = {
  mutable writer : int;
  mutable readers : (int * int) list; (* (context, call)s that read this version *)
}

type t = {
  table : (int, cell) Hashtbl.t;
  mutable unique_reads : int;
  mutable total_reads : int;
}

let create () = { table = Hashtbl.create 65536; unique_reads = 0; total_reads = 0 }

let cell t addr =
  match Hashtbl.find_opt t.table addr with
  | Some c -> c
  | None ->
    let c = { writer = -1; readers = [] } in
    Hashtbl.add t.table addr c;
    c

let tool t machine : Dbi.Tool.t =
  {
    (Dbi.Tool.nop "exact-shadow") with
    on_read =
      (fun ~ctx ~addr ~size ->
        let call = Dbi.Machine.call_number machine ctx in
        for i = 0 to size - 1 do
          let c = cell t (addr + i) in
          t.total_reads <- t.total_reads + 1;
          if not (List.mem (ctx, call) c.readers) then begin
            t.unique_reads <- t.unique_reads + 1;
            c.readers <- (ctx, call) :: c.readers
          end
        done);
    on_write =
      (fun ~ctx ~addr ~size ->
        for i = 0 to size - 1 do
          let c = cell t (addr + i) in
          c.writer <- ctx;
          c.readers <- []
        done);
  }

let unique_reads t = t.unique_reads
let total_reads t = t.total_reads
