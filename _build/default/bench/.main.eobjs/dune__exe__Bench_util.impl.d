bench/bench_util.ml: Analysis Analyze Bechamel Benchmark Driver Hashtbl List Measure Printf Sigil String Test Time Toolkit Workloads
