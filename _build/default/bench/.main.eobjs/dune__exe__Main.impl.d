bench/main.ml: Analysis Bechamel Bench_util Callgrind Dbi Driver Exact_shadow Float Hashtbl List Option Printf Sigil Staged String Test Unix Workloads
