bench/exact_shadow.ml: Dbi Hashtbl List
