bench/main.mli:
