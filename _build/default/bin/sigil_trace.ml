(* Record raw guest event streams and re-analyze them offline — profiles
   are platform-independent and only need collecting once. *)

open Cmdliner

let record name scale path =
  let workload = Cli_common.resolve name in
  let m = Dbi.Trace.record path (fun m -> workload.Workloads.Workload.run m scale) in
  let c = Dbi.Machine.counters m in
  Format.printf "recorded %s (%s): %d instructions, %d calls -> %s@." name
    (Workloads.Scale.name scale) (Dbi.Machine.now m) c.Dbi.Machine.calls path

let replay path limit =
  let tool = ref None in
  let m =
    Dbi.Trace.replay
      ~tools:
        [
          (fun machine ->
            let t = Sigil.Tool.create machine in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      path
  in
  Format.printf "replayed %s: %d instructions@.@." path (Dbi.Machine.now m);
  Sigil.Report.pp ~limit Format.std_formatter (Option.get !tool)

let record_cmd =
  let path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Trace output file.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run a workload and record its raw event stream")
    Term.(const record $ Cli_common.workload_arg $ Cli_common.scale_arg $ path)

let replay_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file to replay.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Drive Sigil from a recorded trace (no re-run needed)")
    Term.(const replay $ path $ Cli_common.limit_arg)

let cmd =
  Cmd.group
    (Cmd.info "sigil_trace" ~doc:"Record and replay guest event streams")
    [ record_cmd; replay_cmd ]

let () = exit (Cmd.eval cmd)
