(* Critical-path case study (paper §IV-C): dependency chains from the
   event file, longest path and function-level parallelism limit. *)

open Cmdliner

let run name scale load_path cores =
  let cp, describe =
    match load_path with
    | Some path ->
      (* post-process a previously saved event file: context ids resolve
         only against the run that produced it, so print raw ids *)
      let log = Sigil.Event_log.load path in
      (Analysis.Critpath.analyze log, fun ctx -> "ctx:" ^ string_of_int ctx)
    | None ->
      let workload = Cli_common.resolve name in
      let r = Driver.run_workload ~options:Sigil.Options.(with_events default) workload scale in
      (Driver.critpath r, Driver.fn_name r)
  in
  Format.printf "== critical path: %s (%s) ==@." name (Workloads.Scale.name scale);
  Format.printf "serial length (ops):        %d@." (Analysis.Critpath.serial_length cp);
  Format.printf "critical path length (ops): %d@." (Analysis.Critpath.critical_path_length cp);
  Format.printf "max function-level parallelism: %.2fx@.@." (Analysis.Critpath.parallelism cp);
  let names = List.map describe (Analysis.Critpath.critical_path_contexts cp) in
  Format.printf "critical path (leaf -> main):@.  %s@." (String.concat " -> " names);
  List.iter
    (fun n ->
      let s = Analysis.Critpath.schedule cp ~cores:n in
      Format.printf "@.%d scheduling slots: speedup %.2fx, utilization %.1f%%@." n
        s.Analysis.Critpath.speedup
        (100.0 *. s.Analysis.Critpath.utilization))
    cores

let cmd =
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE" ~doc:"Post-process a saved event file instead of running.")
  in
  let cores =
    Arg.(
      value
      & opt_all int []
      & info [ "cores" ] ~docv:"N"
          ~doc:"Also list-schedule the dependency chains onto $(docv) cores (repeatable).")
  in
  Cmd.v
    (Cmd.info "sigil_critpath" ~doc:"Critical-path analysis over Sigil event files")
    Term.(const run $ Cli_common.workload_arg $ Cli_common.scale_arg $ load $ cores)

let () = exit (Cmd.eval cmd)
