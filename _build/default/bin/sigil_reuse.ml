(* Data-reuse case study (paper §IV-B): per-byte reuse breakdown, top
   re-using functions with lifetimes, per-function histograms, and the
   line-granularity mode. *)

open Cmdliner

let run name scale limit fn_hist line_size =
  let workload = Cli_common.resolve name in
  match line_size with
  | Some size ->
    let options = Sigil.Options.with_line_size Sigil.Options.default size in
    let r = Driver.run_workload ~options workload scale in
    let line = Option.get (Sigil.Tool.line_shadow (Driver.sigil r)) in
    Format.printf "== line-granularity reuse: %s (%s), %dB lines ==@." name
      (Workloads.Scale.name scale) size;
    Format.printf "lines touched: %d@.@." (Sigil.Line_shadow.lines line);
    let b = Sigil.Line_shadow.bins line in
    print_string
      (Analysis.Table.render
         ~headers:[ "re-use count"; "lines" ]
         [
           [ "< 10"; string_of_int b.Sigil.Line_shadow.under_10 ];
           [ "< 100"; string_of_int b.Sigil.Line_shadow.under_100 ];
           [ "< 1000"; string_of_int b.Sigil.Line_shadow.under_1000 ];
           [ "< 10000"; string_of_int b.Sigil.Line_shadow.under_10000 ];
           [ "> 10000"; string_of_int b.Sigil.Line_shadow.over_10000 ];
         ])
  | None ->
    let options = Sigil.Options.(with_reuse default) in
    let r = Driver.run_workload ~options workload scale in
    let tool = Driver.sigil r in
    let bd = Analysis.Reuse_report.byte_breakdown tool in
    Format.printf "== data reuse: %s (%s) ==@." name (Workloads.Scale.name scale);
    Format.printf "data elements: %d@." bd.Analysis.Reuse_report.elements;
    Format.printf "re-use counts: zero %.1f%%  1-9 %.1f%%  >9 %.1f%%@.@."
      (100.0 *. bd.Analysis.Reuse_report.zero)
      (100.0 *. bd.Analysis.Reuse_report.one_to_nine)
      (100.0 *. bd.Analysis.Reuse_report.over_nine);
    Format.printf "top functions by contribution to data re-use:@.";
    let rows =
      List.map
        (fun (row : Analysis.Reuse_report.fn_row) ->
          [
            row.Analysis.Reuse_report.label;
            Printf.sprintf "%.0f" row.Analysis.Reuse_report.avg_lifetime;
            string_of_int row.Analysis.Reuse_report.reuse_reads;
            Printf.sprintf "%.1f%%" (100.0 *. row.Analysis.Reuse_report.unique_share);
          ])
        (Analysis.Reuse_report.top_reusers ~n:limit tool)
    in
    print_string
      (Analysis.Table.render
         ~headers:[ "function"; "avg re-use lifetime"; "re-use reads"; "unique-byte share" ]
         rows);
    List.iter
      (fun fn ->
        Format.printf "@.re-use lifetime histogram for %s (bin %d):@." fn
          (Sigil.Reuse.lifetime_bin_width (Sigil.Tool.reuse tool));
        let hist = Analysis.Reuse_report.lifetime_histogram tool fn in
        if hist = [] then Format.printf "  (no re-used bytes)@."
        else
          print_string
            (Analysis.Table.bar_chart ~fmt:(Printf.sprintf "%.0f")
               (List.map (fun (bin, count) -> (string_of_int bin, float_of_int count)) hist)))
      fn_hist

let cmd =
  let fn_hist =
    Arg.(
      value
      & opt_all string []
      & info [ "histogram" ] ~docv:"FUNCTION"
          ~doc:"Print the re-use lifetime histogram of $(docv) (repeatable).")
  in
  let line_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "line-size" ] ~docv:"BYTES"
          ~doc:"Shadow cache lines of $(docv) bytes instead of single bytes.")
  in
  Cmd.v
    (Cmd.info "sigil_reuse" ~doc:"Data-reuse characterization from Sigil profiles")
    Term.(
      const run $ Cli_common.workload_arg $ Cli_common.scale_arg $ Cli_common.limit_arg $ fn_hist
      $ line_size)

let () = exit (Cmd.eval cmd)
