bin/sigil_run.mli:
