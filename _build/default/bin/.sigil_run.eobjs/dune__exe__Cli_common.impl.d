bin/cli_common.ml: Arg Cmdliner Format Sigil String Workloads
