bin/sigil_reuse.mli:
