bin/sigil_partition.ml: Analysis Arg Callgrind Cli_common Cmd Cmdliner Driver Format List Printf Term Workloads
