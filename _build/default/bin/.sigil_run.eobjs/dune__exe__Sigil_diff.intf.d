bin/sigil_diff.mli:
