bin/sigil_trace.ml: Arg Cli_common Cmd Cmdliner Dbi Format Option Sigil Term Workloads
