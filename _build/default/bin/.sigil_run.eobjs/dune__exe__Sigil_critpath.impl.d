bin/sigil_critpath.ml: Analysis Arg Cli_common Cmd Cmdliner Driver Format List Sigil String Term Workloads
