bin/sigil_diff.ml: Analysis Arg Cli_common Cmd Cmdliner Format Sigil Term
