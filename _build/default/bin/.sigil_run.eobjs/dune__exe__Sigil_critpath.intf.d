bin/sigil_critpath.mli:
