bin/sigil_run.ml: Analysis Arg Cli_common Cmd Cmdliner Dbi Driver Format Sigil Term Workloads
