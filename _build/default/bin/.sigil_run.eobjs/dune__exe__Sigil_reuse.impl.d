bin/sigil_reuse.ml: Analysis Arg Cli_common Cmd Cmdliner Driver Format List Option Printf Sigil Term Workloads
