bin/sigil_partition.mli:
