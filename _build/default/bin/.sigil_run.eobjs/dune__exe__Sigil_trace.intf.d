bin/sigil_trace.mli:
