(** Two-level shadow memory (Table I).

    Holds a shadow object for every unique data byte the guest touches,
    invisible to the guest itself. The structure follows Nethercote &
    Seward: a first-level table indexed by the high bits of the address
    whose second-level chunks are created only when the corresponding part
    of the address space is accessed.

    Baseline shadow object: last writer (context), last reader (context)
    and last reader call number. Reuse mode extends it with the re-use
    count and the first/last access timestamps.

    Two derived notions feed the re-use statistics:

    - an {e episode}: the consecutive reads of one byte by one function
      call (the paper's re-use lifetime is measured "within a function
      call"). An episode ends when a different context or call reads the
      byte, when the byte is overwritten, on eviction, or at program end.
    - a {e version}: the value written by one producer. A version ends on
      overwrite, eviction, or program end; its re-use count is the number
      of non-unique reads it received.

    A FIFO memory limiter ([max_chunks]) frees the oldest second-level
    chunks, trading accuracy for footprint (the paper needs this only for
    dedup and reports the loss as negligible). *)

type t

(** Where finished episodes and versions are reported (the {!Reuse}
    accumulator implements this). *)
type sink = {
  on_episode_end : reader:Dbi.Context.id -> reads:int -> first:int -> last:int -> unit;
      (** A byte's read episode closed: [reads] total reads by this
          (context, call), first/last read timestamps. *)
  on_version_end : producer:Dbi.Context.id -> nonunique:int -> unit;
      (** A byte version died; [nonunique] is its re-use count. Program
          input (bytes read but never written) reports with
          [producer = Dbi.Context.root]. Only emitted in reuse mode. *)
}

val null_sink : sink

(** Result of shadowing one read. *)
type read_result = {
  producer : Dbi.Context.id;
      (** last writer, or {!Dbi.Context.root} when the byte was never
          written (program input) *)
  producer_call : int;
      (** the producer's call number, when [track_writer_call] was set
          (0 otherwise) — event files need it to attach transfer edges to
          the right call of the producer *)
  unique : bool;
      (** first read by this (context, call) since the last write — the
          reason Table I stores both the last reader and its call number.
          Cross-call re-reads by the same function are unique: an
          accelerator re-fetches its inputs on every invocation. *)
}

(** [create ~reuse ~track_writer_call ~max_chunks ~sink ()] builds an empty
    table. [reuse] allocates the extended shadow objects;
    [track_writer_call] adds the producer call number (used in event-file
    mode). *)
val create : ?reuse:bool -> ?track_writer_call:bool -> ?max_chunks:int -> ?sink:sink -> unit -> t

(** [read t ~ctx ~call ~now addr] classifies and records a 1-byte read.

    @raise Invalid_argument if [addr] is outside the shadowed region. *)
val read : t -> ctx:Dbi.Context.id -> call:int -> now:int -> int -> read_result

(** [write t ~ctx ~call ~now addr] records a 1-byte write: the previous
    version (if any) is flushed to the sink and [ctx] becomes the
    producer. *)
val write : t -> ctx:Dbi.Context.id -> call:int -> now:int -> int -> unit

(** [flush t] ends every live episode and version (program end). The table
    remains usable. *)
val flush : t -> unit

(** {2 Introspection} *)

(** Highest shadowable address (exclusive). *)
val max_address : int

val chunk_bytes : int

(** Live second-level chunks. *)
val chunks_live : t -> int

val chunks_peak : t -> int

(** Chunks freed by the FIFO limiter. *)
val evictions : t -> int

(** Current footprint estimate in host bytes (first-level table + live
    chunks). *)
val footprint_bytes : t -> int

val footprint_peak_bytes : t -> int

(** [producer_of t addr] peeks at the current producer without recording a
    read; [None] if the byte has no live shadow. Test/debug helper. *)
val producer_of : t -> int -> Dbi.Context.id option
