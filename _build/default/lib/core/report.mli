(** Textual rendering of Sigil aggregate profiles. *)

type row = {
  ctx : Dbi.Context.id;
  path : string;
  calls : int;
  ops : int;
  input_unique : int;
  input_total : int;
  local_unique : int;
  local_total : int;
  output_unique : int;
  output_total : int;
  written : int;
}

(** [rows tool] builds one row per active context, sorted by decreasing
    operation count. *)
val rows : Tool.t -> row list

(** [pp ?limit ppf tool] prints the aggregate profile (default top 25). *)
val pp : ?limit:int -> Format.formatter -> Tool.t -> unit

(** [pp_edges ?limit ppf tool] prints communication edges sorted by unique
    bytes. *)
val pp_edges : ?limit:int -> Format.formatter -> Tool.t -> unit
