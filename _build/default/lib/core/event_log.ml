type entry =
  | Call of { ctx : Dbi.Context.id; call : int }
  | Comp of { ctx : Dbi.Context.id; call : int; int_ops : int; fp_ops : int }
  | Xfer of {
      src_ctx : Dbi.Context.id;
      src_call : int;
      dst_ctx : Dbi.Context.id;
      dst_call : int;
      bytes : int;
      unique_bytes : int;
    }
  | Ret of { ctx : Dbi.Context.id; call : int }

type t = { mutable entries_rev : entry list; mutable n : int }

let create () = { entries_rev = []; n = 0 }

let add t e =
  t.entries_rev <- e :: t.entries_rev;
  t.n <- t.n + 1

let entries t = List.rev t.entries_rev
let length t = t.n
let iter t f = List.iter f (entries t)

let entry_to_string = function
  | Call { ctx; call } -> Printf.sprintf "C %d %d" ctx call
  | Comp { ctx; call; int_ops; fp_ops } -> Printf.sprintf "O %d %d %d %d" ctx call int_ops fp_ops
  | Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes } ->
    Printf.sprintf "X %d %d %d %d %d %d" src_ctx src_call dst_ctx dst_call bytes unique_bytes
  | Ret { ctx; call } -> Printf.sprintf "R %d %d" ctx call

let entry_of_string line =
  let fail () = failwith ("Event_log: malformed record: " ^ line) in
  let ints rest = List.map (fun s -> match int_of_string_opt s with Some i -> i | None -> fail ()) rest in
  match String.split_on_char ' ' (String.trim line) with
  | "C" :: rest ->
    (match ints rest with
    | [ ctx; call ] -> Call { ctx; call }
    | _ -> fail ())
  | "O" :: rest ->
    (match ints rest with
    | [ ctx; call; int_ops; fp_ops ] -> Comp { ctx; call; int_ops; fp_ops }
    | _ -> fail ())
  | "X" :: rest ->
    (match ints rest with
    | [ src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes ] ->
      Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes }
    | _ -> fail ())
  | "R" :: rest ->
    (match ints rest with
    | [ ctx; call ] -> Ret { ctx; call }
    | _ -> fail ())
  | _ -> fail ()

let save t path =
  let oc = open_out path in
  (try iter t (fun e -> output_string oc (entry_to_string e ^ "\n"))
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load path =
  let ic = open_in path in
  let t = create () in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
         if String.trim line <> "" then add t (entry_of_string line);
         loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with e ->
     close_in_noerr ic;
     raise e);
  close_in ic;
  t
