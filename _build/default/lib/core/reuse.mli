(** Re-use statistics accumulator (the {!Shadow.sink} for reuse mode).

    Collects, per consumer context, the episode statistics behind the
    paper's data-reuse case study: how many bytes were read exactly once
    vs. re-used, the distribution of re-use lifetimes (Figs 10–11), and
    the average lifetime of a re-used byte (Fig 9); and, per program, the
    breakdown of data elements by re-use count (Fig 8). Lifetimes are in
    retired guest instructions. *)

type t

(** Per-context view. An {e episode} is one function call's reads of one
    byte; see {!Shadow}. *)
type fn_reuse = {
  episodes : int; (** total episodes closed for this context *)
  reused_episodes : int; (** episodes with at least one re-read *)
  reuse_reads : int; (** total re-reads (episode reads beyond the first) *)
  lifetime_sum : int; (** sum of lifetimes over reused episodes *)
}

(** Program-wide re-use-count bins for data elements (byte versions):
    Fig 8's "0", "1–9" and ">9" stacks. *)
type version_bins = {
  zero : int;
  low : int; (** 1–9 re-uses *)
  high : int; (** more than 9 *)
}

(** [create ~lifetime_bin ()] sets the histogram bin width (default 1000,
    the paper's "Bin size: 1000"). *)
val create : ?lifetime_bin:int -> unit -> t

val sink : t -> Shadow.sink

val fn_reuse : t -> Dbi.Context.id -> fn_reuse

(** [avg_lifetime t ctx] is the average re-use lifetime of a re-used byte
    in [ctx] (0 when nothing was re-used). *)
val avg_lifetime : t -> Dbi.Context.id -> float

(** [histogram t ctx] lists [(bin_start, count)] ascending; a lifetime [l]
    falls in the bin starting at [l / width * width]. *)
val histogram : t -> Dbi.Context.id -> (int * int) list

val version_bins : t -> version_bins

(** Contexts with at least one closed episode, ascending. *)
val contexts : t -> Dbi.Context.id list

val lifetime_bin_width : t -> int
