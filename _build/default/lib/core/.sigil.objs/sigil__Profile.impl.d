lib/core/profile.ml: Array Dbi Hashtbl List
