lib/core/reuse.ml: Array Hashtbl List Shadow
