lib/core/shadow.mli: Dbi
