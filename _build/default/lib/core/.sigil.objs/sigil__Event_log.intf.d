lib/core/event_log.mli: Dbi
