lib/core/report.mli: Dbi Format Tool
