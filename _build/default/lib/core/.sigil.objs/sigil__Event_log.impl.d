lib/core/event_log.ml: Dbi List Printf String
