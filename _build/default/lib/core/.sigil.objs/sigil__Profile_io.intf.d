lib/core/profile_io.mli: Dbi Tool
