lib/core/options.ml:
