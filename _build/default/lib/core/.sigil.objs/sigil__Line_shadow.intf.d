lib/core/line_shadow.mli:
