lib/core/tool.ml: Dbi Event_log Hashtbl Line_shadow List Options Profile Reuse Shadow
