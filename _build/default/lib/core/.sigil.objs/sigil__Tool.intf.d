lib/core/tool.mli: Dbi Event_log Line_shadow Options Profile Reuse
