lib/core/options.mli:
