lib/core/line_shadow.ml: Hashtbl List
