lib/core/profile_io.ml: Dbi Fun Hashtbl List Printf Profile String Tool
