lib/core/report.ml: Dbi Format List Profile Tool
