lib/core/profile.mli: Dbi
