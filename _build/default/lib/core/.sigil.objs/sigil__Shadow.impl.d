lib/core/shadow.ml: Array Dbi Queue
