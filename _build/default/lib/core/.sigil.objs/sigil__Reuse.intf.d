lib/core/reuse.mli: Dbi Shadow
