(** The Sigil tool.

    Hooks into the DBI machine the way Sigil hooks into Callgrind: it
    receives function names, addresses and operation counts, shadows every
    data byte, and produces the paper's outputs — the per-context aggregate
    {!Profile}, the {!Reuse} statistics (reuse mode), the {!Line_shadow}
    records (line mode), and the sequential {!Event_log} (event mode).

    In line-granularity mode the tool shadows lines instead of bytes and
    skips per-function aggregation, exactly as §IV-B3 describes; the
    byte-level machinery is disabled for that run. *)

type t

val create : ?options:Options.t -> Dbi.Machine.t -> t

(** The callback record to attach to the machine. *)
val tool : t -> Dbi.Tool.t

val options : t -> Options.t
val machine : t -> Dbi.Machine.t

(** Aggregate communication profile (byte mode; empty in line mode). *)
val profile : t -> Profile.t

(** Reuse statistics; meaningful only when [reuse_mode] was set. *)
val reuse : t -> Reuse.t

(** Line records; [None] unless line mode was configured. *)
val line_shadow : t -> Line_shadow.t option

(** Event log; [None] unless [collect_events] was set. *)
val event_log : t -> Event_log.t option

(** {2 Shadow-memory introspection (Fig 6 data)} *)

val shadow_footprint_bytes : t -> int
val shadow_footprint_peak_bytes : t -> int
val shadow_evictions : t -> int
