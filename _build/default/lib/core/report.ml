type row = {
  ctx : Dbi.Context.id;
  path : string;
  calls : int;
  ops : int;
  input_unique : int;
  input_total : int;
  local_unique : int;
  local_total : int;
  output_unique : int;
  output_total : int;
  written : int;
}

let rows tool =
  let machine = Tool.machine tool in
  let profile = Tool.profile tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let make ctx =
    let s = Profile.stats profile ctx in
    let output_total, output_unique = Profile.output_bytes profile ctx in
    {
      ctx;
      path = Dbi.Context.path contexts symbols ctx;
      calls = s.Profile.calls;
      ops = s.Profile.int_ops + s.Profile.fp_ops;
      input_unique = s.Profile.input_unique;
      input_total = s.Profile.input_unique + s.Profile.input_nonunique;
      local_unique = s.Profile.local_unique;
      local_total = s.Profile.local_unique + s.Profile.local_nonunique;
      output_unique;
      output_total;
      written = s.Profile.written;
    }
  in
  let all = List.map make (Profile.contexts profile) in
  List.sort (fun a b -> compare b.ops a.ops) all

let pp ?(limit = 25) ppf tool =
  Format.fprintf ppf "%10s %8s %11s %11s %11s %11s  %s@." "ops" "calls" "in-uniq/tot"
    "local-u/tot" "out-uniq/tot" "written" "function";
  List.iteri
    (fun i row ->
      if i < limit then
        Format.fprintf ppf "%10d %8d %5d/%-5d %5d/%-5d %5d/%-6d %11d  %s@." row.ops row.calls
          row.input_unique row.input_total row.local_unique row.local_total row.output_unique
          row.output_total row.written row.path)
    (rows tool)

let pp_edges ?(limit = 25) ppf tool =
  let machine = Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let edges = Profile.edges (Tool.profile tool) in
  let edges =
    List.sort (fun (a : Profile.edge) b -> compare b.unique_bytes a.unique_bytes) edges
  in
  Format.fprintf ppf "%12s %12s  %s -> %s@." "unique-bytes" "total-bytes" "producer" "consumer";
  List.iteri
    (fun i (e : Profile.edge) ->
      if i < limit then
        Format.fprintf ppf "%12d %12d  %s -> %s@." e.unique_bytes e.bytes
          (Dbi.Context.path contexts symbols e.src)
          (Dbi.Context.path contexts symbols e.dst))
    edges
