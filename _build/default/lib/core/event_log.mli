(** Sequential event-file representation (§II-C2).

    Sigil's second output form: the execution as a list of dependent
    "events" — fragments of computation separated by data-transfer edges.
    Order is preserved *between* functions but not within one (the paper
    does not distinguish the order of events inside a function), so each
    fragment carries its operation totals and the set of transfers it
    consumed.

    Entries:
    - [Call]: a context was entered ([call] is its per-context sequence
      number);
    - [Comp]: computation retired by one fragment of one call;
    - [Xfer]: bytes flowing from a producer call to the current fragment;
    - [Ret]: the call returned.

    The text serialization is line-oriented ([C]/[O]/[X]/[R] records) so
    profiles can be post-processed without re-running Sigil — the paper's
    planned release shipped profile data this way. *)

type entry =
  | Call of { ctx : Dbi.Context.id; call : int }
  | Comp of { ctx : Dbi.Context.id; call : int; int_ops : int; fp_ops : int }
  | Xfer of {
      src_ctx : Dbi.Context.id;
      src_call : int;
      dst_ctx : Dbi.Context.id;
      dst_call : int;
      bytes : int;
      unique_bytes : int;
    }
  | Ret of { ctx : Dbi.Context.id; call : int }

type t

val create : unit -> t
val add : t -> entry -> unit
val entries : t -> entry list
val length : t -> int
val iter : t -> (entry -> unit) -> unit

(** {2 Text format} *)

val entry_to_string : entry -> string

(** [entry_of_string line] parses one record.

    @raise Failure on a malformed line. *)
val entry_of_string : string -> entry

val save : t -> string -> unit

(** [load path] reads a saved event file.

    @raise Failure on a malformed file. *)
val load : string -> t
