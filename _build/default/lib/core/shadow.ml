type sink = {
  on_episode_end : reader:Dbi.Context.id -> reads:int -> first:int -> last:int -> unit;
  on_version_end : producer:Dbi.Context.id -> nonunique:int -> unit;
}

let null_sink =
  {
    on_episode_end = (fun ~reader:_ ~reads:_ ~first:_ ~last:_ -> ());
    on_version_end = (fun ~producer:_ ~nonunique:_ -> ());
  }

type read_result = {
  producer : Dbi.Context.id;
  producer_call : int;
  unique : bool;
}

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let chunk_bytes = chunk_size
let max_address = 1 lsl 30
let first_level_len = max_address lsr chunk_bits

(* Reuse-mode arrays, allocated only when requested. [ep_*] track the live
   read episode; [ver_nonunique] the live version's re-use count. *)
type reuse_chunk = {
  ep_first : int array;
  ep_last : int array;
  ep_reads : int array;
  ver_nonunique : int array;
}

type chunk = {
  index : int;
  writer : int array; (* producer context, -1 = invalid *)
  writer_call : int array option; (* producer call number, event mode only *)
  reader : int array; (* last reader context, -1 = none *)
  reader_call : int array;
  reuse : reuse_chunk option;
}

type t = {
  table : chunk option array;
  reuse_mode : bool;
  track_writer_call : bool;
  max_chunks : int;
  sink : sink;
  fifo : int Queue.t; (* chunk indices, creation order *)
  mutable live : int;
  mutable peak : int;
  mutable evictions : int;
  mutable last_chunk : chunk option; (* single-entry lookup cache *)
}

let create ?(reuse = false) ?(track_writer_call = false) ?max_chunks ?(sink = null_sink) () =
  {
    table = Array.make first_level_len None;
    reuse_mode = reuse;
    track_writer_call;
    max_chunks = (match max_chunks with None -> max_int | Some n -> n);
    sink;
    fifo = Queue.create ();
    live = 0;
    peak = 0;
    evictions = 0;
    last_chunk = None;
  }

(* Host bytes per chunk: OCaml int arrays cost 8 bytes per element plus a
   header; the first level is one word per slot. *)
let per_chunk_bytes reuse track_writer_call =
  let arrays = (if reuse then 7 else 3) + (if track_writer_call then 1 else 0) in
  arrays * ((chunk_size * 8) + 16)

let footprint_bytes t =
  (first_level_len * 8) + (t.live * per_chunk_bytes t.reuse_mode t.track_writer_call)

let footprint_peak_bytes t =
  (first_level_len * 8) + (t.peak * per_chunk_bytes t.reuse_mode t.track_writer_call)
let chunks_live t = t.live
let chunks_peak t = t.peak
let evictions t = t.evictions

let flush_byte t (c : chunk) i =
  let reader = c.reader.(i) in
  (match c.reuse with
  | None -> ()
  | Some r ->
    if reader >= 0 && r.ep_reads.(i) > 0 then
      t.sink.on_episode_end ~reader ~reads:r.ep_reads.(i) ~first:r.ep_first.(i)
        ~last:r.ep_last.(i);
    (* program-input bytes (never written) are data elements too; their
       producer is the root pseudo-context *)
    if c.writer.(i) >= 0 || reader >= 0 then begin
      let producer = if c.writer.(i) >= 0 then c.writer.(i) else Dbi.Context.root in
      t.sink.on_version_end ~producer ~nonunique:r.ver_nonunique.(i)
    end);
  c.writer.(i) <- -1;
  (match c.writer_call with None -> () | Some wc -> wc.(i) <- 0);
  c.reader.(i) <- -1;
  c.reader_call.(i) <- 0;
  match c.reuse with
  | None -> ()
  | Some r ->
    r.ep_first.(i) <- 0;
    r.ep_last.(i) <- 0;
    r.ep_reads.(i) <- 0;
    r.ver_nonunique.(i) <- 0

let flush_chunk t c =
  for i = 0 to chunk_size - 1 do
    if c.writer.(i) >= 0 || c.reader.(i) >= 0 then flush_byte t c i
  done

let evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some index ->
    (match t.table.(index) with
    | None -> ()
    | Some c ->
      flush_chunk t c;
      t.table.(index) <- None;
      t.live <- t.live - 1;
      t.evictions <- t.evictions + 1;
      (match t.last_chunk with
      | Some lc when lc.index = index -> t.last_chunk <- None
      | Some _ | None -> ()))

let new_chunk t index =
  let reuse =
    if t.reuse_mode then
      Some
        {
          ep_first = Array.make chunk_size 0;
          ep_last = Array.make chunk_size 0;
          ep_reads = Array.make chunk_size 0;
          ver_nonunique = Array.make chunk_size 0;
        }
    else None
  in
  let c =
    {
      index;
      writer = Array.make chunk_size (-1);
      writer_call = (if t.track_writer_call then Some (Array.make chunk_size 0) else None);
      reader = Array.make chunk_size (-1);
      reader_call = Array.make chunk_size 0;
      reuse;
    }
  in
  if t.live >= t.max_chunks then evict_one t;
  t.table.(index) <- Some c;
  Queue.add index t.fifo;
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live;
  c

let chunk_for t addr =
  if addr < 0 || addr >= max_address then invalid_arg "Shadow: address out of range";
  let index = addr lsr chunk_bits in
  match t.last_chunk with
  | Some c when c.index = index -> c
  | Some _ | None ->
    let c =
      match t.table.(index) with
      | Some c -> c
      | None -> new_chunk t index
    in
    t.last_chunk <- Some c;
    c

let read t ~ctx ~call ~now addr =
  let c = chunk_for t addr in
  let i = addr land (chunk_size - 1) in
  let writer = c.writer.(i) in
  let producer = if writer >= 0 then writer else Dbi.Context.root in
  let producer_call =
    match c.writer_call with
    | Some wc when writer >= 0 -> wc.(i)
    | Some _ | None -> 0
  in
  (* Unique vs non-unique follows the (function, call) pair, which is why
     Table I stores both the last reader and the last reader call: a read
     is non-unique only when the same call of the same function already
     read the byte. An accelerator must re-fetch its inputs on every
     invocation, so cross-call re-reads count as unique communication. *)
  let same_episode = c.reader.(i) = ctx && c.reader_call.(i) = call in
  (match c.reuse with
  | None -> ()
  | Some r ->
    if same_episode then begin
      r.ep_reads.(i) <- r.ep_reads.(i) + 1;
      r.ep_last.(i) <- now;
      r.ver_nonunique.(i) <- r.ver_nonunique.(i) + 1
    end
    else begin
      (* close the previous reader's episode, open a new one *)
      if c.reader.(i) >= 0 && r.ep_reads.(i) > 0 then
        t.sink.on_episode_end ~reader:c.reader.(i) ~reads:r.ep_reads.(i) ~first:r.ep_first.(i)
          ~last:r.ep_last.(i);
      r.ep_first.(i) <- now;
      r.ep_last.(i) <- now;
      r.ep_reads.(i) <- 1
    end);
  c.reader.(i) <- ctx;
  c.reader_call.(i) <- call;
  { producer; producer_call; unique = not same_episode }

let write t ~ctx ~call ~now:_ addr =
  let c = chunk_for t addr in
  let i = addr land (chunk_size - 1) in
  if c.writer.(i) >= 0 || c.reader.(i) >= 0 then flush_byte t c i;
  c.writer.(i) <- ctx;
  match c.writer_call with None -> () | Some wc -> wc.(i) <- call

let flush t =
  Array.iter
    (function
      | Some c -> flush_chunk t c
      | None -> ())
    t.table

let producer_of t addr =
  if addr < 0 || addr >= max_address then invalid_arg "Shadow: address out of range";
  match t.table.(addr lsr chunk_bits) with
  | None -> None
  | Some c ->
    let w = c.writer.(addr land (chunk_size - 1)) in
    if w >= 0 then Some w else None
