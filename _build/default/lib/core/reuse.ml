type fn_reuse = {
  episodes : int;
  reused_episodes : int;
  reuse_reads : int;
  lifetime_sum : int;
}

type version_bins = {
  zero : int;
  low : int;
  high : int;
}

type cell = {
  mutable episodes : int;
  mutable reused_episodes : int;
  mutable reuse_reads : int;
  mutable lifetime_sum : int;
  hist : (int, int ref) Hashtbl.t;
}

type t = {
  bin : int;
  mutable cells : cell option array;
  mutable zero : int;
  mutable low : int;
  mutable high : int;
}

let create ?(lifetime_bin = 1000) () =
  if lifetime_bin <= 0 then invalid_arg "Reuse.create: bin width must be positive";
  { bin = lifetime_bin; cells = Array.make 256 None; zero = 0; low = 0; high = 0 }

let cell t ctx =
  let len = Array.length t.cells in
  if ctx >= len then begin
    let grown = Array.make (max (2 * len) (ctx + 1)) None in
    Array.blit t.cells 0 grown 0 len;
    t.cells <- grown
  end;
  match t.cells.(ctx) with
  | Some c -> c
  | None ->
    let c =
      { episodes = 0; reused_episodes = 0; reuse_reads = 0; lifetime_sum = 0;
        hist = Hashtbl.create 16 }
    in
    t.cells.(ctx) <- Some c;
    c

let sink t : Shadow.sink =
  {
    on_episode_end =
      (fun ~reader ~reads ~first ~last ->
        let c = cell t reader in
        c.episodes <- c.episodes + 1;
        if reads > 1 then begin
          let lifetime = last - first in
          c.reused_episodes <- c.reused_episodes + 1;
          c.reuse_reads <- c.reuse_reads + (reads - 1);
          c.lifetime_sum <- c.lifetime_sum + lifetime;
          let bin = lifetime / t.bin * t.bin in
          match Hashtbl.find_opt c.hist bin with
          | Some r -> incr r
          | None -> Hashtbl.add c.hist bin (ref 1)
        end);
    on_version_end =
      (fun ~producer:_ ~nonunique ->
        if nonunique = 0 then t.zero <- t.zero + 1
        else if nonunique <= 9 then t.low <- t.low + 1
        else t.high <- t.high + 1);
  }

let fn_reuse t ctx =
  if ctx < Array.length t.cells then
    match t.cells.(ctx) with
    | Some c ->
      {
        episodes = c.episodes;
        reused_episodes = c.reused_episodes;
        reuse_reads = c.reuse_reads;
        lifetime_sum = c.lifetime_sum;
      }
    | None -> { episodes = 0; reused_episodes = 0; reuse_reads = 0; lifetime_sum = 0 }
  else { episodes = 0; reused_episodes = 0; reuse_reads = 0; lifetime_sum = 0 }

let avg_lifetime t ctx =
  let r = fn_reuse t ctx in
  if r.reused_episodes = 0 then 0.0
  else float_of_int r.lifetime_sum /. float_of_int r.reused_episodes

let histogram t ctx =
  if ctx >= Array.length t.cells then []
  else
    match t.cells.(ctx) with
    | None -> []
    | Some c ->
      let entries = Hashtbl.fold (fun bin r acc -> (bin, !r) :: acc) c.hist [] in
      List.sort compare entries

let version_bins t = { zero = t.zero; low = t.low; high = t.high }

let contexts t =
  let acc = ref [] in
  for ctx = Array.length t.cells - 1 downto 0 do
    match t.cells.(ctx) with
    | Some c when c.episodes > 0 -> acc := ctx :: !acc
    | Some _ | None -> ()
  done;
  !acc

let lifetime_bin_width t = t.bin
