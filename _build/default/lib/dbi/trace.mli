(** Record and replay raw guest event streams.

    The paper argues Sigil's profiles only need collecting once because they
    are platform-independent; this module extends that to the raw event
    stream itself: {!recorder} is a tool that serializes every primitive
    event to a file, and {!replay} drives any set of tools from such a file
    on a fresh machine — collect once, analyze offline with any tool, as
    many times as needed.

    The format is line-oriented text, one event per line:

    {v
 E <name>          function enter
 L                 function leave
 R <addr> <size>   data read          W <addr> <size>   data write
 I <count>         integer ops        F <count>         fp ops
 B 0|1             branch (taken?) v}

    Function enters carry names, so traces are self-contained (a stripped
    binary records its degraded ["???:n"] names). System calls appear as
    their expanded pseudo-function events ([E sys:read] ...), so replayed
    contexts are identical to the original run's.

    Replay drives the machine with zero call overhead: the recording
    machine's caller-side overhead ops were captured as explicit [I]
    records, so the replayed clock and per-context costs match the
    original exactly. *)

(** [recorder oc] is a tool that writes every event to [oc]. The caller
    owns the channel and must close it after {!Machine.finish}. *)
val recorder : out_channel -> Machine.t -> Tool.t

(** [record path workload] runs [workload] with only the recorder attached
    and writes the trace to [path]. Returns the machine (for counters). *)
val record : string -> (Machine.t -> unit) -> Machine.t

(** [replay ~tools path] reconstructs the guest run from a trace file.

    @raise Failure on a malformed trace. *)
val replay : tools:(Machine.t -> Tool.t) list -> string -> Machine.t

(** [replay_events ~tools lines] is {!replay} over in-memory trace lines
    (testing, piping). *)
val replay_events : tools:(Machine.t -> Tool.t) list -> string list -> Machine.t
