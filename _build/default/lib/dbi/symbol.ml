type id = int

type t = {
  stripped : bool;
  by_name : (string, id) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
}

let code_page_size = 4096

(* Code pages live far above the data address space (see Addr_space). *)
let code_region_base = 0x4000_0000_0000

let create ?(stripped = false) () =
  { stripped; by_name = Hashtbl.create 64; names = Array.make 64 ""; n = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = Array.length t.names then begin
      let grown = Array.make (2 * id) "" in
      Array.blit t.names 0 grown 0 id;
      t.names <- grown
    end;
    t.names.(id) <- name;
    t.n <- id + 1;
    Hashtbl.add t.by_name name id;
    id

let check t id =
  if id < 0 || id >= t.n then invalid_arg "Symbol: unknown id"

let name t id =
  check t id;
  if t.stripped then "???:" ^ string_of_int id else t.names.(id)

let code_base t id =
  check t id;
  code_region_base + (id * code_page_size)

let count t = t.n
let is_stripped t = t.stripped

let iter t f =
  for id = 0 to t.n - 1 do
    f id (if t.stripped then "???:" ^ string_of_int id else t.names.(id))
  done
