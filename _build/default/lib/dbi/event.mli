(** Primitive guest events observed by instrumentation tools.

    The machine ({!Machine}) reduces a running guest workload to the same
    collection of primitives Valgrind's intermediate representation exposes:
    function entries and exits, byte-addressed memory accesses, integer and
    floating-point operations, conditional branches and system calls. Tools
    ({!Tool}) receive these through callbacks; this module only defines the
    shared vocabulary. *)

(** Kind of a computational operation, as logged by the (modified) Callgrind
    front end the paper describes ("functionality to log floating point and
    integer operations"). *)
type op_kind =
  | Int_op
  | Fp_op

(** Memory-access direction. *)
type access =
  | Read
  | Write

(** A contiguous byte range [(addr, len)] of guest memory, used to describe
    the buffers a system call reads from or writes into. *)
type byte_range = int * int

val pp_op_kind : Format.formatter -> op_kind -> unit
val pp_access : Format.formatter -> access -> unit

(** [range_valid (addr, len)] holds when the range lies in the guest address
    space and has positive length. *)
val range_valid : byte_range -> bool
