type op_kind =
  | Int_op
  | Fp_op

type access =
  | Read
  | Write

type byte_range = int * int

let pp_op_kind ppf = function
  | Int_op -> Format.pp_print_string ppf "int"
  | Fp_op -> Format.pp_print_string ppf "fp"

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

let range_valid (addr, len) = addr >= 0 && len > 0
