(** Calling-context tree.

    Sigil and Callgrind both "keep separate accounting of costs for functions
    called through different contexts": the same function reached through two
    different call paths is two distinct cost nodes (the paper's D1/D2 in
    Fig. 2). A context is therefore a node in the dynamic call tree collapsed
    by path — identified by its parent context plus the callee function.

    Contexts get dense integer ids so tools can use array-indexed state. The
    root context (id 0) represents the process before [main] is entered. *)

type t

(** Dense context id; [root] is 0. *)
type id = int

val root : id

val create : unit -> t

(** [enter t parent fn] returns the context for calling function [fn] from
    context [parent], interning a new node on first sight. *)
val enter : t -> id -> Symbol.id -> id

(** [fn t ctx] is the function executing in [ctx].

    @raise Invalid_argument for [root] or an unknown id. *)
val fn : t -> id -> Symbol.id

(** [parent t ctx] is the calling context, or [None] for [root]. *)
val parent : t -> id -> id option

(** [depth t ctx] is the call depth ([root] has depth 0, [main] depth 1). *)
val depth : t -> id -> int

(** Number of interned contexts, including [root]. *)
val count : t -> int

(** [path t symbols ctx] renders the full call path, outermost first,
    e.g. ["main/localSearch/pkmedian"]. [root] renders as ["<root>"]. *)
val path : t -> Symbol.t -> id -> string

(** [iter t f] applies [f id] to every context in id order, [root]
    included. *)
val iter : t -> (id -> unit) -> unit

(** [children t ctx] lists the contexts whose parent is [ctx], in creation
    order. *)
val children : t -> id -> id list
