(** Interned guest function symbols.

    Plays the role of the debug-symbol table Valgrind reads from the binary.
    Every function a workload calls is interned here once and identified by a
    dense integer id, so tools can index per-function state with arrays.

    A table can be created in [stripped] mode, mimicking a binary without
    debugging symbols: functions still get distinct ids but their names
    degrade to ["???:<id>"], which (as the paper notes) drastically reduces
    the usefulness of the resulting profiles without breaking the tools. *)

type t

(** Dense function id, starting at 0. *)
type id = int

(** [create ~stripped ()] returns an empty table. *)
val create : ?stripped:bool -> unit -> t

(** [intern t name] returns the id for [name], allocating one on first
    sight. Code addresses are assigned per function from a flat 4 KiB/page
    layout. *)
val intern : t -> string -> id

(** [name t id] is the symbol's name, or ["???:<id>"] when the table is
    stripped.

    @raise Invalid_argument on an unknown id. *)
val name : t -> id -> string

(** [code_base t id] is the base address of the function's synthetic code
    page, used by instruction-cache simulation.

    @raise Invalid_argument on an unknown id. *)
val code_base : t -> id -> int

(** Number of interned symbols. *)
val count : t -> int

(** [is_stripped t] tells whether the table hides real names. *)
val is_stripped : t -> bool

(** [iter t f] applies [f id name] to every interned symbol in id order. *)
val iter : t -> (id -> string -> unit) -> unit

(** Size in bytes of the synthetic code page assigned to each function. *)
val code_page_size : int
