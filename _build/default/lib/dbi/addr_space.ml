type t = {
  mutable brk : int;
  live : (int, int) Hashtbl.t; (* base -> size *)
  mutable free_list : (int * int) list; (* (base, size), address order *)
  mutable sp : int;
  mutable frames : (int * int) list; (* (base, size) of pushed frames *)
  mutable live_bytes : int;
}

let heap_base = 0x0010_0000
let stack_top = 0x4000_0000

let create () =
  {
    brk = heap_base;
    live = Hashtbl.create 256;
    free_list = [];
    sp = stack_top;
    frames = [];
    live_bytes = 0;
  }

let align8 n = (n + 7) land lnot 7

(* First-fit search; an exact or split fit comes off the free list, otherwise
   the heap break grows. Adjacent free blocks are not coalesced — workloads
   here allocate in a handful of size classes, so fragmentation stays
   bounded and the simpler invariant (every free-list entry was exactly a
   freed block or its tail) is easier to check. *)
let alloc t size =
  if size <= 0 then invalid_arg "Addr_space.alloc: size must be positive";
  let size = align8 size in
  let rec take acc = function
    | [] -> None
    | (base, bsize) :: rest when bsize >= size ->
      let leftover =
        if bsize > size then [ (base + size, bsize - size) ] else []
      in
      Some (base, List.rev_append acc (leftover @ rest))
    | blk :: rest -> take (blk :: acc) rest
  in
  let base =
    match take [] t.free_list with
    | Some (base, free_list) ->
      t.free_list <- free_list;
      base
    | None ->
      let base = t.brk in
      t.brk <- t.brk + size;
      base
  in
  Hashtbl.replace t.live base size;
  t.live_bytes <- t.live_bytes + size;
  base

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Addr_space.free: not a live block base"
  | Some size ->
    Hashtbl.remove t.live addr;
    t.live_bytes <- t.live_bytes - size;
    t.free_list <- (addr, size) :: t.free_list

let push_frame t size =
  if size <= 0 then invalid_arg "Addr_space.push_frame: size must be positive";
  let size = align8 size in
  t.sp <- t.sp - size;
  let base = t.sp in
  t.frames <- (base, size) :: t.frames;
  base

let pop_frame t =
  match t.frames with
  | [] -> invalid_arg "Addr_space.pop_frame: no live frame"
  | (base, size) :: rest ->
    assert (base = t.sp);
    t.sp <- t.sp + size;
    t.frames <- rest

let live_block t addr =
  (* Walk live blocks only when asked (tests, debugging); hot paths never
     call this. *)
  Hashtbl.fold
    (fun base size acc ->
      match acc with
      | Some _ -> acc
      | None -> if addr >= base && addr < base + size then Some (base, size) else None)
    t.live None

let heap_live_bytes t = t.live_bytes
let heap_extent t = t.brk - heap_base
let live_blocks t = Hashtbl.length t.live
