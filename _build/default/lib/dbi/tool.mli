(** Instrumentation-tool plugin interface.

    The OCaml analogue of a Valgrind tool: a record of callbacks the machine
    invokes for every primitive guest event. A tool is constructed against a
    specific {!Machine.t} (so its callbacks can close over the machine's
    symbol and context tables) and then attached with {!Machine.attach}.

    System calls do not get a dedicated callback: the machine models each
    one as an opaque pseudo-function (named ["sys:<name>"]) that is entered,
    reads its input ranges, writes its output ranges and leaves — exactly
    the limited visibility the paper describes ("capture the names of system
    calls and capture the input and output bytes but not see the detailed
    memory and communication used inside"). *)

type t = {
  name : string;
  on_enter : ctx:Context.id -> fn:Symbol.id -> call:int -> unit;
      (** Function entry. [ctx] is the callee's context; [call] is the
          1-based sequence number of this call *of this context*. *)
  on_leave : ctx:Context.id -> fn:Symbol.id -> unit;
      (** Function exit, with the callee's own context (before popping). *)
  on_read : ctx:Context.id -> addr:int -> size:int -> unit;
      (** Data read of [size] bytes at [addr] by code running in [ctx]. *)
  on_write : ctx:Context.id -> addr:int -> size:int -> unit;
      (** Data write, same conventions as [on_read]. *)
  on_op : ctx:Context.id -> kind:Event.op_kind -> count:int -> unit;
      (** [count] computational operations of [kind] retired in [ctx]. *)
  on_branch : ctx:Context.id -> taken:bool -> unit;
      (** A conditional branch in [ctx]. *)
  on_finish : unit -> unit;
      (** End of the guest program; flush any pending state. *)
}

(** [nop name] is a tool that ignores every event — the baseline for
    instrumentation-overhead measurements. *)
val nop : string -> t
