type t = {
  name : string;
  on_enter : ctx:Context.id -> fn:Symbol.id -> call:int -> unit;
  on_leave : ctx:Context.id -> fn:Symbol.id -> unit;
  on_read : ctx:Context.id -> addr:int -> size:int -> unit;
  on_write : ctx:Context.id -> addr:int -> size:int -> unit;
  on_op : ctx:Context.id -> kind:Event.op_kind -> count:int -> unit;
  on_branch : ctx:Context.id -> taken:bool -> unit;
  on_finish : unit -> unit;
}

let nop name =
  {
    name;
    on_enter = (fun ~ctx:_ ~fn:_ ~call:_ -> ());
    on_leave = (fun ~ctx:_ ~fn:_ -> ());
    on_read = (fun ~ctx:_ ~addr:_ ~size:_ -> ());
    on_write = (fun ~ctx:_ ~addr:_ ~size:_ -> ());
    on_op = (fun ~ctx:_ ~kind:_ ~count:_ -> ());
    on_branch = (fun ~ctx:_ ~taken:_ -> ());
    on_finish = (fun () -> ());
  }
