(** Workload-facing API.

    Synthetic workloads are OCaml programs written against this module; each
    call here injects the corresponding primitive event into the machine.
    The functions are thin, but they enforce the bracketing discipline
    ([call] always pairs enter/leave, [with_buffer] always frees) so
    workloads cannot corrupt machine state even when they raise. *)

(** [call m name body] runs [body ()] inside a guest call to function
    [name]; the call is left (and observed by tools) even if [body]
    raises. *)
val call : Machine.t -> string -> (unit -> 'a) -> 'a

(** [read m addr size] reads [size] bytes at [addr]. *)
val read : Machine.t -> int -> int -> unit

(** [write m addr size] writes [size] bytes at [addr]. *)
val write : Machine.t -> int -> int -> unit

(** [iop m n] retires [n] integer operations; [flop m n] floating-point. *)
val iop : Machine.t -> int -> unit

val flop : Machine.t -> int -> unit

(** [branch m taken] retires a conditional branch. *)
val branch : Machine.t -> bool -> unit

(** [alloc m size] heap-allocates; [free m addr] releases. *)
val alloc : Machine.t -> int -> int

val free : Machine.t -> int -> unit

(** [with_buffer m size f] allocates a heap block, passes its base to [f],
    and frees it afterwards (even on exceptions). *)
val with_buffer : Machine.t -> int -> (int -> 'a) -> 'a

(** [with_frame m size f] is [with_buffer] on the guest stack: a frame of
    [size] bytes for call-scoped scratch (locals, spilled arguments). *)
val with_frame : Machine.t -> int -> (int -> 'a) -> 'a

(** [syscall m name ~reads ~writes] crosses into the (opaque) kernel. *)
val syscall :
  Machine.t -> string -> reads:Event.byte_range list -> writes:Event.byte_range list -> unit

(** {2 Bulk helpers}

    Loops over byte ranges in word-sized accesses, the way compiled code
    would. All sizes are in bytes. *)

(** [read_range m addr len] reads [len] bytes starting at [addr] in 8-byte
    accesses. *)
val read_range : Machine.t -> int -> int -> unit

val write_range : Machine.t -> int -> int -> unit

(** [memcpy m ~dst ~src len] reads [src], writes [dst], and retires the
    move's integer ops. *)
val memcpy : Machine.t -> dst:int -> src:int -> int -> unit
