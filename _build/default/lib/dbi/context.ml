type id = int

type node = {
  fn : Symbol.id;
  parent : id;
  depth : int;
  mutable children_rev : id list;
}

type t = {
  by_key : (int, id) Hashtbl.t; (* key = parent * 2^20 + fn, see [key] *)
  mutable nodes : node option array;
  mutable n : int;
}

let root = 0

(* Contexts and symbols are both dense small ints; pack the pair into one
   int key. 2^20 functions per profile is far beyond any workload here. *)
let key parent fn = (parent lsl 20) lor fn

let create () =
  let t = { by_key = Hashtbl.create 256; nodes = Array.make 256 None; n = 0 } in
  t.nodes.(0) <- Some { fn = -1; parent = -1; depth = 0; children_rev = [] };
  t.n <- 1;
  t

let node t id =
  if id < 0 || id >= t.n then invalid_arg "Context: unknown id";
  match t.nodes.(id) with
  | Some n -> n
  | None -> invalid_arg "Context: unknown id"

let enter t parent fn =
  if fn < 0 || fn >= 1 lsl 20 then invalid_arg "Context.enter: bad function id";
  let k = key parent fn in
  match Hashtbl.find_opt t.by_key k with
  | Some id -> id
  | None ->
    let pnode = node t parent in
    let id = t.n in
    if id = Array.length t.nodes then begin
      let grown = Array.make (2 * id) None in
      Array.blit t.nodes 0 grown 0 id;
      t.nodes <- grown
    end;
    t.nodes.(id) <- Some { fn; parent; depth = pnode.depth + 1; children_rev = [] };
    pnode.children_rev <- id :: pnode.children_rev;
    t.n <- id + 1;
    Hashtbl.add t.by_key k id;
    id

let fn t id =
  if id = root then invalid_arg "Context.fn: root has no function";
  (node t id).fn

let parent t id = if id = root then None else Some (node t id).parent
let depth t id = (node t id).depth
let count t = t.n

let path t symbols id =
  if id = root then "<root>"
  else begin
    let rec collect acc id =
      if id = root then acc
      else
        let n = node t id in
        collect (Symbol.name symbols n.fn :: acc) n.parent
    in
    String.concat "/" (collect [] id)
  end

let iter t f =
  for id = 0 to t.n - 1 do
    f id
  done

let children t id = List.rev (node t id).children_rev
