(** Deterministic pseudo-random number generator (SplitMix64).

    Workloads must be bit-reproducible across runs and platforms, so they
    never use [Stdlib.Random]; every workload derives its own generator from
    a seed built out of its name and input scale. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int64 -> t

(** [of_string s] seeds a generator from an arbitrary string (FNV-1a). *)
val of_string : string -> t

(** [next t] returns the next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] returns a uniform value in [\[0, bound)]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [split t] derives an independent generator without disturbing [t]'s
    stream position more than one step. *)
val split : t -> t
