let recorder oc machine : Tool.t =
  let symbols = Machine.symbols machine in
  let contexts = Machine.contexts machine in
  {
    name = "trace-recorder";
    on_enter =
      (fun ~ctx ~fn:_ ~call:_ ->
        output_string oc "E ";
        output_string oc (Symbol.name symbols (Context.fn contexts ctx));
        output_char oc '\n');
    on_leave = (fun ~ctx:_ ~fn:_ -> output_string oc "L\n");
    on_read = (fun ~ctx:_ ~addr ~size -> Printf.fprintf oc "R %d %d\n" addr size);
    on_write = (fun ~ctx:_ ~addr ~size -> Printf.fprintf oc "W %d %d\n" addr size);
    on_op =
      (fun ~ctx:_ ~kind ~count ->
        match kind with
        | Event.Int_op -> Printf.fprintf oc "I %d\n" count
        | Event.Fp_op -> Printf.fprintf oc "F %d\n" count);
    on_branch = (fun ~ctx:_ ~taken -> Printf.fprintf oc "B %d\n" (if taken then 1 else 0));
    on_finish = (fun () -> flush oc);
  }

let record path workload =
  let oc = open_out path in
  let result =
    Runner.run ~tools:[ recorder oc ] workload
  in
  close_out oc;
  result.Runner.machine

let apply_line machine line =
  let fail () = failwith ("Trace: malformed record: " ^ line) in
  let int_field s = match int_of_string_opt s with Some v -> v | None -> fail () in
  (* function names may contain spaces ("operator new"): E takes the rest
     of the line verbatim *)
  if String.length line > 2 && line.[0] = 'E' && line.[1] = ' ' then
    ignore (Machine.enter machine (String.sub line 2 (String.length line - 2)))
  else
  match String.split_on_char ' ' line with
  | [ "L" ] -> Machine.leave machine
  | [ "R"; addr; size ] -> Machine.read machine (int_field addr) (int_field size)
  | [ "W"; addr; size ] -> Machine.write machine (int_field addr) (int_field size)
  | [ "I"; count ] -> Machine.op machine Event.Int_op (int_field count)
  | [ "F"; count ] -> Machine.op machine Event.Fp_op (int_field count)
  | [ "B"; taken ] -> Machine.branch machine ~taken:(int_field taken <> 0)
  | _ -> fail ()

let replay_seq ~tools lines =
  (* overhead ops were recorded explicitly; do not re-inject them *)
  let machine = Machine.create ~call_overhead:0 () in
  List.iter (fun make -> Machine.attach machine (make machine)) tools;
  Seq.iter
    (fun line -> if String.trim line <> "" then apply_line machine (String.trim line))
    lines;
  Machine.finish machine;
  machine

let replay ~tools path =
  let ic = open_in path in
  let lines =
    Seq.of_dispenser (fun () ->
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None)
  in
  match replay_seq ~tools lines with
  | machine ->
    close_in ic;
    machine
  | exception e ->
    close_in_noerr ic;
    raise e

let replay_events ~tools lines = replay_seq ~tools (List.to_seq lines)
