lib/dbi/addr_space.mli:
