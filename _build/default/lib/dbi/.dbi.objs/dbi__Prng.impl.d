lib/dbi/prng.ml: Char Int64 String
