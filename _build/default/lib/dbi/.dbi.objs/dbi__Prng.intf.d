lib/dbi/prng.mli:
