lib/dbi/trace.mli: Machine Tool
