lib/dbi/runner.mli: Machine Tool
