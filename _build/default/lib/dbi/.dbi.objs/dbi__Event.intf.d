lib/dbi/event.mli: Format
