lib/dbi/context.ml: Array Hashtbl List String Symbol
