lib/dbi/runner.ml: List Machine Unix
