lib/dbi/guest.mli: Event Machine
