lib/dbi/tool.mli: Context Event Symbol
