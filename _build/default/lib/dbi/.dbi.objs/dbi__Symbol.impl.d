lib/dbi/symbol.ml: Array Hashtbl
