lib/dbi/context.mli: Symbol
