lib/dbi/machine.mli: Addr_space Context Event Symbol Tool
