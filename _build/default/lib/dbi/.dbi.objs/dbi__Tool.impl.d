lib/dbi/tool.ml: Context Event Symbol
