lib/dbi/trace.ml: Context Event List Machine Printf Runner Seq String Symbol Tool
