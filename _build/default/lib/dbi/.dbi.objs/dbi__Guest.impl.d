lib/dbi/guest.ml: Addr_space Context Event Machine
