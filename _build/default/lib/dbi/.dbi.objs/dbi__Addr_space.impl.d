lib/dbi/addr_space.ml: Hashtbl List
