lib/dbi/event.ml: Format
