lib/dbi/symbol.mli:
