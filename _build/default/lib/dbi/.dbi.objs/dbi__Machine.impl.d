lib/dbi/machine.ml: Addr_space Array Context Event List String Symbol Tool
