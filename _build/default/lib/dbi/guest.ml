let call m name body =
  let (_ : Context.id) = Machine.enter m name in
  match body () with
  | result ->
    Machine.leave m;
    result
  | exception e ->
    Machine.leave m;
    raise e

let read = Machine.read
let write = Machine.write
let iop m n = Machine.op m Event.Int_op n
let flop m n = Machine.op m Event.Fp_op n
let branch m taken = Machine.branch m ~taken
let alloc m size = Addr_space.alloc (Machine.space m) size
let free m addr = Addr_space.free (Machine.space m) addr

let with_buffer m size f =
  let base = alloc m size in
  match f base with
  | result ->
    free m base;
    result
  | exception e ->
    free m base;
    raise e

let with_frame m size f =
  let space = Machine.space m in
  let base = Addr_space.push_frame space size in
  match f base with
  | result ->
    Addr_space.pop_frame space;
    result
  | exception e ->
    Addr_space.pop_frame space;
    raise e

let syscall = Machine.syscall

let word = 8

let range_iter f addr len =
  let rec go addr len = if len > 0 then begin f addr (min word len); go (addr + word) (len - word) end in
  go addr len

let read_range m addr len = range_iter (Machine.read m) addr len
let write_range m addr len = range_iter (Machine.write m) addr len

let memcpy m ~dst ~src len =
  let rec go off len =
    if len > 0 then begin
      let n = min word len in
      Machine.read m (src + off) n;
      Machine.write m (dst + off) n;
      Machine.op m Event.Int_op 1;
      go (off + word) (len - word)
    end
  in
  go 0 len
