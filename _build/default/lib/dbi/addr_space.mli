(** Guest data address space.

    A byte-addressed flat space with a heap (first-fit free-list allocator
    over a bump region) and a downward-growing stack for call-scoped scratch
    buffers. No data is actually stored — tools only care about *which*
    addresses a workload touches — but allocation is checked: live blocks
    never overlap, frees must match a live allocation, and stack frames nest.

    Layout: heap grows up from {!heap_base} (1 MiB); stack grows down from
    {!stack_top} (1 GiB), so all data addresses fit below 2^30 and shadow
    memory can use a flat first-level table. Function code pages live in a
    disjoint region above, managed by {!Symbol}; code is fetched, never read
    as data, so it is not shadowed. *)

type t

val heap_base : int
val stack_top : int

val create : unit -> t

(** [alloc t size] returns the base address of a fresh block of [size] > 0
    bytes, 8-byte aligned. Reuses freed blocks first-fit before growing the
    heap. *)
val alloc : t -> int -> int

(** [free t addr] releases the live block based at [addr].

    @raise Invalid_argument if [addr] is not a live block base. *)
val free : t -> int -> unit

(** [push_frame t size] allocates a stack frame and returns its base (lowest)
    address. *)
val push_frame : t -> int -> int

(** [pop_frame t] releases the most recent frame.

    @raise Invalid_argument if no frame is live. *)
val pop_frame : t -> unit

(** [live_block t addr] returns [Some (base, size)] when [addr] falls inside
    a live heap block. Stack addresses are not tracked per block. *)
val live_block : t -> int -> (int * int) option

(** Total bytes currently allocated on the heap. *)
val heap_live_bytes : t -> int

(** High-water mark of the heap break, in bytes above {!heap_base}. *)
val heap_extent : t -> int

(** Number of live heap blocks. *)
val live_blocks : t -> int
