type run = {
  workload : Workloads.Workload.t;
  scale : Workloads.Scale.t;
  machine : Dbi.Machine.t;
  sigil : Sigil.Tool.t option;
  callgrind : Callgrind.Tool.t option;
  elapsed_s : float;
}

let run_workload ?(options = Sigil.Options.default) ?(with_sigil = true) ?(with_callgrind = false)
    ?(stripped = false) (workload : Workloads.Workload.t) scale =
  let sigil_tool = ref None in
  let callgrind_tool = ref None in
  let tools =
    (if with_sigil then
       [
         (fun m ->
           let t = Sigil.Tool.create ~options m in
           sigil_tool := Some t;
           Sigil.Tool.tool t);
       ]
     else [])
    @
    if with_callgrind then
      [
        (fun m ->
          let t = Callgrind.Tool.create m in
          callgrind_tool := Some t;
          Callgrind.Tool.tool t);
      ]
    else []
  in
  let r = Dbi.Runner.run ~stripped ~tools (fun m -> workload.Workloads.Workload.run m scale) in
  {
    workload;
    scale;
    machine = r.Dbi.Runner.machine;
    sigil = !sigil_tool;
    callgrind = !callgrind_tool;
    elapsed_s = r.Dbi.Runner.elapsed_s;
  }

let run_named ?options ?with_sigil ?with_callgrind name scale =
  match Workloads.Suite.find name with
  | Error _ as e -> e
  | Ok w -> Ok (run_workload ?options ?with_sigil ?with_callgrind w scale)

let time_native (w : Workloads.Workload.t) scale =
  (Dbi.Runner.time_native (fun m -> w.Workloads.Workload.run m scale)).Dbi.Runner.elapsed_s

let sigil run =
  match run.sigil with
  | Some t -> t
  | None -> invalid_arg "Driver.sigil: Sigil was not attached to this run"

let callgrind run =
  match run.callgrind with
  | Some t -> t
  | None -> invalid_arg "Driver.callgrind: Callgrind was not attached to this run"

let cdfg run = Analysis.Cdfg.build ?callgrind:run.callgrind (sigil run)

let critpath run =
  match Sigil.Tool.event_log (sigil run) with
  | Some log -> Analysis.Critpath.analyze log
  | None -> invalid_arg "Driver.critpath: run without Options.collect_events"

let fn_name run ctx =
  if ctx = Dbi.Context.root then "<root>"
  else
    Dbi.Symbol.name
      (Dbi.Machine.symbols run.machine)
      (Dbi.Context.fn (Dbi.Machine.contexts run.machine) ctx)
