type config = {
  l1i : Cache.config;
  l1d : Cache.config;
  ll : Cache.config;
}

let default = { l1i = Cache.l1_default; l1d = Cache.l1_default; ll = Cache.ll_default }

type counts = {
  ir : int;
  dr : int;
  dw : int;
  i1mr : int;
  d1mr : int;
  d1mw : int;
  ilmr : int;
  dlmr : int;
  dlmw : int;
}

let zero_counts =
  { ir = 0; dr = 0; dw = 0; i1mr = 0; d1mr = 0; d1mw = 0; ilmr = 0; dlmr = 0; dlmw = 0 }

let add_counts a b =
  {
    ir = a.ir + b.ir;
    dr = a.dr + b.dr;
    dw = a.dw + b.dw;
    i1mr = a.i1mr + b.i1mr;
    d1mr = a.d1mr + b.d1mr;
    d1mw = a.d1mw + b.d1mw;
    ilmr = a.ilmr + b.ilmr;
    dlmr = a.dlmr + b.dlmr;
    dlmw = a.dlmw + b.dlmw;
  }

type t = {
  l1i : Cache.t;
  l1d : Cache.t;
  ll : Cache.t;
  mutable c : counts;
}

let create (cfg : config) =
  { l1i = Cache.create cfg.l1i; l1d = Cache.create cfg.l1d; ll = Cache.create cfg.ll; c = zero_counts }

let fetch t addr len =
  let c = t.c in
  if Cache.access t.l1i addr len then t.c <- { c with ir = c.ir + 1 }
  else if Cache.access t.ll addr len then t.c <- { c with ir = c.ir + 1; i1mr = c.i1mr + 1 }
  else t.c <- { c with ir = c.ir + 1; i1mr = c.i1mr + 1; ilmr = c.ilmr + 1 }

let data_read t addr len =
  let c = t.c in
  if Cache.access t.l1d addr len then t.c <- { c with dr = c.dr + 1 }
  else if Cache.access t.ll addr len then t.c <- { c with dr = c.dr + 1; d1mr = c.d1mr + 1 }
  else t.c <- { c with dr = c.dr + 1; d1mr = c.d1mr + 1; dlmr = c.dlmr + 1 }

let data_write t addr len =
  let c = t.c in
  if Cache.access t.l1d addr len then t.c <- { c with dw = c.dw + 1 }
  else if Cache.access t.ll addr len then t.c <- { c with dw = c.dw + 1; d1mw = c.d1mw + 1 }
  else t.c <- { c with dw = c.dw + 1; d1mw = c.d1mw + 1; dlmw = c.dlmw + 1 }

let counts t = t.c
let l1_misses c = c.i1mr + c.d1mr + c.d1mw
let ll_misses c = c.ilmr + c.dlmr + c.dlmw
