(** Single set-associative cache with true-LRU replacement.

    Geometry follows Callgrind's simulator: size, associativity and line
    size, all powers of two. Accesses are by byte address and length; an
    access that straddles a line boundary touches both lines (and counts as
    a miss if either misses), like cg_sim does. *)

type t

type config = {
  size : int; (** total bytes *)
  assoc : int; (** ways per set *)
  line : int; (** line size, bytes *)
}

(** Callgrind defaults: 32 KiB / 8-way / 64 B. *)
val l1_default : config

(** Callgrind LL default: 8 MiB / 16-way / 64 B. *)
val ll_default : config

(** [create config] builds an empty cache.

    @raise Invalid_argument if any geometry value is not a positive power
    of two, or [assoc * line] exceeds [size]. *)
val create : config -> t

(** [access t addr len] touches [len] bytes at [addr]; returns [true] on a
    hit (every touched line present). Lines touched are made
    most-recently-used. *)
val access : t -> int -> int -> bool

val accesses : t -> int
val misses : t -> int
val config : t -> config

(** Installs that replaced an invalid way (cold fills), i.e. how much of the
    cache the workload actually occupied. *)
val lines_filled : t -> int

val reset : t -> unit
