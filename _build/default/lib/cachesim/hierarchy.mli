(** Two-level cache hierarchy (L1I + L1D, shared LL), Callgrind-style.

    Misses in either L1 are forwarded to the shared last-level cache.
    Counters use Callgrind's names: [Ir/Dr/Dw] are accesses, [I1mr/D1mr/D1mw]
    first-level misses, [ILmr/DLmr/DLmw] last-level misses. *)

type t

type config = {
  l1i : Cache.config;
  l1d : Cache.config;
  ll : Cache.config;
}

val default : config

type counts = {
  ir : int;
  dr : int;
  dw : int;
  i1mr : int;
  d1mr : int;
  d1mw : int;
  ilmr : int;
  dlmr : int;
  dlmw : int;
}

val zero_counts : counts
val add_counts : counts -> counts -> counts

val create : config -> t

(** [fetch t addr len] simulates an instruction fetch. *)
val fetch : t -> int -> int -> unit

(** [data_read t addr len] / [data_write t addr len] simulate data
    accesses. *)
val data_read : t -> int -> int -> unit

val data_write : t -> int -> int -> unit

val counts : t -> counts

(** First-level misses (instruction + data). *)
val l1_misses : counts -> int

(** Last-level misses (instruction + data). *)
val ll_misses : counts -> int
