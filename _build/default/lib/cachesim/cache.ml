type config = {
  size : int;
  assoc : int;
  line : int;
}

type t = {
  cfg : config;
  sets : int;
  line_bits : int;
  set_mask : int;
  tags : int array; (* sets * assoc, -1 = invalid; way order = LRU order *)
  mutable accesses : int;
  mutable misses : int;
  mutable filled : int;
}

let l1_default = { size = 32 * 1024; assoc = 8; line = 64 }
let ll_default = { size = 8 * 1024 * 1024; assoc = 16; line = 64 }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  if not (is_pow2 cfg.size && is_pow2 cfg.assoc && is_pow2 cfg.line) then
    invalid_arg "Cache.create: geometry must be powers of two";
  if cfg.assoc * cfg.line > cfg.size then invalid_arg "Cache.create: assoc * line > size";
  let sets = cfg.size / (cfg.assoc * cfg.line) in
  {
    cfg;
    sets;
    line_bits = log2 cfg.line;
    set_mask = sets - 1;
    tags = Array.make (sets * cfg.assoc) (-1);
    accesses = 0;
    misses = 0;
    filled = 0;
  }

(* Ways within a set are kept in recency order: index 0 is MRU. A hit
   rotates the line to front; a miss shifts everything down and installs at
   front (evicting the last way). *)
let touch_line t line_addr =
  let set = line_addr land t.set_mask in
  let base = set * t.cfg.assoc in
  let assoc = t.cfg.assoc in
  let tags = t.tags in
  let rec find i = if i = assoc then -1 else if tags.(base + i) = line_addr then i else find (i + 1) in
  let pos = find 0 in
  if pos = 0 then true
  else if pos > 0 then begin
    (* move to front *)
    for j = pos downto 1 do
      tags.(base + j) <- tags.(base + j - 1)
    done;
    tags.(base) <- line_addr;
    true
  end
  else begin
    if tags.(base + assoc - 1) = -1 then t.filled <- t.filled + 1;
    for j = assoc - 1 downto 1 do
      tags.(base + j) <- tags.(base + j - 1)
    done;
    tags.(base) <- line_addr;
    false
  end

let access t addr len =
  if len <= 0 then invalid_arg "Cache.access: len must be positive";
  t.accesses <- t.accesses + 1;
  let first = addr lsr t.line_bits in
  let last = (addr + len - 1) lsr t.line_bits in
  let hit = ref true in
  for line = first to last do
    if not (touch_line t line) then hit := false
  done;
  if not !hit then t.misses <- t.misses + 1;
  !hit

let accesses t = t.accesses
let misses t = t.misses
let config t = t.cfg
let lines_filled t = t.filled

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.accesses <- 0;
  t.misses <- 0;
  t.filled <- 0
