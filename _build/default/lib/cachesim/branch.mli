(** Conditional-branch predictor: per-address table of 2-bit saturating
    counters, indexed by (hashed) branch site, as in Callgrind's [--branch-sim]. *)

type t

(** [create ~entries ()] builds a predictor with [entries] counters
    (power of two, default 16384). *)
val create : ?entries:int -> unit -> t

(** [predict t site taken] records the outcome of branch [site]; returns
    [true] when the prediction was correct. *)
val predict : t -> int -> bool -> bool

val branches : t -> int
val mispredicts : t -> int
