type t = {
  table : int array; (* 2-bit counters: 0,1 predict not-taken; 2,3 taken *)
  mask : int;
  mutable branches : int;
  mutable mispredicts : int;
}

let create ?(entries = 16384) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Branch.create: entries must be a positive power of two";
  { table = Array.make entries 1; mask = entries - 1; branches = 0; mispredicts = 0 }

let predict t site taken =
  let idx = (site lxor (site lsr 13)) land t.mask in
  let counter = t.table.(idx) in
  let predicted_taken = counter >= 2 in
  let correct = predicted_taken = taken in
  t.branches <- t.branches + 1;
  if not correct then t.mispredicts <- t.mispredicts + 1;
  t.table.(idx) <- (if taken then min 3 (counter + 1) else max 0 (counter - 1));
  correct

let branches t = t.branches
let mispredicts t = t.mispredicts
