lib/cachesim/cache.mli:
