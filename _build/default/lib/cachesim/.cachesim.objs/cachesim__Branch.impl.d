lib/cachesim/branch.ml: Array
