lib/cachesim/branch.mli:
