(** Workload registry. *)

(** All workloads, PARSEC first (alphabetical), then SPEC. *)
val all : Workload.t list

(** PARSEC subset only (the population of Figs 4–8 and 12). *)
val parsec : Workload.t list

(** [find name] looks a workload up by name. *)
val find : string -> (Workload.t, string) result

val names : unit -> string list
