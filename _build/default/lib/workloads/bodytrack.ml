open Dbi

let cameras = 4

(* FlexImage::Set fills an image from a 64-byte pattern it builds locally;
   the writes are dead (the camera load overwrites them), so the merged
   box communicates almost nothing. *)
let flex_image_set m ~image ~bytes =
  Guest.call m "FlexImage::Set" (fun () ->
      Guest.with_frame m 64 (fun pattern ->
          Guest.iop m 16;
          Guest.write_range m pattern 64;
          let rec fill off =
            if off < bytes then begin
              Stdfns.memcpy m ~dst:(image + off) ~src:pattern ~len:(min 64 (bytes - off));
              fill (off + 64)
            end
          in
          fill 0))

let load_camera m ~image ~bytes =
  Guest.call m "load_camera_frame" (fun () ->
      Guest.syscall m "read" ~reads:[] ~writes:[ (image, bytes) ];
      Guest.iop m (bytes / 16))

let dmatrix_ctor m ~rows ~cols =
  Guest.call m "DMatrix" (fun () ->
      let data = Stdfns.operator_new m (rows * cols * 8) in
      Guest.iop m 10;
      Guest.write_range m (data - 16) 16;
      data)

(* Silhouette error over one image against the body model: fp-dense scan
   with a small model working set re-read per row (bounded re-use). *)
let image_error_inside m ~image ~bytes ~model ~model_bytes ~err =
  Guest.call m "ImageMeasurements::ImageErrorInside" (fun () ->
      let row = 128 in
      let rec scan off =
        if off < bytes then begin
          Guest.read_range m (image + off) (min row (bytes - off));
          Guest.read_range m model (min 64 model_bytes);
          Guest.flop m (row * 4);
          scan (off + row)
        end
      in
      scan 0;
      Guest.flop m 30;
      Guest.write m err 8)

let edge_error m ~image ~bytes ~err =
  Guest.call m "ImageMeasurements::EdgeError" (fun () ->
      let rec scan off =
        if off < bytes then begin
          Guest.read_range m (image + off) (min 64 (bytes - off));
          Guest.flop m 40;
          scan (off + 64)
        end
      in
      scan 0;
      Guest.write m err 8)

let update_pose m ~model ~model_bytes ~errs rng =
  Guest.call m "TrackingModel::UpdatePose" (fun () ->
      Guest.read_range m errs (cameras * 8);
      Guest.with_frame m 32 (fun fr ->
          Guest.flop m 24;
          Guest.write m fr 8;
          Stdfns.ieee754_log m ~arg:fr ~res:(fr + 8);
          Guest.read m (fr + 8) 8);
      let touched = min model_bytes (64 * (1 + Prng.int rng 4)) in
      Guest.read_range m model touched;
      Guest.flop m (touched / 4);
      Guest.write_range m model touched)

let run m scale =
  let image_bytes = 64 * 64 in
  let frames = Scale.apply scale 6 in
  let particles = 8 in
  let rng = Prng.of_string ("bodytrack:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let model_bytes = 2048 in
      let model = dmatrix_ctor m ~rows:16 ~cols:16 in
      let weights = Stdfns.std_vector_ctor m ~elems:particles ~elem_size:8 in
      let images = Array.init cameras (fun _ -> Stdfns.operator_new m image_bytes) in
      let errs = Stdfns.operator_new m (cameras * 8) in
      Guest.call m "TrackingModel::Initialize" (fun () ->
          Guest.write_range m model model_bytes;
          Guest.iop m 200);
      for _frame = 1 to frames do
        Array.iter
          (fun image ->
            flex_image_set m ~image ~bytes:image_bytes;
            load_camera m ~image ~bytes:image_bytes)
          images;
        Guest.call m "ParticleFilter::Update" (fun () ->
            for _p = 1 to particles do
              Guest.iop m 8;
              Array.iteri
                (fun c image ->
                  image_error_inside m ~image ~bytes:image_bytes ~model ~model_bytes
                    ~err:(errs + (c * 8)))
                images;
              update_pose m ~model ~model_bytes ~errs rng;
              Guest.write m (weights + (Prng.int rng particles * 8)) 8
            done);
        Guest.call m "ImageMeasurements::ImageError" (fun () ->
            Array.iteri
              (fun c image ->
                Guest.iop m 4;
                image_error_inside m ~image ~bytes:image_bytes ~model ~model_bytes
                  ~err:(errs + (c * 8));
                edge_error m ~image ~bytes:image_bytes ~err:(errs + (c * 8)))
              images)
      done;
      Stdfns.write_file m ~src:model ~len:256;
      Array.iter (fun image -> Stdfns.free m image) images;
      Stdfns.free m errs)

let workload =
  {
    Workload.name = "bodytrack";
    suite = Workload.Parsec;
    description = "Multi-camera body tracking; image scans with a shared model";
    run;
  }
