lib/workloads/freqmine.mli: Workload
