lib/workloads/suite.ml: Blackscholes Bodytrack Canneal Dedup Facesim Ferret Fluidanimate Freqmine Libquantum List Printf Raytrace Streamcluster String Swaptions Vips Workload X264
