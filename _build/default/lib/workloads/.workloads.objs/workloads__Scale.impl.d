lib/workloads/scale.ml: Printf
