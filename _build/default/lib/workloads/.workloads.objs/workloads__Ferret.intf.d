lib/workloads/ferret.mli: Workload
