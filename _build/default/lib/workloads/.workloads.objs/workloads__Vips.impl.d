lib/workloads/vips.ml: Array Dbi Guest Scale Stdfns Workload
