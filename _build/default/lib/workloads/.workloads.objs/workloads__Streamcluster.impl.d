lib/workloads/streamcluster.ml: Dbi Guest Prng Scale Stdfns Workload
