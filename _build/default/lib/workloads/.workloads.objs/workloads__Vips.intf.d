lib/workloads/vips.mli: Workload
