lib/workloads/bodytrack.ml: Array Dbi Guest Prng Scale Stdfns Workload
