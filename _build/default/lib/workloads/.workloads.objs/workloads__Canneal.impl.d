lib/workloads/canneal.ml: Dbi Guest Prng Scale Stdfns Workload
