lib/workloads/libquantum.mli: Workload
