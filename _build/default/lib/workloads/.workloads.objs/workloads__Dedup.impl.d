lib/workloads/dedup.ml: Dbi Guest List Prng Scale Stdfns Workload
