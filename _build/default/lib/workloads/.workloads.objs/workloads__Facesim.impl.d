lib/workloads/facesim.ml: Dbi Guest Scale Stdfns Workload
