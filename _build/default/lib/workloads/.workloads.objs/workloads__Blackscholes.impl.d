lib/workloads/blackscholes.ml: Dbi Guest Prng Scale Stdfns Workload
