lib/workloads/swaptions.ml: Dbi Guest Scale Stdfns Workload
