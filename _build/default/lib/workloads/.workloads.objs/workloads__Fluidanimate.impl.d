lib/workloads/fluidanimate.ml: Dbi Guest Scale Stdfns Workload
