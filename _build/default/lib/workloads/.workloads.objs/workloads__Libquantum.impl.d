lib/workloads/libquantum.ml: Dbi Guest Prng Scale Stdfns Workload
