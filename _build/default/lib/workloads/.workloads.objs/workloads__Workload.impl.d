lib/workloads/workload.ml: Dbi Scale
