lib/workloads/scale.mli:
