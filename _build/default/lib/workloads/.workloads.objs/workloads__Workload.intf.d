lib/workloads/workload.mli: Dbi Scale
