lib/workloads/fluidanimate.mli: Workload
