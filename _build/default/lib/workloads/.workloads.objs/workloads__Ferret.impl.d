lib/workloads/ferret.ml: Dbi Guest Scale Stdfns Workload
