lib/workloads/freqmine.ml: Dbi Guest Prng Scale Stdfns Workload
