lib/workloads/bodytrack.mli: Workload
