lib/workloads/x264.ml: Dbi Guest Prng Scale Stdfns Workload
