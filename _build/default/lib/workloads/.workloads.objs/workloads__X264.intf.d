lib/workloads/x264.mli: Workload
