lib/workloads/raytrace.ml: Dbi Guest Prng Scale Stdfns Workload
