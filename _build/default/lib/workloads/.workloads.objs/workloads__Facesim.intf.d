lib/workloads/facesim.mli: Workload
