lib/workloads/stdfns.mli: Dbi Machine Prng
