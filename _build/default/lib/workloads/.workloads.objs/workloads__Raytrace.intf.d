lib/workloads/raytrace.mli: Workload
