lib/workloads/streamcluster.mli: Workload
