lib/workloads/stdfns.ml: Addr_space Dbi Guest Prng
