(** Synthetic streamcluster (PARSEC): online k-median clustering.

    Structured to reproduce the paper's critical-path findings: the
    dependency chains are many and short (gain evaluations over
    independent points), so the theoretical function-level parallelism is
    the highest of the suite (Fig 13), and the longest chain threads
    through the serial PRNG state —
    [drand48_iterate -> nrand48_r -> lrand48 -> pkmedian -> localSearch ->
    streamCluster -> main]. Data re-use is minimal (points are streamed). *)

val workload : Workload.t
