(** Synthetic vips (PARSEC): image-processing pipeline.

    The paper's data-reuse case study. The pipeline stages reproduce its
    findings:

    - [conv_gen] — 7x7 convolution; every input pixel is read across seven
      consecutive row sweeps, so its re-use lifetimes form a central peak
      with a long tail (Fig 10) and the function has the largest average
      lifetime (Fig 9). Runs in two calling contexts ([im_conv] and
      [im_sharpen]), so it appears twice in per-context rankings.
    - [imb_XYZ2Lab] — pointwise colour conversion; each pixel is re-read
      immediately, giving a peak at lifetime 0 and a short tail (Fig 11)
      and the smallest average lifetime.
    - [affine_gen] — bilinear resampling with a small overlap window.

    These three each contribute ~10% of the benchmark's unique bytes; the
    rest spreads 2–3% each over small utility stages. *)

val workload : Workload.t
