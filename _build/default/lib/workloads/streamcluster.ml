open Dbi

let dims = 16
let point_bytes = dims * 8

let dist m ~a ~b =
  Guest.call m "dist" (fun () ->
      Guest.read_range m a point_bytes;
      Guest.read_range m b point_bytes;
      Guest.flop m (dims * 3))

(* Gain evaluations are independent (each writes its own slot); only the
   PRNG state threads a serial chain through the program. *)
let pgain m ~points ~n ~center ~gain rng =
  Guest.call m "pgain" (fun () ->
      let samples = 10 in
      for _s = 1 to samples do
        Guest.iop m 4;
        dist m ~a:(points + (Prng.int rng n * point_bytes)) ~b:center
      done;
      Guest.flop m 10;
      Guest.write m gain 8)

let pkmedian m ~points ~n ~rand_state ~gains ~cost rng =
  Guest.call m "pkmedian" (fun () ->
      let candidates = 18 in
      for c = 0 to candidates - 1 do
        Guest.iop m 5;
        (* the serial chain: every center choice consumes the PRNG state *)
        let pick = Stdfns.lrand48 m ~state:rand_state rng in
        let center = points + (pick mod n * point_bytes) in
        pgain m ~points ~n ~center ~gain:(gains + (c * 8)) rng
      done;
      Guest.read_range m gains (candidates * 8);
      Guest.flop m 12;
      Guest.write m cost 8)

let local_search m ~points ~n ~rand_state ~gains ~cost rng =
  Guest.call m "localSearch" (fun () ->
      for _round = 1 to 3 do
        Guest.iop m 6;
        pkmedian m ~points ~n ~rand_state ~gains ~cost rng
      done)

let stream_cluster m ~points ~n ~rand_state ~gains ~cost ~chunks rng =
  Guest.call m "streamCluster" (fun () ->
      for _chunk = 1 to chunks do
        Guest.call m "SimStream::read" (fun () ->
            Guest.syscall m "read" ~reads:[] ~writes:[ (points, n * point_bytes) ];
            Guest.iop m (n * 2));
        local_search m ~points ~n ~rand_state ~gains ~cost rng
      done)

let run m scale =
  let n = 512 in
  let chunks = Scale.apply scale 10 in
  let rng = Prng.of_string ("streamcluster:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let points = Stdfns.operator_new m (n * point_bytes) in
      let rand_state = Stdfns.operator_new m 16 in
      let gains = Stdfns.operator_new m (18 * 8) in
      let cost = Stdfns.operator_new m 16 in
      Guest.write_range m rand_state 16;
      Guest.write m cost 8;
      stream_cluster m ~points ~n ~rand_state ~gains ~cost ~chunks rng;
      Stdfns.write_file m ~src:cost ~len:8;
      Stdfns.free m points;
      Stdfns.free m rand_state;
      Stdfns.free m cost)

let workload =
  {
    Workload.name = "streamcluster";
    suite = Workload.Parsec;
    description = "Online k-median; short independent chains, PRNG state on the critical path";
    run;
  }
