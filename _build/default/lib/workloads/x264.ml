open Dbi

let mb = 256 (* 16x16 macroblock, 1 byte per pel *)

let pixel_satd m ~cur ~ref_ =
  Guest.call m "pixel_satd_16x16" (fun () ->
      Guest.read_range m cur mb;
      Guest.read_range m ref_ mb;
      Guest.iop m 360)

let motion_search m ~cur ~ref_frame ~frame_bytes ~mv rng =
  Guest.call m "motion_search" (fun () ->
      Guest.read m mv 8;
      for _cand = 1 to 6 do
        let off = Prng.int rng (max 1 (frame_bytes - mb)) land lnot 15 in
        pixel_satd m ~cur ~ref_:(ref_frame + off);
        Guest.iop m 20
      done;
      Guest.write m mv 8)

let dct_quant m ~cur ~coeffs =
  Guest.call m "dct_quant" (fun () ->
      Guest.read_range m cur mb;
      Guest.iop m 480;
      Guest.write_range m coeffs (mb * 2))

let cavlc m ~coeffs ~bitstream ~pos =
  Guest.call m "cavlc_encode" (fun () ->
      Guest.read_range m coeffs (mb * 2);
      Guest.iop m 300;
      Guest.write_range m (bitstream + pos) (mb / 4))

let deblock m ~frame ~frame_bytes =
  Guest.call m "deblock_filter" (fun () ->
      let rec go off =
        if off < frame_bytes then begin
          Guest.read_range m (frame + off) 64;
          Guest.iop m 30;
          Guest.write_range m (frame + off) 32;
          go (off + 256)
        end
      in
      go 0)

let run m scale =
  let mbs_per_frame = 48 in
  let frame_bytes = mbs_per_frame * mb in
  let frames = Scale.apply scale 4 in
  let rng = Prng.of_string ("x264:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let cur_frame = Stdfns.operator_new m frame_bytes in
      let ref_frame = Stdfns.operator_new m frame_bytes in
      let coeffs = Stdfns.operator_new m (mb * 2) in
      let mv = Stdfns.operator_new m 16 in
      let bitstream = Stdfns.operator_new m (frames * frame_bytes) in
      let pos = ref 0 in
      Guest.write_range m ref_frame frame_bytes;
      for _f = 1 to frames do
        Guest.call m "encode_frame" (fun () ->
            Guest.syscall m "read" ~reads:[] ~writes:[ (cur_frame, frame_bytes) ];
            for b = 0 to mbs_per_frame - 1 do
              Guest.iop m 10;
              let cur = cur_frame + (b * mb) in
              motion_search m ~cur ~ref_frame ~frame_bytes ~mv rng;
              dct_quant m ~cur ~coeffs;
              cavlc m ~coeffs ~bitstream ~pos:!pos;
              pos := !pos + (mb / 4)
            done;
            deblock m ~frame:cur_frame ~frame_bytes;
            (* reconstructed frame becomes the new reference *)
            Stdfns.memcpy m ~dst:ref_frame ~src:cur_frame ~len:frame_bytes)
      done;
      Stdfns.write_file m ~src:bitstream ~len:(min !pos 4096);
      Stdfns.free m cur_frame;
      Stdfns.free m ref_frame;
      Stdfns.free m bitstream)

let workload =
  {
    Workload.name = "x264";
    suite = Workload.Parsec;
    description = "H.264 encoding; reference-frame windows re-read by motion search";
    run;
  }
