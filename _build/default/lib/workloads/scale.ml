type t =
  | Simsmall
  | Simmedium
  | Simlarge

let factor = function
  | Simsmall -> 1
  | Simmedium -> 4
  | Simlarge -> 16

let name = function
  | Simsmall -> "simsmall"
  | Simmedium -> "simmedium"
  | Simlarge -> "simlarge"

let of_string = function
  | "simsmall" -> Ok Simsmall
  | "simmedium" -> Ok Simmedium
  | "simlarge" -> Ok Simlarge
  | s -> Error (Printf.sprintf "unknown scale %S (expected simsmall|simmedium|simlarge)" s)

let all = [ Simsmall; Simmedium; Simlarge ]
let apply t base = base * factor t
