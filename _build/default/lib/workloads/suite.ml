let parsec =
  [
    Blackscholes.workload;
    Bodytrack.workload;
    Canneal.workload;
    Dedup.workload;
    Facesim.workload;
    Ferret.workload;
    Fluidanimate.workload;
    Freqmine.workload;
    Raytrace.workload;
    Streamcluster.workload;
    Swaptions.workload;
    Vips.workload;
    X264.workload;
  ]

let all = parsec @ [ Libquantum.workload ]

let find name =
  match List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) all with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %S (known: %s)" name
         (String.concat ", " (List.map (fun (w : Workload.t) -> w.Workload.name) all)))

let names () = List.map (fun (w : Workload.t) -> w.Workload.name) all
