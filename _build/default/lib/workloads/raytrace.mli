(** Synthetic raytrace (PARSEC): BVH ray tracing.

    Every ray walks the same acceleration structure, so scene lines are
    re-used thousands of times (the >10k bars of Fig 12) while per-ray
    scratch dies immediately; the scene makes it one of the two
    memory-intensive benchmarks the paper calls out. *)

val workload : Workload.t
