(** Synthetic libquantum (SPEC): quantum-computer simulation.

    Shor-style gate sequences over a sparse amplitude register, applied in
    independent 64-entry blocks: same-block dependencies chain across
    gates while different blocks are free to run in parallel, giving the
    high function-level parallelism limit the paper reports alongside
    streamcluster (Fig 13). *)

val workload : Workload.t
