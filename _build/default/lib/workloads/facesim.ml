open Dbi

let vertex_bytes = 48 (* position + velocity *)

let update_state m ~vertices ~n =
  Guest.call m "Update_Position_Based_State" (fun () ->
      for i = 0 to n - 1 do
        let v = vertices + (i * vertex_bytes) in
        Guest.read_range m v vertex_bytes;
        Guest.flop m 36;
        Guest.write_range m v 24
      done)

let add_forces m ~vertices ~n ~forces =
  Guest.call m "Add_Velocity_Independent_Forces" (fun () ->
      for i = 0 to n - 1 do
        let v = vertices + (i * vertex_bytes) in
        (* each tetrahedron couples a small neighborhood *)
        Guest.read_range m v 24;
        Guest.read_range m (vertices + ((i + 7) mod n * vertex_bytes)) 24;
        Guest.flop m 52;
        Guest.write_range m (forces + (i * 24)) 24
      done)

let newton_step m ~vertices ~n ~forces =
  Guest.call m "One_Newton_Raphson_Step" (fun () ->
      Guest.with_frame m 64 (fun fr ->
          for i = 0 to n - 1 do
            Guest.read_range m (forces + (i * 24)) 24;
            Guest.read_range m (vertices + (i * vertex_bytes) + 24) 24;
            Guest.flop m 30;
            Guest.write_range m (vertices + (i * vertex_bytes) + 24) 24;
            if i land 127 = 0 then begin
              Guest.write m fr 8;
              Stdfns.ieee754_sqrt m ~arg:fr ~res:(fr + 8);
              Guest.read m (fr + 8) 8
            end
          done))

let run m scale =
  let n = Scale.apply scale 2200 in
  let frames = 3 in
  Guest.call m "main" (fun () ->
      let vertices = Stdfns.operator_new m (n * vertex_bytes) in
      let forces = Stdfns.operator_new m (n * 24) in
      Guest.call m "Initialize_Mesh" (fun () ->
          Guest.syscall m "read" ~reads:[] ~writes:[ (vertices, n * vertex_bytes) ];
          Guest.iop m (n * 2));
      for _frame = 1 to frames do
        Guest.call m "Advance_One_Time_Step" (fun () ->
            update_state m ~vertices ~n;
            add_forces m ~vertices ~n ~forces;
            newton_step m ~vertices ~n ~forces;
            newton_step m ~vertices ~n ~forces)
      done;
      Stdfns.write_file m ~src:vertices ~len:4096;
      Stdfns.free m vertices;
      Stdfns.free m forces)

let workload =
  {
    Workload.name = "facesim";
    suite = Workload.Parsec;
    description = "Face-mesh physics; large arrays re-read every Newton iteration";
    run;
  }
