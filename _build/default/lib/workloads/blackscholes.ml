open Dbi

(* One option record: 6 input floats + padding = 48 bytes in, 8 bytes out. *)
let option_bytes = 48
let field_chars = 12
let fields = 6

let cndf m ~arg ~res =
  Guest.call m "CNDF" (fun () ->
      Guest.read m arg 8;
      Guest.with_frame m 32 (fun fr ->
          Guest.flop m 30;
          Guest.write m fr 8;
          Stdfns.ieee754_exp m ~arg:fr ~res:(fr + 8);
          Guest.read m (fr + 8) 8;
          Guest.flop m 25;
          Guest.write m res 8))

let price_option m ~opt ~out =
  Guest.call m "BlkSchlsEqEuroNoDiv" (fun () ->
      Guest.read_range m opt option_bytes;
      Guest.with_frame m 64 (fun fr ->
          Guest.flop m 20;
          Guest.write m fr 8;
          Guest.write m (fr + 8) 8;
          Stdfns.ieee754_log m ~arg:fr ~res:(fr + 16);
          Stdfns.ieee754_sqrt m ~arg:(fr + 8) ~res:(fr + 24);
          Guest.read m (fr + 16) 8;
          Guest.read m (fr + 24) 8;
          Guest.flop m 18;
          Guest.write m (fr + 32) 8;
          cndf m ~arg:(fr + 32) ~res:(fr + 40);
          cndf m ~arg:(fr + 32) ~res:(fr + 48);
          Guest.read m (fr + 40) 8;
          Guest.read m (fr + 48) 8;
          Guest.flop m 12;
          Guest.write m out 8))

(* The float variants show up from the single-precision pass the benchmark
   runs for validation. *)
let validate m ~opt ~out =
  Guest.call m "validate_option" (fun () ->
      Guest.read_range m opt 16;
      Guest.read m out 8;
      Guest.with_frame m 16 (fun fr ->
          Guest.flop m 8;
          Guest.write m fr 8;
          Stdfns.ieee754_expf m ~arg:fr ~res:(fr + 8);
          Stdfns.ieee754_logf m ~arg:(fr + 8) ~res:fr;
          Guest.read m fr 8;
          Guest.flop m 6;
          ignore (Stdfns.isnan m ~arg:out)));
  (* long-double compatibility path through the bignum multiply *)
  Guest.with_buffer m 128 (fun buf ->
      Guest.write_range m buf 64;
      Stdfns.mpn_mul m ~a:buf ~b:(buf + 32) ~res:(buf + 64))

let parse m ~text ~options ~n =
  Guest.call m "parse_options" (fun () ->
      let line_bytes = fields * field_chars in
      for i = 0 to n - 1 do
        let line = text + (i * line_bytes) in
        (* the C++ parser materializes each line as a temporary string *)
        if i land 7 = 0 then begin
          let tmp = Stdfns.operator_new m line_bytes in
          Stdfns.memcpy m ~dst:tmp ~src:line ~len:line_bytes;
          Stdfns.free m tmp
        end;
        for f = 0 to fields - 1 do
          Stdfns.strtof m ~src:(line + (f * field_chars)) ~dst:(options + (i * option_bytes) + (f * 8))
        done;
        if i land 255 = 0 then Stdfns.io_sputbackc m ~buf:line
      done)

let run m scale =
  let n = Scale.apply scale 768 in
  let rng = Prng.of_string ("blackscholes:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      (* dynamic-loader noise: the paper's worst blackscholes candidate *)
      for _ = 1 to 24 do
        Stdfns.dl_addr m
      done;
      let line_bytes = fields * field_chars in
      let text = Stdfns.operator_new m (n * line_bytes) in
      let options = Stdfns.operator_new m (n * option_bytes) in
      let prices = Stdfns.operator_new m (n * 8) in
      (* read the input file through stdio in 4 KiB slabs *)
      Guest.call m "read_input" (fun () ->
          let total = n * line_bytes in
          let rec fill off =
            if off < total then begin
              Stdfns.io_file_xsgetn m ~dst:(text + off) ~len:(min 4096 (total - off));
              fill (off + 4096)
            end
          in
          fill 0);
      parse m ~text ~options ~n;
      Guest.call m "bs_thread" (fun () ->
          for i = 0 to n - 1 do
            Guest.iop m 14;
            (* loop bookkeeping + argument marshalling between calls *)
            price_option m ~opt:(options + (i * option_bytes)) ~out:(prices + (i * 8))
          done);
      Guest.call m "check_results" (fun () ->
          for i = 0 to n - 1 do
            if Prng.int rng 4 = 0 then
              validate m ~opt:(options + (i * option_bytes)) ~out:(prices + (i * 8))
            else begin
              Guest.read m (prices + (i * 8)) 8;
              Guest.iop m 3
            end
          done);
      Stdfns.write_file m ~src:prices ~len:(min (n * 8) 4096);
      Stdfns.free m text;
      Stdfns.free m options;
      Stdfns.free m prices)

let workload =
  {
    Workload.name = "blackscholes";
    suite = Workload.Parsec;
    description = "Black-Scholes option pricing; streaming, zero-reuse, libm-heavy";
    run;
  }
