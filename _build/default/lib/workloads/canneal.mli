(** Synthetic canneal (PARSEC): simulated-annealing netlist placement.

    The annealing loop streams over the whole netlist with few operations
    per byte, so its mid-level functions can never break even and the
    selected candidates are small leaf utilities ([__mul], [memchr],
    [netlist::swap_locations], [memmove], [std::string::compare]) — hence
    the low trimmed-tree coverage the paper reports for canneal (Fig 7)
    and its Table II/III rows. *)

val workload : Workload.t
