(** Synthetic dedup (PARSEC): deduplicating compression pipeline.

    Stream → rabin anchoring → SHA-1 fingerprint (two calling contexts,
    the two [sha1_block_data_order] rows of Table II) → hashtable lookup →
    deflate ([_tr_flush_block]) → [write_file] with an [adler32] checksum.
    Touches the largest address range of the suite (every chunk is a fresh
    allocation that stays live in the dedup store), which is why the paper
    needs Sigil's FIFO memory limiter only for this benchmark. *)

val workload : Workload.t
