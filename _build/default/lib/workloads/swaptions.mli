(** Synthetic swaptions (PARSEC): HJM Monte-Carlo swaption pricing.

    Every trial writes and immediately consumes a fresh simulation-path
    matrix with about one operation per byte, so the big functions are
    communication-bound (never break even) and only small leaves get
    selected — the paper's third low-coverage benchmark in Fig 7. *)

val workload : Workload.t
