open Dbi

let avg_chunk = 1024

(* The fingerprint window rolls across chunk boundaries: each call reads
   and updates the rabin state left by the previous call, which keeps the
   anchoring pass on the program's dependence spine. *)
let rabin_segment m ~buf ~len ~rstate rng =
  Guest.call m "rabin_segget" (fun () ->
      Guest.read_range m rstate 16;
      let rec scan off =
        if off < len then begin
          Guest.read m (buf + off) (min 8 (len - off));
          Guest.iop m 6;
          scan (off + 8)
        end
      in
      scan 0;
      Guest.write_range m rstate 16;
      (* anchor position: average chunk size with jitter *)
      min len (avg_chunk - 128 + Prng.int rng 256))

(* Each chunk hashes independently: SHA1_Init resets the state, so chunks
   impose no cross-call ordering through the digest. *)
let chunk_process m ~chunk ~len ~digest =
  Guest.call m "ChunkProcess" (fun () ->
      Guest.iop m 20;
      Guest.write_range m digest 20;
      Stdfns.sha1_block_data_order m ~buf:chunk ~len ~state:digest)

let fragment_refine m ~chunk ~len ~digest =
  Guest.call m "FragmentRefine" (fun () ->
      Guest.iop m 30;
      Guest.write_range m digest 20;
      Stdfns.sha1_block_data_order m ~buf:chunk ~len ~state:digest;
      Guest.read_range m digest 20)

let compress m ~chunk ~len ~out =
  Guest.call m "Compress" (fun () ->
      Guest.iop m 12;
      Stdfns.tr_flush_block m ~src:chunk ~len ~dst:out)

let run m scale =
  let stream_bytes = Scale.apply scale (448 * 1024) in
  let rng = Prng.of_string ("dedup:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let table_entries = 4096 in
      let table = Stdfns.operator_new m (table_entries * 16) in
      let digest = Stdfns.operator_new m 32 in
      let rstate = Stdfns.operator_new m 16 in
      let checksum = Stdfns.operator_new m 16 in
      Guest.write_range m rstate 16;
      Guest.call m "Fragment" (fun () ->
          let remaining = ref stream_bytes in
          let store = ref [] in
          while !remaining > 0 do
            let slab = min (16 * 1024) !remaining in
            (* every slab is a fresh allocation: the footprint grows with
               the stream, unlike the other benchmarks *)
            let buf = Stdfns.operator_new m slab in
            Guest.syscall m "read" ~reads:[] ~writes:[ (buf, slab) ];
            store := buf :: !store;
            let off = ref 0 in
            while !off < slab do
              let len = min (slab - !off) (rabin_segment m ~buf:(buf + !off) ~len:(min 2048 (slab - !off)) ~rstate rng) in
              let len = max 256 len in
              let len = min len (slab - !off) in
              let chunk = buf + !off in
              fragment_refine m ~chunk ~len ~digest;
              let slot = Stdfns.hashtable_search m ~buckets:table ~key:digest ~probes:4 in
              let duplicate = Prng.int rng 100 < 25 in
              if duplicate then begin
                Guest.read m slot 8;
                Guest.iop m 6
              end
              else begin
                Guest.write m slot 8;
                chunk_process m ~chunk ~len ~digest;
                Guest.with_buffer m (len + 64) (fun out ->
                    let clen = compress m ~chunk ~len ~out in
                    Stdfns.adler32 m ~buf:out ~len:(max 8 clen) ~res:checksum;
                    Stdfns.write_file m ~src:out ~len:(max 8 clen))
              end;
              off := !off + len
            done;
            remaining := !remaining - slab
          done;
          (* the dedup store stays live until the end of the run *)
          Guest.call m "free_store" (fun () -> List.iter (fun buf -> Stdfns.free m buf) !store));
      Stdfns.write_file m ~src:digest ~len:20;
      Stdfns.free m table;
      Stdfns.free m digest;
      Stdfns.free m rstate;
      Stdfns.free m checksum)

let workload =
  {
    Workload.name = "dedup";
    suite = Workload.Parsec;
    description = "Deduplicating compression pipeline; largest memory footprint of the suite";
    run;
  }
