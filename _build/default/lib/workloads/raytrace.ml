open Dbi

let bvh_node_bytes = 64
let triangle_bytes = 48

let intersect_triangle m ~tri ~hit =
  Guest.call m "intersect_triangle" (fun () ->
      Guest.read_range m tri triangle_bytes;
      Guest.flop m 45;
      Guest.write m hit 8)

(* Proper binary descent from the root: every ray re-reads the top of the
   tree, so the hot ancestor lines accumulate thousands of re-uses (the
   >10k stacks of Fig 12) while the leaves stay cold. *)
let traverse m ~bvh ~bvh_nodes ~tris ~ntris ~hit rng =
  Guest.call m "BVH::traverse" (fun () ->
      let node = ref 0 in
      while !node < bvh_nodes do
        Guest.read_range m (bvh + (!node * bvh_node_bytes)) bvh_node_bytes;
        Guest.flop m 18;
        node := (2 * !node) + 1 + Prng.int rng 2
      done;
      for _leaf = 1 to 2 do
        intersect_triangle m ~tri:(tris + (Prng.int rng ntris * triangle_bytes)) ~hit
      done)

let shade m ~hit ~pixel =
  Guest.call m "shade" (fun () ->
      Guest.read m hit 8;
      Guest.with_frame m 24 (fun fr ->
          Guest.flop m 20;
          Guest.write m fr 8;
          Stdfns.ieee754_sqrt m ~arg:fr ~res:(fr + 8);
          Guest.read m (fr + 8) 8;
          Guest.flop m 8);
      Guest.write m pixel 4)

let run m scale =
  let rays = Scale.apply scale 2600 in
  let bvh_nodes = 4096 in
  let ntris = 2048 in
  let rng = Prng.of_string ("raytrace:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let bvh = Stdfns.operator_new m (bvh_nodes * bvh_node_bytes) in
      let tris = Stdfns.operator_new m (ntris * triangle_bytes) in
      let frame_buffer = Stdfns.operator_new m (rays * 4) in
      let hit = Stdfns.operator_new m 16 in
      Guest.call m "LoadScene" (fun () ->
          Guest.syscall m "read" ~reads:[]
            ~writes:[ (tris, ntris * triangle_bytes) ];
          Guest.iop m (ntris * 2));
      Guest.call m "BVH::build" (fun () ->
          for i = 0 to bvh_nodes - 1 do
            Guest.read_range m (tris + (i mod ntris * triangle_bytes)) 24;
            Guest.iop m 14;
            Guest.write_range m (bvh + (i * bvh_node_bytes)) bvh_node_bytes
          done);
      Guest.call m "renderFrame" (fun () ->
          for r = 0 to rays - 1 do
            Guest.iop m 5;
            traverse m ~bvh ~bvh_nodes ~tris ~ntris ~hit rng;
            shade m ~hit ~pixel:(frame_buffer + (r * 4))
          done);
      Stdfns.write_file m ~src:frame_buffer ~len:(min (rays * 4) 4096);
      Stdfns.free m bvh;
      Stdfns.free m tris;
      Stdfns.free m frame_buffer;
      Stdfns.free m hit)

let workload =
  {
    Workload.name = "raytrace";
    suite = Workload.Parsec;
    description = "BVH ray tracing; scene lines re-used by every ray";
    run;
  }
