open Dbi

let factors = 3
let tenors = 16
let steps = 12
let path_bytes = tenors * steps * 8

let ran_unif m ~state =
  Guest.call m "RanUnif" (fun () ->
      Guest.read_range m state 16;
      Guest.iop m 14;
      Guest.write_range m state 16)

let sim_path m ~state ~path =
  Guest.call m "HJM_SimPath_Forward_Blocking" (fun () ->
      for s = 0 to steps - 1 do
        for _f = 1 to factors do
          ran_unif m ~state
        done;
        let row = path + (s * tenors * 8) in
        Guest.read_range m state 8;
        if s > 0 then Guest.read_range m (path + ((s - 1) * tenors * 8)) (tenors * 8);
        Guest.flop m (tenors / 2);
        Guest.write_range m row (tenors * 8)
      done)

let discount_factors m ~path ~discounts =
  Guest.call m "Discount_Factors_Blocking" (fun () ->
      for s = 0 to steps - 1 do
        Guest.read_range m (path + (s * tenors * 8)) (tenors * 8);
        Guest.flop m 6;
        Guest.write_range m (discounts + (s * 8)) 8
      done)

let price_from_path m ~path ~discounts ~price =
  Guest.call m "HJM_Swaption_Blocking" (fun () ->
      Guest.read_range m discounts (steps * 8);
      Guest.read_range m path (tenors * 8);
      Guest.with_frame m 16 (fun fr ->
          Guest.flop m 40;
          Guest.write m fr 8;
          Stdfns.ieee754_exp m ~arg:fr ~res:(fr + 8);
          Guest.read m (fr + 8) 8);
      Guest.read m price 8;
      Guest.flop m 6;
      Guest.write m price 8)

let run m scale =
  let swaptions = 4 in
  let trials = Scale.apply scale 40 in
  Guest.call m "main" (fun () ->
      let states = Stdfns.operator_new m (swaptions * 16) in
      let path = Stdfns.operator_new m path_bytes in
      let discounts = Stdfns.operator_new m (steps * 8) in
      let prices = Stdfns.std_vector_ctor m ~elems:swaptions ~elem_size:8 in
      Guest.write_range m states (swaptions * 16);
      for sw = 0 to swaptions - 1 do
        Guest.call m "worker" (fun () ->
            Guest.write m (prices + (sw * 8)) 8;
            (* each swaption owns its PRNG stream, like the benchmark's
               per-trial seeds *)
            let state = states + (sw * 16) in
            for _t = 1 to trials do
              Guest.iop m 8;
              sim_path m ~state ~path;
              discount_factors m ~path ~discounts;
              price_from_path m ~path ~discounts ~price:(prices + (sw * 8));
              (* inline payoff accumulation over the whole path *)
              let rec walk s =
                if s < steps then begin
                  Guest.read_range m (path + (s * tenors * 8)) (tenors * 8);
                  Guest.iop m 30;
                  walk (s + 1)
                end
              in
              walk 0
            done)
      done;
      Stdfns.write_file m ~src:prices ~len:(swaptions * 8);
      Stdfns.free m path;
      Stdfns.free m discounts;
      Stdfns.free m states)

let workload =
  {
    Workload.name = "swaptions";
    suite = Workload.Parsec;
    description = "HJM Monte-Carlo pricing; fresh path matrices, communication-bound stages";
    run;
  }
