(** Shared "library" functions.

    The paper's candidate tables are full of libc / libm / libstdc++ /
    zlib functions ([strtof], [_ieee754_exp], [memcpy], [free],
    [sha1_block_data_order], [adler32], ...). The synthetic workloads call
    these shared guest implementations so the same function names appear
    across benchmarks with consistent computation/communication ratios.

    Conventions: [m] is the machine; addresses point into guest memory the
    caller owns; every function wraps its work in a {!Dbi.Guest.call} with
    the library function's name. *)

open Dbi

(** {2 libm — hot, compute-dense, tiny communication} *)

(** [ieee754_exp m ~arg ~res] reads an 8-byte double at [arg], burns the
    function's flop budget, writes 8 bytes at [res]. *)
val ieee754_exp : Machine.t -> arg:int -> res:int -> unit

val ieee754_log : Machine.t -> arg:int -> res:int -> unit
val ieee754_expf : Machine.t -> arg:int -> res:int -> unit
val ieee754_logf : Machine.t -> arg:int -> res:int -> unit
val ieee754_sqrt : Machine.t -> arg:int -> res:int -> unit

(** [mpn_mul m ~a ~b ~res] multi-precision multiply: reads two 32-byte
    limbs, writes 64 bytes. *)
val mpn_mul : Machine.t -> a:int -> b:int -> res:int -> unit

val mpn_lshift : Machine.t -> src:int -> dst:int -> unit
val mpn_rshift : Machine.t -> src:int -> dst:int -> unit
val isnan : Machine.t -> arg:int -> bool

(** {2 libc string/memory — communication-bound} *)

(** [strtof m ~src ~dst] parses a 12-byte decimal field into a 4-byte
    float. *)
val strtof : Machine.t -> src:int -> dst:int -> unit

val memcpy : Machine.t -> dst:int -> src:int -> len:int -> unit
val memmove : Machine.t -> dst:int -> src:int -> len:int -> unit
val memset : Machine.t -> dst:int -> len:int -> unit

(** [memchr m ~src ~len rng] scans for a byte; the match position is drawn
    from [rng] (guest-visible work is the scan itself). *)
val memchr : Machine.t -> src:int -> len:int -> Prng.t -> int

val string_compare : Machine.t -> a:int -> b:int -> len:int -> unit
val string_assign : Machine.t -> dst:int -> src:int -> len:int -> unit

(** {2 Allocation — the paper's worst accelerator candidates} *)

(** [operator_new m size] allocates via the guest allocator pseudo-logic
    (touches the free-list head and a 16-byte header) and returns the
    payload address. *)
val operator_new : Machine.t -> int -> int

val free : Machine.t -> int -> unit

(** [std_vector_ctor m ~elems ~elem_size] models [std::vector]
    construction: header writes + [operator_new] for storage; returns the
    data address. *)
val std_vector_ctor : Machine.t -> elems:int -> elem_size:int -> int

(** [std_basic_string m ~len] builds a string object, returns its buffer. *)
val std_basic_string : Machine.t -> len:int -> int

val std_locale : Machine.t -> unit
val dl_addr : Machine.t -> unit

(** {2 stdio} *)

(** [io_file_xsgetn m ~dst ~len] refills from an input stream: a read
    syscall into the stream buffer then a copy out. *)
val io_file_xsgetn : Machine.t -> dst:int -> len:int -> unit

val io_sputbackc : Machine.t -> buf:int -> unit

(** [write_file m ~src ~len] writes a buffer out through a syscall. *)
val write_file : Machine.t -> src:int -> len:int -> unit

(** {2 Checksums / compression (dedup)} *)

(** [sha1_block_data_order m ~buf ~len ~state] hashes [len] bytes into the
    20-byte state — high ops per byte. *)
val sha1_block_data_order : Machine.t -> buf:int -> len:int -> state:int -> unit

val adler32 : Machine.t -> buf:int -> len:int -> res:int -> unit

(** [tr_flush_block m ~src ~len ~dst] models zlib's block flush: reads the
    window, emits roughly half the bytes. Returns compressed length. *)
val tr_flush_block : Machine.t -> src:int -> len:int -> dst:int -> int

(** {2 Hashtables (canneal, dedup)} *)

(** [hashtable_search m ~buckets ~key ~probes] walks [probes] chain
    entries, comparing an 8-byte key each time; returns the bucket slot
    address it stopped at. *)
val hashtable_search : Machine.t -> buckets:int -> key:int -> probes:int -> int

(** {2 PRNG chain (streamcluster)}

    [lrand48] calls [nrand48_r] calls [drand48_iterate], each touching the
    shared 16-byte state — the serial dependency chain the paper finds on
    streamcluster's critical path. *)

(** [lrand48 m ~state rng] returns a host-side pseudo-random int while the
    guest walks the glibc call chain over [state]. *)
val lrand48 : Machine.t -> state:int -> Prng.t -> int
