(** Synthetic freqmine (PARSEC): FP-growth frequent-itemset mining.

    Builds an FP-tree with pointer-linked nodes (allocator traffic,
    hashtable probes) and then mines it recursively, re-reading tree nodes
    many times — a re-use-heavy, integer-dominated workload. *)

val workload : Workload.t
