open Dbi

(* A libm entry point: read the argument, run the polynomial, write the
   result. [flops] is tuned so computation dwarfs the 16 communicated
   bytes (breakeven close to 1, Table II). *)
let math_fn name flops m ~arg ~res =
  Guest.call m name (fun () ->
      Guest.read m arg 8;
      Guest.flop m flops;
      Guest.write m res 8)

let ieee754_exp = math_fn "_ieee754_exp" 120
let ieee754_log = math_fn "_ieee754_log" 140
let ieee754_expf = math_fn "_ieee754_expf" 90
let ieee754_logf = math_fn "_ieee754_logf" 100
let ieee754_sqrt = math_fn "_ieee754_sqrt" 70

let mpn_mul m ~a ~b ~res =
  Guest.call m "__mpn_mul" (fun () ->
      Guest.read_range m a 32;
      Guest.read_range m b 32;
      Guest.iop m 320;
      Guest.write_range m res 64)

(* Shifts move as much data as they compute over: poor candidates
   (Table III: __mpn_rshift 1.63, __mpn_lshift 1.21). *)
let mpn_shift name iops m ~src ~dst =
  Guest.call m name (fun () ->
      Guest.read_range m src 32;
      Guest.iop m iops;
      Guest.write_range m dst 32)

let mpn_lshift = mpn_shift "__mpn_lshift" 40
let mpn_rshift = mpn_shift "__mpn_rshift" 24

let isnan m ~arg =
  Guest.call m "isnan" (fun () ->
      Guest.read m arg 8;
      Guest.iop m 6;
      false)

let strtof m ~src ~dst =
  Guest.call m "strtof" (fun () ->
      (* one read and a handful of ops per character *)
      for i = 0 to 11 do
        Guest.read m (src + i) 1;
        Guest.iop m 12
      done;
      Guest.write m dst 4)

let memcpy m ~dst ~src ~len = Guest.call m "memcpy" (fun () -> Guest.memcpy m ~dst ~src len)

let memmove m ~dst ~src ~len =
  Guest.call m "memmove" (fun () ->
      Guest.iop m 8;
      (* overlap check *)
      Guest.memcpy m ~dst ~src len)

let memset m ~dst ~len =
  Guest.call m "memset" (fun () ->
      let rec go off =
        if off < len then begin
          Guest.write m (dst + off) (min 8 (len - off));
          Guest.iop m 1;
          go (off + 8)
        end
      in
      go 0)

let memchr m ~src ~len rng =
  Guest.call m "memchr" (fun () ->
      let pos = Prng.int rng (max 1 len) in
      let rec scan off =
        if off >= pos || off >= len then off
        else begin
          Guest.read m (src + off) (min 8 (len - off));
          Guest.iop m 10;
          scan (off + 8)
        end
      in
      scan 0)

let string_compare m ~a ~b ~len =
  Guest.call m "std::string::compare" (fun () ->
      let rec go off =
        if off < len then begin
          Guest.read m (a + off) (min 8 (len - off));
          Guest.read m (b + off) (min 8 (len - off));
          Guest.iop m 6;
          go (off + 8)
        end
      in
      go 0)

let string_assign m ~dst ~src ~len =
  Guest.call m "std::string::assign" (fun () ->
      Guest.iop m 6;
      Guest.memcpy m ~dst ~src len)

(* Allocator pseudo-logic: touch the free-list head, write a header. The
   real allocation happens outside guest accounting. *)
let freelist_head = Addr_space.heap_base (* first heap word doubles as allocator state *)

let operator_new m size =
  Guest.call m "operator new" (fun () ->
      let addr = Guest.alloc m (size + 16) in
      Guest.read m freelist_head 8;
      Guest.iop m 10;
      Guest.write_range m addr 16;
      Guest.write m freelist_head 8;
      addr + 16)

let free m addr =
  Guest.call m "free" (fun () ->
      let base = addr - 16 in
      Guest.read_range m base 16;
      Guest.iop m 14;
      Guest.write m base 8;
      Guest.write m freelist_head 8;
      Guest.free m base)

let std_vector_ctor m ~elems ~elem_size =
  Guest.call m "std::vector" (fun () ->
      let data = operator_new m (elems * elem_size) in
      Guest.iop m 12;
      Guest.write_range m (data - 16) 16;
      (* begin/end/cap pointers live in the header *)
      data)

let std_basic_string m ~len =
  Guest.call m "std::basic_string" (fun () ->
      let buf = operator_new m len in
      Guest.iop m 10;
      Guest.write_range m (buf - 16) 16;
      buf)

let std_locale m =
  Guest.call m "std::locale::locale" (fun () ->
      Guest.with_frame m 64 (fun fr ->
          Guest.read_range m fr 64;
          Guest.iop m 8;
          Guest.write_range m fr 16))

let dl_addr m =
  Guest.call m "dl_addr" (fun () ->
      Guest.with_frame m 48 (fun fr ->
          Guest.read_range m fr 48;
          Guest.iop m 12;
          Guest.write m fr 8))

let io_file_xsgetn m ~dst ~len =
  Guest.call m "_IO_file_xsgetn" (fun () ->
      Guest.with_buffer m len (fun stream_buf ->
          Guest.syscall m "read" ~reads:[] ~writes:[ (stream_buf, len) ];
          Guest.iop m 16;
          Guest.memcpy m ~dst ~src:stream_buf len))

let io_sputbackc m ~buf =
  Guest.call m "_IO_sputbackc" (fun () ->
      Guest.read m buf 8;
      Guest.iop m 6;
      Guest.write m buf 1)

let write_file m ~src ~len =
  Guest.call m "write_file" (fun () ->
      Guest.read_range m src len;
      Guest.iop m (len / 8);
      Guest.syscall m "write" ~reads:[ (src, len) ] ~writes:[])

let sha1_block_data_order m ~buf ~len ~state =
  Guest.call m "sha1_block_data_order" (fun () ->
      Guest.read_range m state 20;
      let rec go off =
        if off < len then begin
          Guest.read_range m (buf + off) (min 64 (len - off));
          (* 80 rounds of mixing per 64-byte block *)
          Guest.iop m 400;
          go (off + 64)
        end
      in
      go 0;
      Guest.write_range m state 20)

let adler32 m ~buf ~len ~res =
  Guest.call m "adler32" (fun () ->
      let rec go off =
        if off < len then begin
          Guest.read m (buf + off) (min 8 (len - off));
          Guest.iop m 4;
          go (off + 8)
        end
      in
      go 0;
      Guest.write m res 8)

let tr_flush_block m ~src ~len ~dst =
  Guest.call m "_tr_flush_block" (fun () ->
      let out = ref 0 in
      let rec go off =
        if off < len then begin
          Guest.read m (src + off) (min 8 (len - off));
          Guest.iop m 24;
          (* huffman emit: roughly every other word survives *)
          if off land 8 = 0 then begin
            Guest.write m (dst + !out) (min 8 (len - off));
            out := !out + 8
          end;
          go (off + 8)
        end
      in
      go 0;
      Guest.iop m 60;
      (* tree wrap-up *)
      !out)

let hashtable_search m ~buckets ~key ~probes =
  Guest.call m "hashtable_search" (fun () ->
      Guest.read m key 8;
      Guest.iop m 8;
      (* hash *)
      let rec walk i slot =
        if i >= probes then slot
        else begin
          Guest.read m slot 8;
          (* chain pointer *)
          Guest.read m (slot + 8) 8;
          (* stored key *)
          Guest.iop m 4;
          walk (i + 1) (slot + 16)
        end
      in
      walk 0 buckets)

let drand48_iterate m ~state =
  Guest.call m "drand48_iterate" (fun () ->
      Guest.read_range m state 16;
      (* 48-bit LCG via 64-bit multiply-add sequences *)
      Guest.iop m 26;
      Guest.write_range m state 16)

let nrand48_r m ~state =
  Guest.call m "nrand48_r" (fun () ->
      drand48_iterate m ~state;
      Guest.read m state 8;
      Guest.iop m 6)

let lrand48 m ~state rng =
  Guest.call m "lrand48" (fun () ->
      nrand48_r m ~state;
      Guest.iop m 4;
      Prng.int rng max_int)
