(** Synthetic blackscholes (PARSEC): option-pricing kernel.

    Streaming structure — parse an options file with [strtof], price every
    option once through [BlkSchlsEqEuroNoDiv] / [CNDF] and the libm entry
    points of Table II, write results out. Almost all intermediate data is
    produced and consumed exactly once (Fig 8's near-total zero-reuse bar),
    and the hot functions are compute-dense with tiny working sets
    (breakeven speedups close to 1). *)

val workload : Workload.t
