open Dbi

let width = 96 (* pixels per row *)
let pixel = 4
let row_bytes = width * pixel

(* 7x7 convolution: output row r consumes input rows r-3 .. r+3, so each
   input byte stays live for six row sweeps — the long-lifetime behaviour
   of Fig 10. The 49-coefficient mask is re-read for every row and tails
   out to the whole call. *)
let conv_gen m ~src ~dst ~rows ~ksize =
  Guest.call m "conv_gen" (fun () ->
      Guest.with_buffer m (ksize * ksize * 8) (fun mask ->
          Guest.write_range m mask (ksize * ksize * 8);
          let half = ksize / 2 in
          for r = 0 to rows - 1 do
            for q = max 0 (r - half) to min (rows - 1) (r + half) do
              Guest.read_range m (src + (q * row_bytes)) row_bytes;
              Guest.read_range m mask (ksize * 8);
              Guest.flop m (width * ksize)
            done;
            Guest.write_range m (dst + (r * row_bytes)) row_bytes
          done))

(* Pointwise colourspace conversion: each pixel re-read back-to-back
   (lifetime ~0); one pixel per row re-read at the end of the sweep for
   the short tail of Fig 11. *)
let imb_xyz2lab m ~src ~dst ~rows =
  Guest.call m "imb_XYZ2Lab" (fun () ->
      for r = 0 to rows - 1 do
        for c = 0 to width - 1 do
          let p = src + (r * row_bytes) + (c * pixel) in
          Guest.read m p pixel;
          Guest.flop m 6;
          Guest.read m p pixel;
          Guest.flop m 6;
          Guest.write m (dst + (r * row_bytes) + (c * pixel)) pixel
        done;
        (* look back a few rows for the white-point cache: the short tail
           of Fig 11 *)
        let back = min r (1 + (r mod 4)) in
        Guest.read m (src + ((r - back) * row_bytes)) pixel;
        Guest.flop m 4
      done)

(* Bilinear resample: a 2x2 neighborhood per output pixel, so input pixels
   are re-read a few times within a short window. *)
let affine_gen m ~src ~dst ~rows =
  Guest.call m "affine_gen" (fun () ->
      for r = 0 to rows - 1 do
        for c = 0 to width - 1 do
          (* 0.75x scale: source neighborhoods overlap between outputs *)
          let sr = min (rows - 1) (r * 3 / 4) in
          let sc = min (width - 2) (c * 3 / 4) in
          let p = src + (sr * row_bytes) + (sc * pixel) in
          Guest.read m p pixel;
          Guest.read m (p + pixel) pixel;
          Guest.flop m 9;
          Guest.write m (dst + (r * row_bytes) + (c * pixel)) pixel
        done
      done)

let pointwise name flops m ~src ~dst ~rows =
  Guest.call m name (fun () ->
      for r = 0 to rows - 1 do
        Guest.read_range m (src + (r * row_bytes)) row_bytes;
        Guest.flop m (width * flops / 4);
        Guest.write_range m (dst + (r * row_bytes)) row_bytes
      done)

let im_clip = pointwise "im_clip" 2
let im_lintra = pointwise "im_lintra" 3
let im_gammacorrect = pointwise "im_gammacorrect" 4

let im_extract_band m ~src ~dst ~rows =
  Guest.call m "im_extract_band" (fun () ->
      for r = 0 to rows - 1 do
        let rec go c =
          if c < width then begin
            Guest.read m (src + (r * row_bytes) + (c * pixel)) pixel;
            Guest.iop m 2;
            go (c + 4)
          end
        in
        go 0;
        Guest.write_range m (dst + (r * row_bytes / 4)) (row_bytes / 4)
      done)

let im_copy m ~src ~dst ~rows =
  Guest.call m "im_copy" (fun () ->
      for r = 0 to rows - 1 do
        Stdfns.memcpy m ~dst:(dst + (r * row_bytes)) ~src:(src + (r * row_bytes)) ~len:row_bytes
      done)

let run m scale =
  let rows = Scale.apply scale 40 in
  let image_bytes = rows * row_bytes in
  Guest.call m "main" (fun () ->
      let buf = Array.init 4 (fun _ -> Stdfns.operator_new m image_bytes) in
      Guest.call m "im_open" (fun () ->
          Guest.syscall m "read" ~reads:[] ~writes:[ (buf.(0), image_bytes) ];
          Guest.iop m 300);
      Guest.call m "im_generate" (fun () ->
          (* benchmark pipeline: resample, colourspace, sharpen, convolve *)
          affine_gen m ~src:buf.(0) ~dst:buf.(1) ~rows;
          im_clip m ~src:buf.(1) ~dst:buf.(2) ~rows;
          imb_xyz2lab m ~src:buf.(2) ~dst:buf.(3) ~rows;
          im_lintra m ~src:buf.(3) ~dst:buf.(0) ~rows;
          Guest.call m "im_sharpen" (fun () ->
              Guest.iop m 40;
              conv_gen m ~src:buf.(0) ~dst:buf.(1) ~rows ~ksize:3);
          Guest.call m "im_conv" (fun () ->
              Guest.iop m 40;
              conv_gen m ~src:buf.(1) ~dst:buf.(2) ~rows ~ksize:7);
          im_gammacorrect m ~src:buf.(2) ~dst:buf.(3) ~rows;
          im_extract_band m ~src:buf.(3) ~dst:buf.(0) ~rows;
          im_copy m ~src:buf.(3) ~dst:buf.(1) ~rows);
      Guest.call m "wbuffer_write" (fun () ->
          Stdfns.write_file m ~src:buf.(1) ~len:(min image_bytes 4096));
      Array.iter (fun b -> Stdfns.free m b) buf)

let workload =
  {
    Workload.name = "vips";
    suite = Workload.Parsec;
    description = "Image pipeline; convolution vs pointwise stages with contrasting reuse";
    run;
  }
