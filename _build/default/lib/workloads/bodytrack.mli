(** Synthetic bodytrack (PARSEC): multi-camera body tracking.

    Per frame, each camera image is initialized by [FlexImage::Set] (whose
    fill pattern lives inside its own sub-tree, so the merged box has
    almost no external communication — the paper's breakeven 1.000
    example), overwritten by the camera load, then scored by
    [ImageMeasurements::ImageErrorInside] from two different calling
    contexts. [std::vector] and [DMatrix] constructors provide the weak
    candidates of Table III. *)

val workload : Workload.t
