(** Workload descriptor and registry entry type. *)

type suite =
  | Parsec
  | Spec

type t = {
  name : string;
  suite : suite;
  description : string;
  run : Dbi.Machine.t -> Scale.t -> unit;
      (** Deterministic: equal (machine history, scale) gives equal event
          streams. *)
}

val suite_name : suite -> string
