(** Synthetic x264 (PARSEC): H.264 video encoding.

    Motion search re-reads reference-frame windows for every macroblock
    (heavy line re-use), followed by SATD scoring, DCT/quantization and
    entropy coding into a bitstream. *)

val workload : Workload.t
