open Dbi

let node_bytes = 32

let insert_transaction m ~tree ~nodes ~header ~txn ~items rng =
  Guest.call m "FPtree::insert" (fun () ->
      Guest.read_range m txn (items * 4);
      let cursor = ref tree in
      for _i = 1 to items do
        ignore (Stdfns.hashtable_search m ~buckets:header ~key:!cursor ~probes:2);
        let next = nodes + (Prng.int rng 2048 * node_bytes) in
        Guest.read_range m !cursor 16;
        Guest.iop m 10;
        Guest.write_range m next 16;
        Guest.write m (!cursor + 16) 8;
        cursor := next
      done)

let rec fp_growth m ~nodes ~header ~depth ~out rng =
  Guest.call m "FP_growth" (fun () ->
      (* walk a header chain, re-reading shared tree nodes *)
      for _link = 1 to 24 do
        let node = nodes + (Prng.int rng 2048 * node_bytes) in
        Guest.read_range m node node_bytes;
        Guest.read_range m header 32;
        Guest.iop m 18
      done;
      Guest.write_range m out 32;
      if depth > 0 then begin
        Guest.iop m 12;
        fp_growth m ~nodes ~header ~depth:(depth - 1) ~out rng;
        fp_growth m ~nodes ~header ~depth:(depth - 1) ~out rng
      end)

let run m scale =
  let transactions = Scale.apply scale 220 in
  let rng = Prng.of_string ("freqmine:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let nodes = Stdfns.operator_new m (2048 * node_bytes) in
      let header = Stdfns.operator_new m 1024 in
      let txn = Stdfns.operator_new m 256 in
      let out = Stdfns.operator_new m 64 in
      let tree = nodes in
      Guest.call m "scan1_DB" (fun () ->
          for _t = 1 to transactions do
            Guest.syscall m "read" ~reads:[] ~writes:[ (txn, 64) ];
            Guest.read_range m txn 64;
            Guest.iop m 40;
            Guest.write_range m header 64
          done);
      Guest.call m "scan2_DB" (fun () ->
          for _t = 1 to transactions do
            Guest.syscall m "read" ~reads:[] ~writes:[ (txn, 64) ];
            insert_transaction m ~tree ~nodes ~header ~txn ~items:(4 + Prng.int rng 8) rng
          done);
      fp_growth m ~nodes ~header ~depth:(7 + (Scale.factor scale / 8)) ~out rng;
      Stdfns.write_file m ~src:out ~len:32;
      Stdfns.free m nodes;
      Stdfns.free m txn)

let workload =
  {
    Workload.name = "freqmine";
    suite = Workload.Parsec;
    description = "FP-growth mining; pointer-linked tree re-read during recursive mining";
    run;
  }
