open Dbi

let entry_bytes = 16 (* basis state + amplitude *)
let block_entries = 64
let block_bytes = block_entries * entry_bytes

let gate name flops m ~block =
  Guest.call m name (fun () ->
      let rec go off =
        if off < block_bytes then begin
          Guest.read_range m (block + off) entry_bytes;
          Guest.flop m flops;
          Guest.write_range m (block + off) 8;
          go (off + entry_bytes)
        end
      in
      go 0)

let toffoli = gate "quantum_toffoli" 6
let cnot = gate "quantum_cnot" 4
let sigma_x = gate "quantum_sigma_x" 3

let hadamard m ~block =
  Guest.call m "quantum_hadamard" (fun () ->
      let rec go off =
        if off < block_bytes then begin
          Guest.read_range m (block + off) entry_bytes;
          Guest.flop m 8;
          Guest.write_range m (block + off) entry_bytes;
          go (off + entry_bytes)
        end
      in
      go 0)

let run m scale =
  let blocks = 16 in
  let gates = Scale.apply scale 30 in
  let rng = Prng.of_string ("libquantum:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let reg = Stdfns.operator_new m (blocks * block_bytes) in
      Guest.call m "quantum_new_qureg" (fun () ->
          Guest.write_range m reg (blocks * block_bytes);
          Guest.iop m 200);
      Guest.call m "quantum_exp_mod_n" (fun () ->
          for _g = 1 to gates do
            Guest.iop m 4;
            (* each gate touches every block; blocks are independent *)
            for b = 0 to blocks - 1 do
              Guest.iop m 2;
              let block = reg + (b * block_bytes) in
              match Prng.int rng 4 with
              | 0 -> toffoli m ~block
              | 1 -> cnot m ~block
              | 2 -> sigma_x m ~block
              | _ -> hadamard m ~block
            done
          done);
      Guest.call m "quantum_measure" (fun () ->
          Guest.read_range m reg (blocks * block_bytes);
          Guest.iop m (blocks * block_entries));
      Stdfns.write_file m ~src:reg ~len:256;
      Stdfns.free m reg)

let workload =
  {
    Workload.name = "libquantum";
    suite = Workload.Spec;
    description = "Sparse quantum-register simulation; independent blocks across gates";
    run;
  }
