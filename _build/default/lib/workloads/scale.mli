(** PARSEC-style input scales.

    Workload sizes multiply by {!factor}: simmedium is 4x simsmall and
    simlarge 16x, roughly the growth of the PARSEC input packs. *)

type t =
  | Simsmall
  | Simmedium
  | Simlarge

val factor : t -> int
val name : t -> string

(** [of_string s] accepts ["simsmall" | "simmedium" | "simlarge"]. *)
val of_string : string -> (t, string) result

val all : t list

(** [apply t base] is [base * factor t]. *)
val apply : t -> int -> int
