open Dbi

let particle_bytes = 64

let rebuild_grid m ~particles ~n ~grid =
  Guest.call m "RebuildGrid" (fun () ->
      for i = 0 to n - 1 do
        Guest.read_range m (particles + (i * particle_bytes)) 16;
        Guest.iop m 4;
        Guest.write m (grid + (i mod 512 * 8)) 8
      done)

let compute_densities m ~particles ~n =
  Guest.call m "ComputeDensities" (fun () ->
      for i = 0 to n - 1 do
        Guest.read_range m (particles + (i * particle_bytes)) 24;
        Guest.flop m 10;
        Guest.write m (particles + (i * particle_bytes) + 56) 8
      done)

(* The hot kernel: per particle, read a neighborhood and integrate pair
   forces. ~90% of the program's operations land here. *)
let compute_forces m ~particles ~n =
  Guest.call m "ComputeForces" (fun () ->
      for i = 0 to n - 1 do
        let p = particles + (i * particle_bytes) in
        Guest.read_range m p particle_bytes;
        for k = 1 to 3 do
          Guest.read_range m (particles + ((i + k) mod n * particle_bytes)) 32;
          Guest.flop m 60
        done;
        Guest.flop m 40;
        Guest.write_range m (p + 24) 32
      done)

let process_collisions m ~particles ~n =
  Guest.call m "ProcessCollisions" (fun () ->
      for i = 0 to n - 1 do
        Guest.read_range m (particles + (i * particle_bytes) + 24) 16;
        Guest.iop m 6;
        Guest.write m (particles + (i * particle_bytes) + 24) 8
      done)

let advance_particles m ~particles ~n =
  Guest.call m "AdvanceParticles" (fun () ->
      for i = 0 to n - 1 do
        let p = particles + (i * particle_bytes) in
        Guest.read_range m p 48;
        Guest.flop m 12;
        Guest.write_range m p 24
      done)

let run m scale =
  let n = Scale.apply scale 450 in
  let steps = 5 in
  Guest.call m "main" (fun () ->
      let particles = Stdfns.operator_new m (n * particle_bytes) in
      let grid = Stdfns.operator_new m (512 * 8) in
      Guest.call m "InitSim" (fun () ->
          Guest.syscall m "read" ~reads:[] ~writes:[ (particles, n * particle_bytes) ];
          Guest.iop m (n * 2));
      for _step = 1 to steps do
        Guest.call m "AdvanceFrame" (fun () ->
            rebuild_grid m ~particles ~n ~grid;
            compute_densities m ~particles ~n;
            compute_forces m ~particles ~n;
            process_collisions m ~particles ~n;
            advance_particles m ~particles ~n)
      done;
      Stdfns.write_file m ~src:particles ~len:4096;
      Stdfns.free m particles;
      Stdfns.free m grid)

let workload =
  {
    Workload.name = "fluidanimate";
    suite = Workload.Parsec;
    description = "SPH fluid simulation; ComputeForces dominates and serializes timesteps";
    run;
  }
