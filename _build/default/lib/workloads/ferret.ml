open Dbi

let image_bytes = 3072
let feature_bytes = 768

let segment m ~image ~mask =
  Guest.call m "image_segment" (fun () ->
      let rec scan off =
        if off < image_bytes then begin
          Guest.read_range m (image + off) (min 64 (image_bytes - off));
          Guest.iop m 5;
          Guest.write_range m (mask + (off / 4)) (min 16 ((image_bytes - off) / 4 + 1));
          scan (off + 64)
        end
      in
      scan 0)

let extract m ~image ~mask ~features =
  Guest.call m "feature_extract" (fun () ->
      let rec scan off =
        if off < image_bytes then begin
          Guest.read_range m (image + off) (min 64 (image_bytes - off));
          Guest.read_range m (mask + (off / 4)) 16;
          Guest.flop m 7;
          scan (off + 64)
        end
      in
      scan 0;
      Guest.write_range m features feature_bytes)

let lsh_query m ~index ~features ~cand =
  Guest.call m "LSH_query" (fun () ->
      Guest.read_range m features feature_bytes;
      Guest.iop m (feature_bytes / 4);
      for probe = 0 to 7 do
        ignore
          (Stdfns.hashtable_search m ~buckets:(index + (probe * 1024)) ~key:features ~probes:4)
      done;
      Guest.write_range m cand 256)

let emd_rank m ~features ~cand ~db ~result =
  Guest.call m "emd" (fun () ->
      Guest.read_range m cand 256;
      for c = 0 to 7 do
        let entry = db + (c * feature_bytes) in
        Guest.read_range m entry feature_bytes;
        Guest.read_range m features feature_bytes;
        Guest.flop m (feature_bytes / 8)
      done;
      Guest.write_range m result 64)

let run m scale =
  let queries = Scale.apply scale 48 in
  let db_entries = 64 in
  Guest.call m "main" (fun () ->
      let image = Stdfns.operator_new m image_bytes in
      let mask = Stdfns.operator_new m (image_bytes / 4 + 32) in
      let features = Stdfns.operator_new m feature_bytes in
      let cand = Stdfns.operator_new m 256 in
      let result = Stdfns.operator_new m 64 in
      let index = Stdfns.operator_new m (8 * 1024 + 64) in
      let db = Stdfns.operator_new m (db_entries * feature_bytes) in
      Guest.call m "load_database" (fun () ->
          Guest.syscall m "read" ~reads:[] ~writes:[ (db, db_entries * feature_bytes) ];
          Guest.write_range m index (8 * 1024);
          Guest.iop m 100);
      Guest.call m "pipeline" (fun () ->
          for _q = 1 to queries do
            Guest.iop m 12;
            Guest.syscall m "read" ~reads:[] ~writes:[ (image, image_bytes) ];
            (* inline image decode: hot driver code, never a candidate *)
            let rec decode off =
              if off < image_bytes then begin
                Guest.read_range m (image + off) 64;
                Guest.iop m 40;
                Guest.write_range m (image + off) 64;
                decode (off + 64)
              end
            in
            decode 0;
            segment m ~image ~mask;
            extract m ~image ~mask ~features;
            lsh_query m ~index ~features ~cand;
            emd_rank m ~features ~cand ~db ~result;
            (* inline result re-ranking between stages *)
            Guest.read_range m result 64;
            Guest.iop m 160;
            Guest.write_range m result 64;
            Stdfns.write_file m ~src:result ~len:64
          done);
      Stdfns.free m image;
      Stdfns.free m features;
      Stdfns.free m db)

let workload =
  {
    Workload.name = "ferret";
    suite = Workload.Parsec;
    description = "Image-similarity pipeline; feature vectors flow between flat stages";
    run;
  }
