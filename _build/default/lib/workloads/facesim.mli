(** Synthetic facesim (PARSEC): deformable face-mesh physics.

    Newton–Raphson iterations over large vertex/tetrahedron arrays; the
    same state is re-read every iteration from within the same call, so
    re-use is high and the working set is big (the paper singles facesim
    out, with raytrace, as memory-intensive but with constant overhead
    over native). *)

val workload : Workload.t
