(** Synthetic fluidanimate (PARSEC): SPH fluid simulation.

    [ComputeForces] does ~90% of the work and every timestep consumes the
    particle state the previous timestep produced, so the critical path is
    essentially the serial chain of [ComputeForces] calls — the paper's
    single-function critical path and the low parallelism bar of Fig 13. *)

val workload : Workload.t
