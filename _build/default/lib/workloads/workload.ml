type suite =
  | Parsec
  | Spec

type t = {
  name : string;
  suite : suite;
  description : string;
  run : Dbi.Machine.t -> Scale.t -> unit;
}

let suite_name = function
  | Parsec -> "PARSEC-2.1"
  | Spec -> "SPEC"
