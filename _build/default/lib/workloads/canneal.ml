open Dbi

let elem_bytes = 32
let name_bytes = 16

(* Fixed-point multiply used by the routing-cost estimate: Table II's
   canneal "__mul" (breakeven 1.008). *)
let mul m ~a ~b ~res =
  Guest.call m "__mul" (fun () ->
      Guest.read m a 8;
      Guest.read m b 8;
      Guest.iop m 18;
      Guest.write m res 8)

let swap_locations m ~netlist ~i ~j =
  Guest.call m "netlist::swap_locations" (fun () ->
      let a = netlist + (i * elem_bytes) and b = netlist + (j * elem_bytes) in
      Guest.read_range m a elem_bytes;
      Guest.read_range m b elem_bytes;
      Guest.iop m 70;
      Guest.write_range m a elem_bytes;
      Guest.write_range m b elem_bytes)

(* The delta-cost walk runs inline in the annealing loop (the real
   benchmark's hot code lives in the loop body, not in a nice leaf): lots
   of cold netlist bytes per move with only the small __mul helper called
   out of line. This is what keeps canneal's trimmed-tree coverage low
   (Fig 7) — the hot region is a driver, not a candidate. *)
let routing_cost_inline m ~netlist ~n ~i ~fr ~res =
  let fanin = 12 in
  for k = 0 to fanin - 1 do
    let neighbor = (i + (k * 97)) mod n in
    Guest.read_range m (netlist + (neighbor * elem_bytes)) elem_bytes;
    Guest.iop m 24;
    Guest.write m fr 8;
    Guest.write m (fr + 8) 8;
    mul m ~a:fr ~b:(fr + 8) ~res:(fr + 16)
  done;
  Guest.read m (fr + 16) 8;
  Guest.iop m 10;
  Guest.write m res 8

let accept_move m ~delta rng =
  Guest.call m "annealer_thread::accept_move" (fun () ->
      Guest.read m delta 8;
      Guest.iop m 12;
      ignore (Stdfns.isnan m ~arg:delta);
      Prng.int rng 100 < 55)

let parse_netlist m ~text ~names ~netlist ~n rng =
  Guest.call m "netlist::netlist" (fun () ->
      for i = 0 to n - 1 do
        (* iostream parsing consults the locale facets per batch *)
        if i land 63 = 0 then Stdfns.std_locale m;
        let line = text + (i * name_bytes) in
        ignore (Stdfns.memchr m ~src:line ~len:name_bytes rng);
        Stdfns.string_assign m ~dst:(names + (i * name_bytes)) ~src:line ~len:name_bytes;
        Guest.write_range m (netlist + (i * elem_bytes)) elem_bytes;
        Guest.iop m 8
      done)

let lookup_element m ~names ~n ~key rng =
  Guest.call m "netlist::get_element" (fun () ->
      let i = Prng.int rng n in
      ignore (Stdfns.hashtable_search m ~buckets:key ~key:(names + (i * name_bytes)) ~probes:3);
      Stdfns.string_compare m ~a:(names + (i * name_bytes)) ~b:key ~len:name_bytes;
      i)

let run m scale =
  let n = Scale.apply scale 1024 in
  let moves = Scale.apply scale 1400 in
  let rng = Prng.of_string ("canneal:" ^ Scale.name scale) in
  Guest.call m "main" (fun () ->
      let text = Stdfns.operator_new m (n * name_bytes) in
      let names = Stdfns.operator_new m (n * name_bytes) in
      let netlist = Stdfns.operator_new m (n * elem_bytes) in
      let key = Stdfns.std_basic_string m ~len:name_bytes in
      let scratch = Stdfns.operator_new m 128 in
      let journal = Stdfns.operator_new m (32 * 64) in
      Guest.call m "read_netlist_file" (fun () ->
          let total = n * name_bytes in
          let rec fill off =
            if off < total then begin
              Stdfns.io_file_xsgetn m ~dst:(text + off) ~len:(min 4096 (total - off));
              fill (off + 4096)
            end
          in
          fill 0);
      parse_netlist m ~text ~names ~netlist ~n rng;
      Guest.call m "annealer_thread::Run" (fun () ->
          for mv = 1 to moves do
            Guest.iop m 10;
            let i = lookup_element m ~names ~n ~key rng in
            let j = lookup_element m ~names ~n ~key rng in
            routing_cost_inline m ~netlist ~n ~i ~fr:(scratch + 64) ~res:scratch;
            routing_cost_inline m ~netlist ~n ~i:j ~fr:(scratch + 64) ~res:(scratch + 8);
            Guest.read m scratch 8;
            Guest.read m (scratch + 8) 8;
            Guest.iop m 8;
            Guest.write m (scratch + 16) 8;
            if accept_move m ~delta:(scratch + 16) rng then begin
              swap_locations m ~netlist ~i ~j;
              (* shift the freshly swapped element into the move journal
                 with memmove, Table II row *)
              Stdfns.memmove m ~dst:(journal + (mv mod 32 * 64))
                ~src:(netlist + (i * elem_bytes)) ~len:(2 * elem_bytes)
            end;
            (* temperature update uses the bignum helpers (Table III) *)
            if mv land 63 = 0 then begin
              Stdfns.mpn_lshift m ~src:scratch ~dst:(scratch + 32);
              Stdfns.mpn_rshift m ~src:(scratch + 32) ~dst:scratch
            end
          done);
      Stdfns.write_file m ~src:netlist ~len:(min (n * elem_bytes) 4096);
      Stdfns.free m text;
      Stdfns.free m scratch;
      Stdfns.free m journal)

let workload =
  {
    Workload.name = "canneal";
    suite = Workload.Parsec;
    description = "Simulated-annealing placement; cold netlist scans, utility-function leaves";
    run;
  }
