(** Synthetic ferret (PARSEC): content-based image similarity search.

    A four-stage pipeline (segment, extract, LSH index query, EMD ranking)
    where every stage hands large feature vectors to the next with only
    moderate computation per byte — a flat profile with
    communication-bound stages, giving the low candidate coverage the
    paper reports for ferret in Fig 7. *)

val workload : Workload.t
