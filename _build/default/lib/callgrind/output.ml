let events =
  [ "Ir"; "Dr"; "Dw"; "I1mr"; "D1mr"; "D1mw"; "ILmr"; "DLmr"; "DLmw"; "Bc"; "Bcm" ]

let cost_fields (c : Cost.t) =
  [ c.Cost.ir; c.Cost.dr; c.Cost.dw; c.Cost.i1mr; c.Cost.d1mr; c.Cost.d1mw; c.Cost.ilmr;
    c.Cost.dlmr; c.Cost.dlmw; c.Cost.bc; c.Cost.bcm ]

let pp_cost_line ppf line cost =
  Format.fprintf ppf "%d" line;
  List.iter (fun v -> Format.fprintf ppf " %d" v) (cost_fields cost);
  Format.fprintf ppf "@."

let fn_label machine ctx =
  if ctx = Dbi.Context.root then "<root>"
  else
    Dbi.Symbol.name
      (Dbi.Machine.symbols machine)
      (Dbi.Context.fn (Dbi.Machine.contexts machine) ctx)

(* Context-qualified function name: callgrind distinguishes contexts with
   "name'ctx<N>" suffixes; we do the same for non-first contexts of a
   function. *)
let fn_names machine =
  let contexts = Dbi.Machine.contexts machine in
  let seen = Hashtbl.create 64 in
  let names = Hashtbl.create 64 in
  Dbi.Context.iter contexts (fun ctx ->
      let base = fn_label machine ctx in
      let k = match Hashtbl.find_opt seen base with Some k -> k + 1 | None -> 0 in
      Hashtbl.replace seen base k;
      Hashtbl.replace names ctx (if k = 0 then base else Printf.sprintf "%s'ctx%d" base k));
  names

let write tool ppf =
  let machine = Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let names = fn_names machine in
  let name ctx = Hashtbl.find names ctx in
  Format.fprintf ppf "# callgrind format@.";
  Format.fprintf ppf "version: 1@.";
  Format.fprintf ppf "creator: sigil-ocaml@.";
  Format.fprintf ppf "positions: line@.";
  Format.fprintf ppf "events: %s@." (String.concat " " events);
  Format.fprintf ppf "@.";
  let rec visit ctx =
    let self = Tool.cost tool ctx in
    Format.fprintf ppf "fl=<guest>@.";
    Format.fprintf ppf "fn=%s@." (name ctx);
    pp_cost_line ppf (ctx + 1) self;
    List.iter
      (fun child ->
        let incl = Tool.inclusive_cost tool child in
        let calls = (Tool.cost tool child).Cost.calls in
        Format.fprintf ppf "cfl=<guest>@.";
        Format.fprintf ppf "cfn=%s@." (name child);
        Format.fprintf ppf "calls=%d %d@." (max 1 calls) (child + 1);
        pp_cost_line ppf (ctx + 1) incl)
      (Dbi.Context.children contexts ctx);
    Format.fprintf ppf "@.";
    List.iter visit (Dbi.Context.children contexts ctx)
  in
  visit Dbi.Context.root

let save tool path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write tool ppf;
      Format.pp_print_flush ppf ())
