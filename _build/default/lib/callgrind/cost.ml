type t = {
  mutable ir : int;
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable dr : int;
  mutable dw : int;
  mutable d1mr : int;
  mutable d1mw : int;
  mutable dlmr : int;
  mutable dlmw : int;
  mutable i1mr : int;
  mutable ilmr : int;
  mutable bc : int;
  mutable bcm : int;
  mutable calls : int;
}

let zero () =
  {
    ir = 0;
    int_ops = 0;
    fp_ops = 0;
    dr = 0;
    dw = 0;
    d1mr = 0;
    d1mw = 0;
    dlmr = 0;
    dlmw = 0;
    i1mr = 0;
    ilmr = 0;
    bc = 0;
    bcm = 0;
    calls = 0;
  }

let add ~into src =
  into.ir <- into.ir + src.ir;
  into.int_ops <- into.int_ops + src.int_ops;
  into.fp_ops <- into.fp_ops + src.fp_ops;
  into.dr <- into.dr + src.dr;
  into.dw <- into.dw + src.dw;
  into.d1mr <- into.d1mr + src.d1mr;
  into.d1mw <- into.d1mw + src.d1mw;
  into.dlmr <- into.dlmr + src.dlmr;
  into.dlmw <- into.dlmw + src.dlmw;
  into.i1mr <- into.i1mr + src.i1mr;
  into.ilmr <- into.ilmr + src.ilmr;
  into.bc <- into.bc + src.bc;
  into.bcm <- into.bcm + src.bcm;
  into.calls <- into.calls + src.calls

let copy t =
  let c = zero () in
  add ~into:c t;
  c

let l1_misses t = t.i1mr + t.d1mr + t.d1mw
let ll_misses t = t.ilmr + t.dlmr + t.dlmw
let ops t = t.int_ops + t.fp_ops
