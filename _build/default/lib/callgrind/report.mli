(** Flat-profile rendering for Callgrind runs. *)

type row = {
  ctx : Dbi.Context.id;
  path : string;
  self : Cost.t;
  inclusive : Cost.t;
  self_cycles : int;
  inclusive_cycles : int;
}

(** [rows tool] lists every context with recorded cost, sorted by
    decreasing self cycle estimate. *)
val rows : Tool.t -> row list

(** [pp ?limit ppf tool] prints a gprof-style flat profile (default top
    20 rows). *)
val pp : ?limit:int -> Format.formatter -> Tool.t -> unit
