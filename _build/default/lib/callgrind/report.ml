type row = {
  ctx : Dbi.Context.id;
  path : string;
  self : Cost.t;
  inclusive : Cost.t;
  self_cycles : int;
  inclusive_cycles : int;
}

let rows tool =
  let machine = Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let all =
    Tool.fold tool
      (fun ctx self acc ->
        let inclusive = Tool.inclusive_cost tool ctx in
        {
          ctx;
          path = Dbi.Context.path contexts symbols ctx;
          self = Cost.copy self;
          inclusive;
          self_cycles = Estimate.cycles self;
          inclusive_cycles = Estimate.cycles inclusive;
        }
        :: acc)
      []
  in
  List.sort (fun a b -> compare b.self_cycles a.self_cycles) all

let pp ?(limit = 20) ppf tool =
  let total = Estimate.cycles (Tool.total tool) in
  let rows = rows tool in
  Format.fprintf ppf "%10s %7s %12s %12s %8s  %s@." "self-cyc" "%" "incl-cyc" "Ir" "calls"
    "function";
  List.iteri
    (fun i row ->
      if i < limit then
        Format.fprintf ppf "%10d %6.2f%% %12d %12d %8d  %s@." row.self_cycles
          (100.0 *. float_of_int row.self_cycles /. float_of_int (max 1 total))
          row.inclusive_cycles row.self.Cost.ir row.self.Cost.calls row.path)
    rows
