(** The Callgrind baseline tool.

    Captures a context-keyed cost tree for the running guest: instruction
    counts (with the paper's added int/FP operation logging), on-the-fly
    cache simulation for instruction fetches and data accesses, and branch
    prediction. This is the profiler Sigil is compared against in the
    overhead experiments and the source of the software-time estimate
    [t_sw] used for partitioning. *)

type t

(** [create ?cache_config machine] builds the tool state bound to
    [machine]. *)
val create : ?cache_config:Cachesim.Hierarchy.config -> Dbi.Machine.t -> t

(** [tool t] is the callback record to attach to the machine. *)
val tool : t -> Dbi.Tool.t

(** [cost t ctx] is the self cost accumulated for context [ctx] (a zero
    record if the context never executed). The returned record is live;
    callers must not mutate it. *)
val cost : t -> Dbi.Context.id -> Cost.t

(** [inclusive_cost t ctx] sums [cost] over [ctx] and all its descendants
    in the context tree. *)
val inclusive_cost : t -> Dbi.Context.id -> Cost.t

(** [total t] is the whole-program cost (inclusive cost of the root). *)
val total : t -> Cost.t

(** [fold t f acc] folds over all contexts with a recorded cost. *)
val fold : t -> (Dbi.Context.id -> Cost.t -> 'a -> 'a) -> 'a -> 'a

val machine : t -> Dbi.Machine.t
