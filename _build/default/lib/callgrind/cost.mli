(** Per-context cost records, Callgrind vocabulary.

    One mutable record per calling context accumulates the event counts
    Callgrind reports: retired instructions, operation mix, data accesses,
    cache misses at both levels, conditional branches and mispredicts, and
    the number of calls. *)

type t = {
  mutable ir : int; (** retired instructions (ops + accesses + branches) *)
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable dr : int; (** data reads *)
  mutable dw : int; (** data writes *)
  mutable d1mr : int;
  mutable d1mw : int;
  mutable dlmr : int;
  mutable dlmw : int;
  mutable i1mr : int;
  mutable ilmr : int;
  mutable bc : int; (** conditional branches *)
  mutable bcm : int; (** mispredicted *)
  mutable calls : int;
}

val zero : unit -> t

(** [add ~into src] accumulates [src] into [into]. *)
val add : into:t -> t -> unit

val copy : t -> t

(** Total cache misses at L1 / LL (instruction + data). *)
val l1_misses : t -> int

val ll_misses : t -> int

(** Total computational operations (int + fp). *)
val ops : t -> int
