let branch_penalty = 10
let l1_penalty = 10
let ll_penalty = 100

let cycles (c : Cost.t) =
  c.ir + (branch_penalty * c.bcm) + (l1_penalty * Cost.l1_misses c)
  + (ll_penalty * Cost.ll_misses c)

let seconds ?(ghz = 1.0) c = float_of_int (cycles c) /. (ghz *. 1e9)
