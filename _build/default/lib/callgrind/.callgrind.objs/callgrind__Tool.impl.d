lib/callgrind/tool.ml: Array Cachesim Cost Dbi List
