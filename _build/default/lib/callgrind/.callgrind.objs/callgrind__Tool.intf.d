lib/callgrind/tool.mli: Cachesim Cost Dbi
