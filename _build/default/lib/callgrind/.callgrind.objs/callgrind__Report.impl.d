lib/callgrind/report.ml: Cost Dbi Estimate Format List Tool
