lib/callgrind/report.mli: Cost Dbi Format Tool
