lib/callgrind/output.mli: Format Tool
