lib/callgrind/output.ml: Cost Dbi Format Fun Hashtbl List Printf String Tool
