lib/callgrind/cost.ml:
