lib/callgrind/estimate.ml: Cost
