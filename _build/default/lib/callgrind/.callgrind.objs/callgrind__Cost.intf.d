lib/callgrind/cost.mli:
