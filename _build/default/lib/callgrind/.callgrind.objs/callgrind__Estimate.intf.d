lib/callgrind/estimate.mli: Cost
