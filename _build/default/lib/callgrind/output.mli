(** Callgrind output-file writer.

    Serializes a finished run in the callgrind profile format (the format
    callgrind_annotate and KCachegrind read): an [events:] header naming
    the counters, one [fn=] block per calling context with its self cost
    line, and [cfn=]/[calls=] records for every call edge with the
    callee's inclusive cost. Positions are synthetic (one "line" per
    context) since guests have no source files. *)

(** The event counters written, in column order. *)
val events : string list

(** [write tool ppf] emits the profile. *)
val write : Tool.t -> Format.formatter -> unit

(** [save tool path] writes to a file. *)
val save : Tool.t -> string -> unit
