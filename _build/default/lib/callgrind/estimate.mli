(** Cycle estimation.

    Matches the calculation Callgrind uses to estimate cycle count (and
    which the paper reuses for the software run time of a function):

    {v CEst = Ir + 10*Bm + 10*L1m + 100*LLm v}

    i.e. one cycle per retired instruction, 10 per branch mispredict, 10 per
    first-level cache miss, 100 per last-level miss. *)

val branch_penalty : int
val l1_penalty : int
val ll_penalty : int

(** [cycles cost] is the estimated cycle count for a cost record. *)
val cycles : Cost.t -> int

(** [seconds ?ghz cost] converts to seconds at a nominal clock
    (default 1 GHz). *)
val seconds : ?ghz:float -> Cost.t -> float
