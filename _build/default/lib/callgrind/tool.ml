type t = {
  machine : Dbi.Machine.t;
  hierarchy : Cachesim.Hierarchy.t;
  predictor : Cachesim.Branch.t;
  mutable costs : Cost.t option array; (* indexed by context id *)
  mutable code_cursor : int array; (* per function: next fetch offset *)
}

let create ?(cache_config = Cachesim.Hierarchy.default) machine =
  {
    machine;
    hierarchy = Cachesim.Hierarchy.create cache_config;
    predictor = Cachesim.Branch.create ();
    costs = Array.make 256 None;
    code_cursor = Array.make 256 0;
  }

let ensure_cost t ctx =
  let len = Array.length t.costs in
  if ctx >= len then begin
    let grown = Array.make (max (2 * len) (ctx + 1)) None in
    Array.blit t.costs 0 grown 0 len;
    t.costs <- grown
  end;
  match t.costs.(ctx) with
  | Some c -> c
  | None ->
    let c = Cost.zero () in
    t.costs.(ctx) <- Some c;
    c

(* Instruction fetches walk each function's synthetic code page cyclically,
   so I-cache behaviour scales with how many distinct functions are hot. *)
let fetch_addr t fn =
  let len = Array.length t.code_cursor in
  if fn >= len then begin
    let grown = Array.make (max (2 * len) (fn + 1)) 0 in
    Array.blit t.code_cursor 0 grown 0 len;
    t.code_cursor <- grown
  end;
  let off = t.code_cursor.(fn) in
  t.code_cursor.(fn) <- (off + 4) land (Dbi.Symbol.code_page_size - 1);
  Dbi.Symbol.code_base (Dbi.Machine.symbols t.machine) fn + off

(* Code executed before main (process startup) fetches from a synthetic
   page below the function code region. *)
let startup_code_page = 0x3FFF_FFFF_F000

let ctx_fn t ctx =
  if ctx = Dbi.Context.root then -1 else Dbi.Context.fn (Dbi.Machine.contexts t.machine) ctx

let fetch_addr t fn = if fn < 0 then startup_code_page else fetch_addr t fn

let fetch_one t ctx =
  let before = Cachesim.Hierarchy.counts t.hierarchy in
  Cachesim.Hierarchy.fetch t.hierarchy (fetch_addr t (ctx_fn t ctx)) 4;
  let after = Cachesim.Hierarchy.counts t.hierarchy in
  let c = ensure_cost t ctx in
  c.ir <- c.ir + 1;
  c.i1mr <- c.i1mr + (after.i1mr - before.i1mr);
  c.ilmr <- c.ilmr + (after.ilmr - before.ilmr)

let tool t : Dbi.Tool.t =
  {
    name = "callgrind";
    on_enter =
      (fun ~ctx ~fn:_ ~call:_ ->
        let c = ensure_cost t ctx in
        c.calls <- c.calls + 1);
    on_leave = (fun ~ctx:_ ~fn:_ -> ());
    on_read =
      (fun ~ctx ~addr ~size ->
        fetch_one t ctx;
        let before = Cachesim.Hierarchy.counts t.hierarchy in
        Cachesim.Hierarchy.data_read t.hierarchy addr size;
        let after = Cachesim.Hierarchy.counts t.hierarchy in
        let c = ensure_cost t ctx in
        c.dr <- c.dr + 1;
        c.d1mr <- c.d1mr + (after.d1mr - before.d1mr);
        c.dlmr <- c.dlmr + (after.dlmr - before.dlmr));
    on_write =
      (fun ~ctx ~addr ~size ->
        fetch_one t ctx;
        let before = Cachesim.Hierarchy.counts t.hierarchy in
        Cachesim.Hierarchy.data_write t.hierarchy addr size;
        let after = Cachesim.Hierarchy.counts t.hierarchy in
        let c = ensure_cost t ctx in
        c.dw <- c.dw + 1;
        c.d1mw <- c.d1mw + (after.d1mw - before.d1mw);
        c.dlmw <- c.dlmw + (after.dlmw - before.dlmw));
    on_op =
      (fun ~ctx ~kind ~count ->
        for _ = 1 to count do
          fetch_one t ctx
        done;
        let c = ensure_cost t ctx in
        match kind with
        | Dbi.Event.Int_op -> c.int_ops <- c.int_ops + count
        | Dbi.Event.Fp_op -> c.fp_ops <- c.fp_ops + count);
    on_branch =
      (fun ~ctx ~taken ->
        fetch_one t ctx;
        let site =
          match ctx_fn t ctx with
          | -1 -> startup_code_page
          | fn -> Dbi.Symbol.code_base (Dbi.Machine.symbols t.machine) fn
        in
        let correct = Cachesim.Branch.predict t.predictor site taken in
        let c = ensure_cost t ctx in
        c.bc <- c.bc + 1;
        if not correct then c.bcm <- c.bcm + 1);
    on_finish = (fun () -> ());
  }

let zero_shared = Cost.zero ()

let cost t ctx =
  if ctx < Array.length t.costs then
    match t.costs.(ctx) with
    | Some c -> c
    | None -> zero_shared
  else zero_shared

let inclusive_cost t ctx =
  let contexts = Dbi.Machine.contexts t.machine in
  let acc = Cost.zero () in
  let rec visit ctx =
    Cost.add ~into:acc (cost t ctx);
    List.iter visit (Dbi.Context.children contexts ctx)
  in
  visit ctx;
  acc

let total t = inclusive_cost t Dbi.Context.root

let fold t f acc =
  let result = ref acc in
  Array.iteri
    (fun ctx cost ->
      match cost with
      | Some c -> result := f ctx c !result
      | None -> ())
    t.costs;
  !result

let machine t = t.machine
