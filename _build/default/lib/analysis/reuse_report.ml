type byte_breakdown = {
  zero : float;
  one_to_nine : float;
  over_nine : float;
  elements : int;
}

type fn_row = {
  ctx : Dbi.Context.id;
  label : string;
  avg_lifetime : float;
  reuse_reads : int;
  unique_bytes : int;
  unique_share : float;
}

let byte_breakdown tool =
  let bins = Sigil.Reuse.version_bins (Sigil.Tool.reuse tool) in
  let total = bins.Sigil.Reuse.zero + bins.Sigil.Reuse.low + bins.Sigil.Reuse.high in
  if total = 0 then { zero = 0.; one_to_nine = 0.; over_nine = 0.; elements = 0 }
  else
    let f n = float_of_int n /. float_of_int total in
    {
      zero = f bins.Sigil.Reuse.zero;
      one_to_nine = f bins.Sigil.Reuse.low;
      over_nine = f bins.Sigil.Reuse.high;
      elements = total;
    }

let fn_name tool ctx =
  let machine = Sigil.Tool.machine tool in
  if ctx = Dbi.Context.root then "<input>"
  else
    Dbi.Symbol.name (Dbi.Machine.symbols machine)
      (Dbi.Context.fn (Dbi.Machine.contexts machine) ctx)

let top_reusers ?(n = 10) tool =
  let reuse = Sigil.Tool.reuse tool in
  let profile = Sigil.Tool.profile tool in
  let unique_total =
    let u, _ = Sigil.Profile.totals profile in
    max 1 u
  in
  let rows =
    List.filter_map
      (fun ctx ->
        let r = Sigil.Reuse.fn_reuse reuse ctx in
        if r.Sigil.Reuse.reuse_reads = 0 then None
        else
          let s = Sigil.Profile.stats profile ctx in
          let unique_bytes = s.Sigil.Profile.input_unique + s.Sigil.Profile.local_unique in
          Some
            {
              ctx;
              label = fn_name tool ctx;
              avg_lifetime = Sigil.Reuse.avg_lifetime reuse ctx;
              reuse_reads = r.Sigil.Reuse.reuse_reads;
              unique_bytes;
              unique_share = float_of_int unique_bytes /. float_of_int unique_total;
            })
      (Sigil.Reuse.contexts reuse)
  in
  let rows = List.sort (fun a b -> compare b.reuse_reads a.reuse_reads) rows in
  let rows =
    let seen = Hashtbl.create 16 in
    List.map
      (fun row ->
        let k =
          match Hashtbl.find_opt seen row.label with
          | Some k -> k + 1
          | None -> 0
        in
        Hashtbl.replace seen row.label k;
        if k = 0 then row
        else { row with label = Printf.sprintf "%s(%d)" row.label k })
      rows
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take n rows

let find_contexts tool name =
  let machine = Sigil.Tool.machine tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let acc = ref [] in
  Dbi.Context.iter contexts (fun ctx ->
      if ctx <> Dbi.Context.root && Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx) = name
      then acc := ctx :: !acc);
  List.rev !acc

let lifetime_histogram_dominant tool name =
  let reuse = Sigil.Tool.reuse tool in
  let best =
    List.fold_left
      (fun acc ctx ->
        let r = Sigil.Reuse.fn_reuse reuse ctx in
        match acc with
        | Some (_, best_reads) when best_reads >= r.Sigil.Reuse.reuse_reads -> acc
        | Some _ | None -> Some (ctx, r.Sigil.Reuse.reuse_reads))
      None (find_contexts tool name)
  in
  match best with
  | Some (ctx, _) -> Sigil.Reuse.histogram reuse ctx
  | None -> []

let lifetime_histogram tool name =
  let reuse = Sigil.Tool.reuse tool in
  let merged = Hashtbl.create 64 in
  List.iter
    (fun ctx ->
      List.iter
        (fun (bin, count) ->
          match Hashtbl.find_opt merged bin with
          | Some r -> r := !r + count
          | None -> Hashtbl.add merged bin (ref count))
        (Sigil.Reuse.histogram reuse ctx))
    (find_contexts tool name);
  List.sort compare (Hashtbl.fold (fun bin r acc -> (bin, !r) :: acc) merged [])
