type candidate = {
  ctx : Dbi.Context.id;
  name : string;
  path : string;
  breakeven : float;
  coverage : float;
  incl_cycles : int;
  input_unique : int;
  output_unique : int;
  incl_ops : int;
}

type trimmed = {
  selected : candidate list;
  coverage : float;
}

let default_bus_bytes_per_cycle = 8.0

let breakeven ?(bus_bytes_per_cycle = default_bus_bytes_per_cycle) cdfg ctx =
  let n = Cdfg.node cdfg ctx in
  let t_sw = float_of_int n.Cdfg.incl_cycles in
  let t_comm =
    float_of_int (n.Cdfg.incl_input_unique + n.Cdfg.incl_output_unique) /. bus_bytes_per_cycle
  in
  if t_sw <= 0.0 || t_comm >= t_sw then infinity else t_sw /. (t_sw -. t_comm)

let is_syscall name = Dbi.Machine.is_syscall_fn name

let candidate_of ?(bus_bytes_per_cycle = default_bus_bytes_per_cycle) cdfg total ctx =
  let n = Cdfg.node cdfg ctx in
  {
    ctx;
    name = n.Cdfg.name;
    path = n.Cdfg.path;
    breakeven = breakeven ~bus_bytes_per_cycle cdfg ctx;
    coverage = float_of_int n.Cdfg.incl_cycles /. float_of_int (max 1 total);
    incl_cycles = n.Cdfg.incl_cycles;
    input_unique = n.Cdfg.incl_input_unique;
    output_unique = n.Cdfg.incl_output_unique;
    incl_ops = n.Cdfg.incl_ops;
  }

(* A node merges when no strictly deeper cut beats its own breakeven:
   best_inside(v) = min over descendants d of breakeven(d). Merging at the
   highest such node maximizes coverage (Amdahl) while keeping the least
   breakeven at the bottom of each branch.

   "Useful functions" constraint: a merged box must be a plausible
   accelerator, not the whole program wearing a box. A non-leaf node
   merges only when its sub-tree is at most [max_coverage] of the program;
   leaves (single hot functions like fluidanimate's ComputeForces) are
   exempt. Without this, top-level drivers whose I/O happens inside their
   own sub-tree always win with breakeven 1.0. *)
let trim ?(bus_bytes_per_cycle = default_bus_bytes_per_cycle) ?(max_coverage = 0.5) cdfg =
  let total = Cdfg.total_cycles cdfg in
  let selected = ref [] in
  let never_merge n = n.Cdfg.name = "<root>" || n.Cdfg.name = "main" || is_syscall n.Cdfg.name in
  let box_allowed n =
    n.Cdfg.children = []
    || float_of_int n.Cdfg.incl_cycles <= max_coverage *. float_of_int (max 1 total)
  in
  (* returns best breakeven available in v's subtree *)
  let rec visit ctx ~selecting =
    let n = Cdfg.node cdfg ctx in
    let own =
      if never_merge n || not (box_allowed n) then infinity
      else breakeven ~bus_bytes_per_cycle cdfg ctx
    in
    let best_inside =
      List.fold_left
        (fun acc child -> min acc (subtree_best child))
        infinity n.Cdfg.children
    in
    if selecting then
      if (not (never_merge n)) && own <= best_inside && own < infinity then
        selected := candidate_of ~bus_bytes_per_cycle cdfg total ctx :: !selected
      else
        List.iter (fun child -> ignore (visit child ~selecting:true)) n.Cdfg.children;
    min own best_inside
  and subtree_best ctx = visit ctx ~selecting:false in
  ignore (visit Dbi.Context.root ~selecting:true);
  let selected = List.rev !selected in
  let coverage =
    List.fold_left (fun acc (c : candidate) -> acc +. c.coverage) 0.0 selected
  in
  { selected; coverage }

let rank trimmed =
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt by_name c.name with
      | Some best when best.breakeven <= c.breakeven -> ()
      | Some _ | None -> Hashtbl.replace by_name c.name c)
    trimmed.selected;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) by_name [] in
  List.sort
    (fun a b ->
      match compare a.breakeven b.breakeven with
      | 0 -> compare a.name b.name
      | c -> c)
    all

let top n ranked =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take n ranked

let bottom n ranked = top n (List.rev ranked)
