type row = {
  name : string;
  contexts : int;
  calls : int;
  int_ops : int;
  fp_ops : int;
  input_unique : int;
  input_total : int;
  local_unique : int;
  local_total : int;
  written : int;
}

let fn_of tool ctx =
  let machine = Sigil.Tool.machine tool in
  Dbi.Symbol.name
    (Dbi.Machine.symbols machine)
    (Dbi.Context.fn (Dbi.Machine.contexts machine) ctx)

let rows tool =
  let profile = Sigil.Tool.profile tool in
  let table : (string, row) Hashtbl.t = Hashtbl.create 64 in
  let merge name f =
    let cur =
      match Hashtbl.find_opt table name with
      | Some r -> r
      | None ->
        {
          name;
          contexts = 0;
          calls = 0;
          int_ops = 0;
          fp_ops = 0;
          input_unique = 0;
          input_total = 0;
          local_unique = 0;
          local_total = 0;
          written = 0;
        }
    in
    Hashtbl.replace table name (f cur)
  in
  List.iter
    (fun ctx ->
      if ctx <> Dbi.Context.root then begin
        let s = Sigil.Profile.stats profile ctx in
        merge (fn_of tool ctx) (fun r ->
            {
              r with
              contexts = r.contexts + 1;
              calls = r.calls + s.Sigil.Profile.calls;
              int_ops = r.int_ops + s.Sigil.Profile.int_ops;
              fp_ops = r.fp_ops + s.Sigil.Profile.fp_ops;
              local_unique = r.local_unique + s.Sigil.Profile.local_unique;
              local_total =
                r.local_total + s.Sigil.Profile.local_unique + s.Sigil.Profile.local_nonunique;
              written = r.written + s.Sigil.Profile.written;
            })
      end)
    (Sigil.Profile.contexts profile);
  (* edges: same-function pairs collapse into local traffic; the rest is
     input for the consumer's function *)
  List.iter
    (fun (e : Sigil.Profile.edge) ->
      if e.Sigil.Profile.dst <> Dbi.Context.root then begin
        let dst_name = fn_of tool e.Sigil.Profile.dst in
        let src_name =
          if e.Sigil.Profile.src = Dbi.Context.root then "<input>"
          else fn_of tool e.Sigil.Profile.src
        in
        if src_name = dst_name then
          merge dst_name (fun r ->
              {
                r with
                local_unique = r.local_unique + e.Sigil.Profile.unique_bytes;
                local_total = r.local_total + e.Sigil.Profile.bytes;
              })
        else
          merge dst_name (fun r ->
              {
                r with
                input_unique = r.input_unique + e.Sigil.Profile.unique_bytes;
                input_total = r.input_total + e.Sigil.Profile.bytes;
              })
      end)
    (Sigil.Profile.edges profile);
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) table [] in
  List.sort (fun a b -> compare (b.int_ops + b.fp_ops) (a.int_ops + a.fp_ops)) all

let pp ?(limit = 25) ppf tool =
  Format.fprintf ppf "%10s %8s %5s %11s %11s %10s  %s@." "ops" "calls" "ctxs" "in-uniq/tot"
    "local-u/tot" "written" "function";
  List.iteri
    (fun i row ->
      if i < limit then
        Format.fprintf ppf "%10d %8d %5d %5d/%-5d %5d/%-5d %10d  %s@."
          (row.int_ops + row.fp_ops) row.calls row.contexts row.input_unique row.input_total
          row.local_unique row.local_total row.written row.name)
    (rows tool)

let calltree ?(max_depth = 6) ppf tool =
  let machine = Sigil.Tool.machine tool in
  let profile = Sigil.Tool.profile tool in
  let contexts = Dbi.Machine.contexts machine in
  let incl_ops = Hashtbl.create 64 in
  let rec fill ctx =
    let s = Sigil.Profile.stats profile ctx in
    let own = s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops in
    let kids = Dbi.Context.children contexts ctx in
    let total = List.fold_left (fun acc k -> acc + fill k) own kids in
    Hashtbl.replace incl_ops ctx total;
    total
  in
  ignore (fill Dbi.Context.root);
  let rec walk depth ctx =
    if depth <= max_depth then begin
      let s = Sigil.Profile.stats profile ctx in
      let name = if ctx = Dbi.Context.root then "<root>" else fn_of tool ctx in
      let _, out_unique = Sigil.Profile.output_bytes profile ctx in
      Format.fprintf ppf "%s%s  incl-ops=%d calls=%d in-uniq=%d out-uniq=%d@."
        (String.make (2 * depth) ' ')
        name
        (Hashtbl.find incl_ops ctx)
        s.Sigil.Profile.calls s.Sigil.Profile.input_unique out_unique;
      List.iter (walk (depth + 1)) (Dbi.Context.children contexts ctx)
    end
  in
  walk 0 Dbi.Context.root
