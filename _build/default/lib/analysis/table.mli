(** ASCII tables and bar charts shared by the binaries, examples and the
    benchmark harness. Pure string formatting; no knowledge of the
    profiling types. *)

(** [render ~headers rows] pads every column to its widest cell and returns
    the table with a separator under the header. Rows may be ragged; short
    rows are padded with empty cells. *)
val render : headers:string list -> string list list -> string

(** [bar_chart ?width ?fmt items] renders one horizontal bar per
    [(label, value)], scaled so the largest value spans [width] (default
    50) characters. Negative values are clamped to 0. [fmt] formats the
    numeric suffix (default ["%.2f"]). *)
val bar_chart : ?width:int -> ?fmt:(float -> string) -> (string * float) list -> string

(** [stacked_bar ?width segments] renders one 100%-stacked bar from
    fractions (label, fraction); fractions are normalized if they do not
    sum to 1. Each segment uses the next fill character from
    [['#'; '='; '-'; '.'; ' ']]. *)
val stacked_bar : ?width:int -> (string * float) list -> string

(** [section title] renders an underlined section heading. *)
val section : string -> string
