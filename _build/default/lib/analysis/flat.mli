(** Context-insensitive (gprof-style) views.

    Sigil keeps separate accounting per calling context; sometimes a
    developer wants the classic per-function rollup instead. This module
    merges contexts by function name — communication between two contexts
    of the same function collapses into local traffic, mirroring what the
    per-function numbers would have been had Sigil not separated
    contexts. *)

type row = {
  name : string;
  contexts : int; (** how many calling contexts merged into this row *)
  calls : int;
  int_ops : int;
  fp_ops : int;
  input_unique : int;
  input_total : int;
  local_unique : int;
  local_total : int;
  written : int;
}

(** [rows tool] is one row per function name, sorted by decreasing
    operation count. The root context is excluded. Edges between contexts
    of the same function are re-classified as local traffic. *)
val rows : Sigil.Tool.t -> row list

(** [pp ?limit ppf tool] prints the flat profile (default top 25). *)
val pp : ?limit:int -> Format.formatter -> Sigil.Tool.t -> unit

(** [calltree ?max_depth ppf tool] prints the calling-context tree with
    per-node inclusive operation counts and unique input/output bytes — a
    text rendering of the paper's Fig 1. *)
val calltree : ?max_depth:int -> Format.formatter -> Sigil.Tool.t -> unit
