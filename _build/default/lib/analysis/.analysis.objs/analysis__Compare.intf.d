lib/analysis/compare.mli: Format Sigil
