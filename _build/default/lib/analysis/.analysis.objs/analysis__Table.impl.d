lib/analysis/table.ml: Array Buffer Float List Printf String
