lib/analysis/partition.ml: Cdfg Dbi Hashtbl List
