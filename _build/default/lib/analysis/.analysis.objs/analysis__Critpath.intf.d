lib/analysis/critpath.mli: Dbi Sigil
