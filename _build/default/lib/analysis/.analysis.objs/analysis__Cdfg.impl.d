lib/analysis/cdfg.ml: Array Callgrind Dbi Hashtbl List Sigil
