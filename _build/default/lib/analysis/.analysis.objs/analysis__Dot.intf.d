lib/analysis/dot.mli: Critpath Format Sigil
