lib/analysis/reuse_report.mli: Dbi Sigil
