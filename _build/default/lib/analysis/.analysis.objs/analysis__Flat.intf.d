lib/analysis/flat.mli: Format Sigil
