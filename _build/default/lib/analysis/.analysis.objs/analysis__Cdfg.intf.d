lib/analysis/cdfg.mli: Callgrind Dbi Sigil
