lib/analysis/critpath.ml: Array Dbi Hashtbl List Sigil
