lib/analysis/compare.ml: Format Hashtbl List Option Sigil
