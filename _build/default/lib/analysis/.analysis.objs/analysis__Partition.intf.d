lib/analysis/partition.mli: Cdfg Dbi
