lib/analysis/table.mli:
