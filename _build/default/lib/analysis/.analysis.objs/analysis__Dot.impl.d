lib/analysis/dot.ml: Buffer Critpath Dbi Format Fun Hashtbl List Sigil String
