lib/analysis/flat.ml: Dbi Format Hashtbl List Sigil String
