lib/analysis/reuse_report.ml: Dbi Hashtbl List Printf Sigil
