(** Control data flow graph: the calltree with dependency edges (§II-C1).

    Nodes are calling contexts; call edges come from the context tree and
    data-dependency edges from the Sigil profile, weighted by the bytes the
    receiving function needs. The graph supports the paper's node-merging
    operation: for any node, the {e inclusive} cost of the box drawn around
    the node and its entire sub-tree — dependency edges inside the box are
    discarded, edges crossing the box accumulate into the node's
    communication cost, and computation sums over the sub-tree.

    When a Callgrind cost table from the same run is supplied, each node
    also carries the estimated software cycles used as [t_sw] by
    partitioning. *)

type node = {
  ctx : Dbi.Context.id;
  name : string; (** function name (no path) *)
  path : string;
  children : Dbi.Context.id list;
  self_ops : int;
  self_calls : int;
  incl_ops : int; (** sub-tree operations *)
  incl_cycles : int; (** sub-tree estimated cycles (= incl_ops when no costs) *)
  incl_input_unique : int; (** unique bytes entering the sub-tree box *)
  incl_input_total : int;
  incl_output_unique : int; (** unique bytes leaving the box *)
  incl_output_total : int;
}

type t

(** [build ?callgrind sigil_tool] constructs the graph from a finished
    Sigil run. [callgrind] must come from the same machine run (tool
    attached alongside Sigil) so context ids agree. *)
val build : ?callgrind:Callgrind.Tool.t -> Sigil.Tool.t -> t

val node : t -> Dbi.Context.id -> node

(** Contexts present in the graph, preorder from the root. *)
val contexts : t -> Dbi.Context.id list

(** The root node (whole program). *)
val root : t -> node

(** [total_cycles t] is the whole-program estimated cycle count. *)
val total_cycles : t -> int

(** [is_ancestor t a b] holds when [a] is [b] or an ancestor of [b]. *)
val is_ancestor : t -> Dbi.Context.id -> Dbi.Context.id -> bool
