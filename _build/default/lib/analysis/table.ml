let render ~headers rows =
  let ncols = List.fold_left (fun acc row -> max acc (List.length row)) (List.length headers) rows in
  let pad_row row =
    let len = List.length row in
    if len < ncols then row @ List.init (ncols - len) (fun _ -> "") else row
  in
  let headers = pad_row headers in
  let rows = List.map pad_row rows in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit headers;
  let rule = List.init ncols (fun i -> String.make widths.(i) '-') in
  emit rule;
  List.iter emit rows;
  Buffer.contents buf

let bar_chart ?(width = 50) ?(fmt = Printf.sprintf "%.2f") items =
  let max_v = List.fold_left (fun acc (_, v) -> max acc v) 0.0 items in
  let max_label =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 items
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (label, v) ->
      let v = max 0.0 v in
      let n =
        if max_v <= 0.0 then 0
        else int_of_float (Float.round (v /. max_v *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%-*s| %s\n" max_label label width (String.make n '#') (fmt v)))
    items;
  Buffer.contents buf

let stacked_bar ?(width = 60) segments =
  let fills = [| '#'; '='; '-'; '.'; ' ' |] in
  let total = List.fold_left (fun acc (_, f) -> acc +. max 0.0 f) 0.0 segments in
  let buf = Buffer.create 256 in
  if total > 0.0 then begin
    Buffer.add_char buf '[';
    let used = ref 0 in
    let n = List.length segments in
    List.iteri
      (fun i (_, f) ->
        let cells =
          if i = n - 1 then width - !used
          else int_of_float (Float.round (max 0.0 f /. total *. float_of_int width))
        in
        let cells = max 0 (min cells (width - !used)) in
        Buffer.add_string buf (String.make cells fills.(i mod Array.length fills));
        used := !used + cells)
      segments;
    Buffer.add_char buf ']';
    Buffer.add_string buf "  ";
    List.iteri
      (fun i (label, f) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "%c=%s %.1f%%" fills.(i mod Array.length fills) label (100.0 *. f /. total)))
      segments
  end
  else Buffer.add_string buf "(no data)";
  Buffer.add_char buf '\n';
  Buffer.contents buf

let section title =
  Printf.sprintf "\n%s\n%s\n" title (String.make (String.length title) '=')
