let escape name =
  let buf = Buffer.create (String.length name + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '_'
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

let fn_label tool ctx =
  let machine = Sigil.Tool.machine tool in
  if ctx = Dbi.Context.root then "<root>"
  else
    escape
      (Dbi.Symbol.name
         (Dbi.Machine.symbols machine)
         (Dbi.Context.fn (Dbi.Machine.contexts machine) ctx))

let cdfg ?(min_bytes = 1) ?(max_nodes = 64) tool ppf =
  let machine = Sigil.Tool.machine tool in
  let profile = Sigil.Tool.profile tool in
  let contexts = Dbi.Machine.contexts machine in
  (* keep the hottest contexts plus every ancestor, so call edges connect *)
  let hot =
    let scored =
      List.map
        (fun ctx ->
          let s = Sigil.Profile.stats profile ctx in
          (ctx, s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops))
        (Sigil.Profile.contexts profile)
    in
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
    List.filteri (fun i _ -> i < max_nodes) sorted |> List.map fst
  in
  let keep = Hashtbl.create 64 in
  let rec keep_up ctx =
    if not (Hashtbl.mem keep ctx) then begin
      Hashtbl.replace keep ctx ();
      match Dbi.Context.parent contexts ctx with
      | Some p -> keep_up p
      | None -> ()
    end
  in
  List.iter keep_up hot;
  Format.fprintf ppf "digraph cdfg {@.";
  Format.fprintf ppf "  rankdir=TB; node [shape=box, fontsize=10];@.";
  Hashtbl.iter
    (fun ctx () ->
      let s = Sigil.Profile.stats profile ctx in
      Format.fprintf ppf "  n%d [label=\"%s\\nops=%d calls=%d\"];@." ctx (fn_label tool ctx)
        (s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops)
        s.Sigil.Profile.calls)
    keep;
  (* call edges: bold, as in Fig 1 *)
  Hashtbl.iter
    (fun ctx () ->
      match Dbi.Context.parent contexts ctx with
      | Some p when Hashtbl.mem keep p ->
        Format.fprintf ppf "  n%d -> n%d [style=bold];@." p ctx
      | Some _ | None -> ())
    keep;
  (* data-dependency edges: dashed, weighted by unique bytes *)
  List.iter
    (fun (e : Sigil.Profile.edge) ->
      if
        e.Sigil.Profile.unique_bytes >= min_bytes
        && Hashtbl.mem keep e.Sigil.Profile.src
        && Hashtbl.mem keep e.Sigil.Profile.dst
      then
        Format.fprintf ppf "  n%d -> n%d [style=dashed, label=\"%d/%d\"];@." e.Sigil.Profile.src
          e.Sigil.Profile.dst e.Sigil.Profile.unique_bytes e.Sigil.Profile.bytes)
    (Sigil.Profile.edges profile);
  Format.fprintf ppf "}@."

let critical_path tool critpath ppf =
  let nodes = Critpath.critical_path critpath in
  Format.fprintf ppf "digraph critical_path {@.";
  Format.fprintf ppf "  rankdir=LR; node [shape=box, style=filled, fillcolor=gray85, fontsize=10];@.";
  List.iteri
    (fun i (n : Critpath.node) ->
      Format.fprintf ppf "  n%d [label=\"%s #%d\\nself=%d incl=%d\"];@." i
        (fn_label tool n.Critpath.ctx) n.Critpath.occurrence n.Critpath.self n.Critpath.inclusive)
    nodes;
  List.iteri
    (fun i (_ : Critpath.node) ->
      if i > 0 then Format.fprintf ppf "  n%d -> n%d [style=bold];@." (i - 1) i)
    nodes;
  Format.fprintf ppf "}@."

let to_file render path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      render ppf;
      Format.pp_print_flush ppf ())

let save_cdfg ?min_bytes ?max_nodes tool path = to_file (cdfg ?min_bytes ?max_nodes tool) path
let save_critical_path tool critpath path = to_file (critical_path tool critpath) path
