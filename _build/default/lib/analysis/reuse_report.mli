(** Data-reuse reports (§IV-B): the rows behind Figs 8–12. *)

(** One stacked bar of Fig 8: fractions of data elements by re-use count. *)
type byte_breakdown = {
  zero : float;
  one_to_nine : float;
  over_nine : float;
  elements : int; (** total data elements (byte versions) *)
}

(** One bar of Fig 9 / row of the per-function table. *)
type fn_row = {
  ctx : Dbi.Context.id;
  label : string; (** function name, with [(n)] suffix distinguishing contexts *)
  avg_lifetime : float;
  reuse_reads : int; (** contribution to total re-use *)
  unique_bytes : int; (** unique bytes processed (first-use reads) *)
  unique_share : float; (** share of the benchmark's unique bytes *)
}

(** [byte_breakdown sigil_tool] computes Fig 8's bar for one run (requires
    reuse mode). *)
val byte_breakdown : Sigil.Tool.t -> byte_breakdown

(** [top_reusers ?n sigil_tool] lists the top [n] (default 10) contexts by
    contribution to total data re-use, with their average re-use lifetimes
    (Fig 9). Labels repeat a function name with [(k)] when it appears in
    several contexts, as the paper does. *)
val top_reusers : ?n:int -> Sigil.Tool.t -> fn_row list

(** [lifetime_histogram sigil_tool name] merges the lifetime histograms of
    every context executing function [name]: [(bin_start, count)]
    ascending (Figs 10–11). *)
val lifetime_histogram : Sigil.Tool.t -> string -> (int * int) list

(** [lifetime_histogram_dominant sigil_tool name] is the histogram of the
    single context of [name] contributing the most re-use (the paper's
    per-context accounting distinguishes [conv_gen] from [conv_gen(1)]). *)
val lifetime_histogram_dominant : Sigil.Tool.t -> string -> (int * int) list

(** [find_contexts sigil_tool name] lists contexts whose function is
    [name]. *)
val find_contexts : Sigil.Tool.t -> string -> Dbi.Context.id list
