(** Graphviz export.

    Renders the paper's Fig 1/2 pictures from real profiles: the control
    data flow graph as a calltree with bold call edges and dashed
    data-dependency edges weighted by (unique) bytes, and the critical
    path as a chain diagram like Fig 3. Output is plain DOT, viewable with
    [dot -Tsvg]. *)

(** [cdfg ?min_bytes ?max_nodes tool ppf] writes the control data flow
    graph of a finished Sigil run. Data edges carrying fewer than
    [min_bytes] unique bytes are dropped (default 1); the graph is
    truncated to the [max_nodes] hottest contexts by operation count
    (default 64) to stay readable. *)
val cdfg : ?min_bytes:int -> ?max_nodes:int -> Sigil.Tool.t -> Format.formatter -> unit

(** [critical_path tool critpath ppf] writes the critical-path chain: one
    node per occurrence on the longest path, labelled with self and
    inclusive costs as in Fig 3. *)
val critical_path : Sigil.Tool.t -> Critpath.t -> Format.formatter -> unit

(** [save_cdfg ?min_bytes ?max_nodes tool path] / [save_critical_path] are
    file-writing conveniences. *)
val save_cdfg : ?min_bytes:int -> ?max_nodes:int -> Sigil.Tool.t -> string -> unit

val save_critical_path : Sigil.Tool.t -> Critpath.t -> string -> unit
