type node = {
  ctx : Dbi.Context.id;
  name : string;
  path : string;
  children : Dbi.Context.id list;
  self_ops : int;
  self_calls : int;
  incl_ops : int;
  incl_cycles : int;
  incl_input_unique : int;
  incl_input_total : int;
  incl_output_unique : int;
  incl_output_total : int;
}

type t = {
  nodes : (Dbi.Context.id, node) Hashtbl.t;
  preorder : Dbi.Context.id list;
  tin : int array; (* Euler intervals for ancestor tests *)
  tout : int array;
  root_ctx : Dbi.Context.id;
}

let is_ancestor t a b = t.tin.(a) <= t.tin.(b) && t.tout.(b) <= t.tout.(a)

let build ?callgrind sigil_tool =
  let machine = Sigil.Tool.machine sigil_tool in
  let profile = Sigil.Tool.profile sigil_tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let n = Dbi.Context.count contexts in
  let tin = Array.make n 0 and tout = Array.make n 0 in
  let clock = ref 0 in
  let preorder = ref [] in
  let rec dfs ctx =
    incr clock;
    tin.(ctx) <- !clock;
    preorder := ctx :: !preorder;
    List.iter dfs (Dbi.Context.children contexts ctx);
    incr clock;
    tout.(ctx) <- !clock
  in
  dfs Dbi.Context.root;
  let preorder = List.rev !preorder in
  (* inclusive ops by post-order accumulation *)
  let self_ops = Array.make n 0 in
  let incl_ops = Array.make n 0 in
  List.iter
    (fun ctx ->
      let s = Sigil.Profile.stats profile ctx in
      self_ops.(ctx) <- s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops)
    preorder;
  let rec accumulate ctx =
    let kids = Dbi.Context.children contexts ctx in
    List.iter accumulate kids;
    incl_ops.(ctx) <-
      self_ops.(ctx) + List.fold_left (fun acc k -> acc + incl_ops.(k)) 0 kids
  in
  accumulate Dbi.Context.root;
  let incl_cycles = Array.make n 0 in
  (match callgrind with
  | Some cg ->
    let self_cycles ctx = Callgrind.Estimate.cycles (Callgrind.Tool.cost cg ctx) in
    let rec acc_cycles ctx =
      let kids = Dbi.Context.children contexts ctx in
      List.iter acc_cycles kids;
      incl_cycles.(ctx) <-
        self_cycles ctx + List.fold_left (fun acc k -> acc + incl_cycles.(k)) 0 kids
    in
    acc_cycles Dbi.Context.root
  | None -> Array.blit incl_ops 0 incl_cycles 0 n);
  (* Crossing-edge accumulation: an edge s->d contributes input to every
     box (ancestor chain of d) that does not also contain s — i.e. the
     nodes strictly below the LCA on d's chain — and output symmetrically
     on s's chain. Producer = root means program input and charges d's
     whole chain. *)
  let in_u = Array.make n 0 and in_t = Array.make n 0 in
  let out_u = Array.make n 0 and out_t = Array.make n 0 in
  let ancestor a b = tin.(a) <= tin.(b) && tout.(b) <= tout.(a) in
  List.iter
    (fun (e : Sigil.Profile.edge) ->
      let rec charge_up arr_u arr_t v stop_test =
        if v <> Dbi.Context.root && not (stop_test v) then begin
          arr_u.(v) <- arr_u.(v) + e.Sigil.Profile.unique_bytes;
          arr_t.(v) <- arr_t.(v) + e.Sigil.Profile.bytes;
          match Dbi.Context.parent contexts v with
          | Some p -> charge_up arr_u arr_t p stop_test
          | None -> ()
        end
      in
      charge_up in_u in_t e.Sigil.Profile.dst (fun v -> ancestor v e.Sigil.Profile.src);
      charge_up out_u out_t e.Sigil.Profile.src (fun v -> ancestor v e.Sigil.Profile.dst))
    (Sigil.Profile.edges profile);
  let nodes = Hashtbl.create n in
  List.iter
    (fun ctx ->
      let s = Sigil.Profile.stats profile ctx in
      let name =
        if ctx = Dbi.Context.root then "<root>"
        else Dbi.Symbol.name symbols (Dbi.Context.fn contexts ctx)
      in
      Hashtbl.add nodes ctx
        {
          ctx;
          name;
          path = Dbi.Context.path contexts symbols ctx;
          children = Dbi.Context.children contexts ctx;
          self_ops = self_ops.(ctx);
          self_calls = s.Sigil.Profile.calls;
          incl_ops = incl_ops.(ctx);
          incl_cycles = incl_cycles.(ctx);
          incl_input_unique = in_u.(ctx);
          incl_input_total = in_t.(ctx);
          incl_output_unique = out_u.(ctx);
          incl_output_total = out_t.(ctx);
        })
    preorder;
  { nodes; preorder; tin; tout; root_ctx = Dbi.Context.root }

let node t ctx =
  match Hashtbl.find_opt t.nodes ctx with
  | Some n -> n
  | None -> invalid_arg "Cdfg.node: unknown context"

let contexts t = t.preorder
let root t = node t t.root_ctx
let total_cycles t = (root t).incl_cycles
