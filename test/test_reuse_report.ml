(* Reuse_report (the rows behind Figs 8-11): exact golden byte-reuse
   breakdowns, top-reuser tables and lifetime histograms for two
   workloads, plus the per-context accounting the paper's conv_gen vs
   conv_gen(1) distinction depends on. All inputs are deterministic, so
   every value here is exact — a change is a behaviour change. *)

let find_workload name =
  match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e

let run_reuse name =
  let options = Sigil.Options.(with_reuse default) in
  Driver.sigil (Driver.run_workload ~options (find_workload name) Workloads.Scale.Simsmall)

(* one run per workload, shared across the cases below *)
let canneal = lazy (run_reuse "canneal")
let bodytrack = lazy (run_reuse "bodytrack")

let close_to = Alcotest.float 1e-6

(* ---------------------------------------------------------------- *)
(* Fig 8: byte-reuse breakdown                                      *)
(* ---------------------------------------------------------------- *)

let test_byte_breakdown_canneal () =
  let tool = Lazy.force canneal in
  let bins = Sigil.Reuse.version_bins (Sigil.Tool.reuse tool) in
  Alcotest.(check int) "zero-reuse elements" 946_080 bins.Sigil.Reuse.zero;
  Alcotest.(check int) "1-9 reuse elements" 34_592 bins.Sigil.Reuse.low;
  Alcotest.(check int) ">9 reuse elements" 40_192 bins.Sigil.Reuse.high;
  let bd = Analysis.Reuse_report.byte_breakdown tool in
  Alcotest.(check int) "elements totals the bins" 1_020_864 bd.Analysis.Reuse_report.elements;
  Alcotest.check close_to "zero fraction"
    (946_080.0 /. 1_020_864.0) bd.Analysis.Reuse_report.zero;
  Alcotest.check close_to "fractions sum to 1" 1.0
    (bd.Analysis.Reuse_report.zero +. bd.Analysis.Reuse_report.one_to_nine
   +. bd.Analysis.Reuse_report.over_nine)

let test_byte_breakdown_bodytrack () =
  let bd = Analysis.Reuse_report.byte_breakdown (Lazy.force bodytrack) in
  Alcotest.(check int) "elements" 210_976 bd.Analysis.Reuse_report.elements;
  Alcotest.check close_to "zero fraction" (207_840.0 /. 210_976.0)
    bd.Analysis.Reuse_report.zero;
  Alcotest.check close_to "no 1-9 band" 0.0 bd.Analysis.Reuse_report.one_to_nine;
  Alcotest.check close_to ">9 fraction" (3_136.0 /. 210_976.0)
    bd.Analysis.Reuse_report.over_nine

(* ---------------------------------------------------------------- *)
(* Fig 9: top re-users                                              *)
(* ---------------------------------------------------------------- *)

let test_top_reusers_canneal () =
  let tool = Lazy.force canneal in
  match Analysis.Reuse_report.top_reusers ~n:5 tool with
  | first :: second :: _ ->
    Alcotest.(check string) "top label" "annealer_thread::Run"
      first.Analysis.Reuse_report.label;
    Alcotest.(check int) "top reuse reads" 974_016 first.Analysis.Reuse_report.reuse_reads;
    Alcotest.(check int) "top unique bytes" 145_984 first.Analysis.Reuse_report.unique_bytes;
    Alcotest.check (Alcotest.float 1e-3) "top avg lifetime" 760_382.461806
      first.Analysis.Reuse_report.avg_lifetime;
    Alcotest.(check string) "second label" "netlist::swap_locations"
      second.Analysis.Reuse_report.label;
    Alcotest.(check int) "second reuse reads" 32 second.Analysis.Reuse_report.reuse_reads;
    Alcotest.check close_to "second avg lifetime" 4.0
      second.Analysis.Reuse_report.avg_lifetime;
    (* share = unique bytes over the benchmark's unique total *)
    let unique_total, _ = Sigil.Profile.totals (Sigil.Tool.profile tool) in
    Alcotest.check close_to "share is unique_bytes / unique_total"
      (float_of_int first.Analysis.Reuse_report.unique_bytes /. float_of_int unique_total)
      first.Analysis.Reuse_report.unique_share;
    Alcotest.(check bool) "rows sorted by reuse reads" true
      (first.Analysis.Reuse_report.reuse_reads >= second.Analysis.Reuse_report.reuse_reads)
  | rows -> Alcotest.failf "expected >= 2 reusing contexts, got %d" (List.length rows)

let test_top_reusers_respects_n () =
  let tool = Lazy.force canneal in
  Alcotest.(check int) "n = 1 returns one row" 1
    (List.length (Analysis.Reuse_report.top_reusers ~n:1 tool))

(* the paper distinguishes several contexts of one function with (k)
   suffixes; bodytrack's dominant function runs in two contexts *)
let test_context_labels_bodytrack () =
  let tool = Lazy.force bodytrack in
  match Analysis.Reuse_report.top_reusers ~n:5 tool with
  | first :: second :: _ ->
    Alcotest.(check string) "dominant context keeps the bare name"
      "ImageMeasurements::ImageErrorInside" first.Analysis.Reuse_report.label;
    Alcotest.(check string) "sibling context gets a (1) suffix"
      "ImageMeasurements::ImageErrorInside(1)" second.Analysis.Reuse_report.label;
    Alcotest.(check int) "dominant reuse reads" 380_928
      first.Analysis.Reuse_report.reuse_reads;
    Alcotest.(check int) "sibling reuse reads" 47_616
      second.Analysis.Reuse_report.reuse_reads
  | rows -> Alcotest.failf "expected >= 2 rows, got %d" (List.length rows)

(* ---------------------------------------------------------------- *)
(* Figs 10-11: lifetime histograms                                  *)
(* ---------------------------------------------------------------- *)

let test_lifetime_histogram_canneal () =
  let tool = Lazy.force canneal in
  Alcotest.(check int) "bin width" 1000
    (Sigil.Reuse.lifetime_bin_width (Sigil.Tool.reuse tool));
  let hist = Analysis.Reuse_report.lifetime_histogram tool "annealer_thread::Run" in
  Alcotest.(check int) "bin count" 1457 (List.length hist);
  Alcotest.(check int) "total reused bytes" 92_160
    (List.fold_left (fun acc (_, c) -> acc + c) 0 hist);
  Alcotest.(check (pair int int)) "first bin" (0, 224) (List.hd hist);
  Alcotest.(check (pair int int)) "last bin" (2_462_000, 64) (List.hd (List.rev hist));
  Alcotest.(check bool) "bins ascending" true
    (List.sort compare hist = hist);
  (* one context only: the dominant-context histogram is the merged one *)
  Alcotest.(check int) "single context" 1
    (List.length (Analysis.Reuse_report.find_contexts tool "annealer_thread::Run"));
  Alcotest.(check (list (pair int int))) "dominant = merged for one context" hist
    (Analysis.Reuse_report.lifetime_histogram_dominant tool "annealer_thread::Run")

let test_lifetime_histogram_bodytrack () =
  let tool = Lazy.force bodytrack in
  let fn = "ImageMeasurements::ImageErrorInside" in
  Alcotest.(check int) "two contexts" 2
    (List.length (Analysis.Reuse_report.find_contexts tool fn));
  Alcotest.(check (list (pair int int))) "merged histogram sums both contexts"
    [ (16_000, 13_824) ]
    (Analysis.Reuse_report.lifetime_histogram tool fn);
  Alcotest.(check (list (pair int int))) "dominant context alone" [ (16_000, 12_288) ]
    (Analysis.Reuse_report.lifetime_histogram_dominant tool fn)

let test_unknown_function () =
  let tool = Lazy.force canneal in
  Alcotest.(check (list (pair int int))) "unknown function: empty histogram" []
    (Analysis.Reuse_report.lifetime_histogram tool "no_such_function");
  Alcotest.(check (list (pair int int))) "unknown function: empty dominant" []
    (Analysis.Reuse_report.lifetime_histogram_dominant tool "no_such_function");
  Alcotest.(check bool) "unknown function: no contexts" true
    (Analysis.Reuse_report.find_contexts tool "no_such_function" = [])

let () =
  Alcotest.run "reuse_report"
    [
      ( "breakdown",
        [
          Alcotest.test_case "canneal byte breakdown" `Quick test_byte_breakdown_canneal;
          Alcotest.test_case "bodytrack byte breakdown" `Quick test_byte_breakdown_bodytrack;
        ] );
      ( "top reusers",
        [
          Alcotest.test_case "canneal table" `Quick test_top_reusers_canneal;
          Alcotest.test_case "limit respected" `Quick test_top_reusers_respects_n;
          Alcotest.test_case "bodytrack context labels" `Quick test_context_labels_bodytrack;
        ] );
      ( "lifetime histograms",
        [
          Alcotest.test_case "canneal" `Quick test_lifetime_histogram_canneal;
          Alcotest.test_case "bodytrack dominant vs merged" `Quick
            test_lifetime_histogram_bodytrack;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
        ] );
    ]
