(* Fault-injection suite for the crash-safe trace path (ISSUE 4). The
   salvage contract under test: whatever fault is injected — truncation at
   any byte offset, any single-bit flip, a torn tail, a sink that dies
   mid-run — reading the damaged artifact yields either a recovered strict
   prefix of the original entries or a structured [Frame.Corrupt] carrying
   an offset. Never an uncaught exception, never silently wrong data. *)

open Sigil

let with_temp_dir f =
  let dir = Filename.temp_file "sigil_faultinject" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let gen_entries n =
  List.init n (fun i ->
      match i mod 4 with
      | 0 -> Event_log.Call { ctx = i; call = (i / 2) + 1 }
      | 1 -> Event_log.Comp { ctx = i; call = i / 2; int_ops = (i * 3) + 1; fp_ops = i mod 5 }
      | 2 ->
        Event_log.Xfer
          {
            src_ctx = i / 3;
            src_call = i / 4;
            dst_ctx = i;
            dst_call = i / 2;
            bytes = 8 + i;
            unique_bytes = 4 + (i / 2);
          }
      | _ -> Event_log.Ret { ctx = i; call = i / 2 })

let names_table = [| "main"; "f"; "g" |]
let ctx_parent_table = [| 0; 0; 1 |]
let ctx_fn_table = [| 0; 1; 2 |]

(* Small chunks and a tight checkpoint cadence so a ~700-byte stream spans
   a dozen data chunks with several interleaved checkpoint sections — every
   structural element of the format sits inside the sweep range. *)
let write_trace ?(entries = 220) path =
  let w = Tracefile.Writer.create ~chunk_bytes:48 ~checkpoint_every:3 path in
  let es = gen_entries entries in
  List.iter (Tracefile.Writer.add w) es;
  Tracefile.Writer.close_raw ~names:names_table ~ctx_parent:ctx_parent_table ~ctx_fn:ctx_fn_table
    w;
  es

let read_entries path =
  let r = Tracefile.Reader.open_file path in
  Fun.protect
    ~finally:(fun () -> Tracefile.Reader.close r)
    (fun () ->
      let out = ref [] in
      Tracefile.Reader.iter r (fun e -> out := e :: !out);
      List.rev !out)

let take n l = List.filteri (fun i _ -> i < n) l

(* The core invariant check. Returns what happened so sweeps can also
   assert coverage (e.g. "at least one offset salvaged a proper prefix"). *)
let check_salvage_invariant ~what ~baseline path =
  match Tracefile.Reader.open_salvage path with
  | r, report ->
    let got = ref [] in
    let entries =
      match Tracefile.Reader.iter r (fun e -> got := e :: !got) with
      | () ->
        Tracefile.Reader.close r;
        List.rev !got
      | exception e ->
        Tracefile.Reader.close r;
        Alcotest.failf "%s: salvaged reader failed to stream: %s" what (Printexc.to_string e)
    in
    let n = List.length entries in
    if report.Tracefile.Reader.recovered_entries <> n then
      Alcotest.failf "%s: report claims %d entries, reader yielded %d" what
        report.Tracefile.Reader.recovered_entries n;
    if n > List.length baseline then
      Alcotest.failf "%s: salvage invented entries (%d > %d)" what n (List.length baseline);
    if entries <> take n baseline then
      Alcotest.failf "%s: salvage is not a prefix of the original entries" what;
    `Salvaged (report, entries)
  | exception Tracefile.Frame.Corrupt { offset; _ } ->
    if offset < 0 then Alcotest.failf "%s: structured error with negative offset" what;
    `Error offset
  | exception e ->
    Alcotest.failf "%s: uncaught exception escaped salvage: %s" what (Printexc.to_string e)

(* ---------------------------------------------------------------- *)
(* Exhaustive truncation sweep                                      *)
(* ---------------------------------------------------------------- *)

let test_truncation_sweep () =
  with_temp_dir @@ fun dir ->
  let src = Filename.concat dir "clean.tf" in
  let baseline = write_trace src in
  (match read_entries src with
  | got when got = baseline -> ()
  | _ -> Alcotest.fail "clean trace does not round-trip");
  let len = Faultinject.file_length src in
  let dst = Filename.concat dir "cut.tf" in
  let salvages = ref 0 and partial = ref 0 and errors = ref 0 in
  for cut = 0 to len do
    Faultinject.truncated_copy ~src ~dst ~len:cut;
    match
      check_salvage_invariant ~what:(Printf.sprintf "truncate at %d" cut) ~baseline dst
    with
    | `Salvaged (_, entries) ->
      incr salvages;
      if entries <> [] && List.length entries < List.length baseline then incr partial
    | `Error _ -> incr errors
  done;
  Alcotest.(check int) "every offset handled" (len + 1) (!salvages + !errors);
  (* the sweep must actually exercise both halves of the contract *)
  Alcotest.(check bool) "some cuts salvage a proper non-empty prefix" true (!partial > 0);
  Alcotest.(check bool) "some cuts are structured errors (header region)" true (!errors > 0);
  (* an untruncated copy recovers everything *)
  Faultinject.truncated_copy ~src ~dst ~len;
  match check_salvage_invariant ~what:"no truncation" ~baseline dst with
  | `Salvaged (report, entries) ->
    Alcotest.(check int) "full recovery" (List.length baseline) (List.length entries);
    Alcotest.(check int) "nothing dropped" 0 report.Tracefile.Reader.dropped_chunks;
    Alcotest.(check bool) "tail intact" true report.Tracefile.Reader.tail_valid
  | `Error o -> Alcotest.failf "clean file reported corrupt at %d" o

(* ---------------------------------------------------------------- *)
(* Exhaustive single-bit-flip sweep                                 *)
(* ---------------------------------------------------------------- *)

let test_bit_flip_sweep () =
  with_temp_dir @@ fun dir ->
  let src = Filename.concat dir "clean.tf" in
  let baseline = write_trace src in
  let len = Faultinject.file_length src in
  let dst = Filename.concat dir "flip.tf" in
  let detected = ref 0 in
  for byte = 0 to len - 1 do
    (* one bit per byte keeps the sweep linear; rotating the bit position
       still visits every bit index in every 8-byte window *)
    let bit = byte mod 8 in
    Faultinject.bit_flipped_copy ~src ~dst ~byte ~bit;
    match
      check_salvage_invariant ~what:(Printf.sprintf "flip byte %d bit %d" byte bit) ~baseline dst
    with
    | `Salvaged (report, entries) ->
      if List.length entries < List.length baseline || report.Tracefile.Reader.first_bad_offset <> None
      then incr detected
    | `Error _ -> incr detected
  done;
  (* most flips must be detected; the only undetectable ones live in the
     unchecksummed header tag or trailer counters, a small fixed region *)
  Alcotest.(check bool)
    (Printf.sprintf "flips detected (%d of %d)" !detected len)
    true
    (!detected > len / 2)

(* ---------------------------------------------------------------- *)
(* Torn tail                                                        *)
(* ---------------------------------------------------------------- *)

let test_torn_tail () =
  with_temp_dir @@ fun dir ->
  let src = Filename.concat dir "clean.tf" in
  let baseline = write_trace src in
  let len = Faultinject.file_length src in
  let dst = Filename.concat dir "torn.tf" in
  List.iter
    (fun (keep, junk) ->
      let keep = min keep len in
      Faultinject.torn_tail_copy ~src ~dst ~keep ~junk;
      match
        check_salvage_invariant
          ~what:(Printf.sprintf "torn tail keep=%d junk=%d" keep junk)
          ~baseline dst
      with
      | `Salvaged _ | `Error _ -> ())
    [ (len / 2, 64); (len / 3, 512); (len - 40, 40); (30, 256); (len, 100) ]

(* ---------------------------------------------------------------- *)
(* Unclosed .tmp (simulated crash) and failing sinks                *)
(* ---------------------------------------------------------------- *)

let test_salvage_unclosed_tmp () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "crashed.tf" in
  let w = Tracefile.Writer.create ~chunk_bytes:48 ~checkpoint_every:3 path in
  let es = gen_entries 100 in
  List.iter (Tracefile.Writer.add w) es;
  (* no close: the process "died". The destination must not exist; the
     .tmp must salvage to a prefix of what was fed in. *)
  Alcotest.(check bool) "destination not published" false (Sys.file_exists path);
  Alcotest.(check bool) "tmp exists" true (Sys.file_exists (path ^ ".tmp"));
  (match check_salvage_invariant ~what:"unclosed tmp" ~baseline:es (path ^ ".tmp") with
  | `Salvaged (report, entries) ->
    Alcotest.(check bool) "tail lost" false report.Tracefile.Reader.tail_valid;
    (* checkpoints flush every 3 chunks of ~16 entries: most of the feed
       must have reached disk *)
    Alcotest.(check bool) "checkpoint flushing bounded the loss" true
      (List.length entries > 0)
  | `Error o -> Alcotest.failf "unclosed tmp unsalvageable (offset %d)" o);
  Tracefile.Writer.discard w;
  Alcotest.(check bool) "discard removes tmp" false (Sys.file_exists (path ^ ".tmp"))

let feed_until_failure sink entries =
  let accepted = ref 0 in
  (try
     List.iter
       (fun e ->
         sink e;
         incr accepted)
       entries
   with Faultinject.Injected _ -> ());
  !accepted

let test_failing_sink () =
  with_temp_dir @@ fun dir ->
  let es = gen_entries 200 in
  let run what trigger check =
    let path = Filename.concat dir (what ^ ".tf") in
    let w = Tracefile.Writer.create ~chunk_bytes:48 path in
    let accepted = feed_until_failure (Faultinject.failing_sink trigger w) es in
    check w accepted;
    (* the driver's failure path: abandon the artifact *)
    Tracefile.Writer.discard w;
    Alcotest.(check bool) (what ^ ": no file published") false (Sys.file_exists path);
    Alcotest.(check bool) (what ^ ": no tmp left") false (Sys.file_exists (path ^ ".tmp"))
  in
  run "after_entries" (Faultinject.After_entries 37) (fun _ accepted ->
      Alcotest.(check int) "fails at exactly N entries" 37 accepted);
  run "after_bytes" (Faultinject.After_bytes 120) (fun w accepted ->
      Alcotest.(check bool) "accepted some entries" true (accepted > 0);
      Alcotest.(check bool) "stopped once the byte budget was hit" true
        (Tracefile.Writer.bytes_written w >= 120 && accepted < List.length es));
  run "on_flush" (Faultinject.On_flush 2) (fun w accepted ->
      Alcotest.(check int) "died right after the 2nd chunk flush" 2 (Tracefile.Writer.chunks w);
      Alcotest.(check bool) "accepted a flush worth of entries" true (accepted > 0));
  (* a tripped sink stays tripped *)
  let path = Filename.concat dir "dead.tf" in
  let w = Tracefile.Writer.create path in
  let sink = Faultinject.failing_sink (Faultinject.After_entries 1) w in
  let _ = feed_until_failure sink es in
  (match sink (List.hd es) with
  | () -> Alcotest.fail "sink resurrected after failure"
  | exception Faultinject.Injected _ -> ());
  Tracefile.Writer.discard w

(* ---------------------------------------------------------------- *)
(* Repair                                                           *)
(* ---------------------------------------------------------------- *)

let test_repair_roundtrip () =
  with_temp_dir @@ fun dir ->
  let src = Filename.concat dir "clean.tf" in
  let baseline = write_trace src in
  let len = Faultinject.file_length src in
  (* damage a mid-file chunk: flip a bit well past the header *)
  let damaged = Filename.concat dir "damaged.tf" in
  Faultinject.bit_flipped_copy ~src ~dst:damaged ~byte:(len / 2) ~bit:3;
  let repaired = Filename.concat dir "repaired.tf" in
  let report = Tracefile.Convert.repair damaged repaired in
  Alcotest.(check bool) "repair dropped something" true
    (report.Tracefile.Reader.dropped_chunks > 0 || report.Tracefile.Reader.first_bad_offset <> None);
  (* the rewritten trace is strictly clean: full open + validate *)
  let r = Tracefile.Reader.open_file repaired in
  Fun.protect
    ~finally:(fun () -> Tracefile.Reader.close r)
    (fun () ->
      Tracefile.Reader.validate r;
      Alcotest.(check int) "entry count matches the salvage report"
        report.Tracefile.Reader.recovered_entries
        (Tracefile.Reader.entry_count r);
      let got = ref [] in
      Tracefile.Reader.iter r (fun e -> got := e :: !got);
      let got = List.rev !got in
      Alcotest.(check bool) "repaired entries are a prefix of the original" true
        (got = take (List.length got) baseline);
      (* the source had an intact tail, so tables and options survive *)
      Alcotest.(check bool) "tables preserved" true (Tracefile.Reader.has_names r);
      Alcotest.(check string) "options tag preserved"
        (Sigil.Options.fingerprint Sigil.Options.default)
        (Tracefile.Reader.options_tag r))

let test_repair_of_truncated_tmp () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "crashed.tf" in
  let w = Tracefile.Writer.create ~chunk_bytes:48 ~checkpoint_every:3 path in
  let es = gen_entries 150 in
  List.iter (Tracefile.Writer.add w) es;
  (* crash; then cut the tmp mid-byte like a torn final sector *)
  let tmp = path ^ ".tmp" in
  let torn = Filename.concat dir "torn.tf" in
  Faultinject.truncated_copy ~src:tmp ~dst:torn ~len:(Faultinject.file_length tmp - 7);
  let repaired = Filename.concat dir "repaired.tf" in
  let report = Tracefile.Convert.repair torn repaired in
  let r = Tracefile.Reader.open_file repaired in
  Fun.protect
    ~finally:(fun () -> Tracefile.Reader.close r)
    (fun () ->
      Tracefile.Reader.validate r;
      Alcotest.(check int) "repair preserves every salvaged entry"
        report.Tracefile.Reader.recovered_entries
        (Tracefile.Reader.entry_count r));
  Tracefile.Writer.discard w

(* Atomicity of the writer's publish step. *)
let test_close_is_atomic_rename () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.tf" in
  (* pre-existing good trace *)
  let _ = write_trace ~entries:20 path in
  let old = read_entries path in
  (* a new writer that dies must leave the old trace untouched *)
  let w = Tracefile.Writer.create ~chunk_bytes:48 path in
  List.iter (Tracefile.Writer.add w) (gen_entries 60);
  Tracefile.Writer.discard w;
  Alcotest.(check bool) "old trace still present" true (Sys.file_exists path);
  Alcotest.(check bool) "old trace unchanged" true (read_entries path = old);
  (* and a successful close replaces it completely *)
  let fresh = write_trace ~entries:40 path in
  Alcotest.(check bool) "new trace replaced the old one" true (read_entries path = fresh)

let () =
  Alcotest.run "faultinject"
    [
      ( "salvage",
        [
          Alcotest.test_case "exhaustive truncation sweep" `Quick test_truncation_sweep;
          Alcotest.test_case "exhaustive bit-flip sweep" `Quick test_bit_flip_sweep;
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
          Alcotest.test_case "unclosed .tmp salvages" `Quick test_salvage_unclosed_tmp;
        ] );
      ( "sinks",
        [ Alcotest.test_case "failing sink triggers" `Quick test_failing_sink ] );
      ( "repair",
        [
          Alcotest.test_case "repair roundtrip" `Quick test_repair_roundtrip;
          Alcotest.test_case "repair a torn crash tmp" `Quick test_repair_of_truncated_tmp;
          Alcotest.test_case "close is atomic rename" `Quick test_close_is_atomic_rename;
        ] );
    ]
