(* Telemetry: the metrics vocabulary (histogram bucketing, snapshot merge
   algebra) and the deterministic goldens it exists for — exact
   per-workload counter values, the memory-limit eviction accounting, the
   trace writer's buffer bound, sequential-vs-pooled snapshot identity,
   and stats collection never perturbing what is measured. *)

let snapshot =
  Alcotest.testable (fun ppf s -> Telemetry.pp ppf s) Telemetry.equal

let find_workload name =
  match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e

let small = Workloads.Scale.Simsmall

let run_stats ?(options = Sigil.Options.default) name =
  let options = Sigil.Options.with_stats options in
  Driver.Stats.of_run (Driver.run_workload ~options (find_workload name) small)

let geti = Telemetry.get_int

let with_temp ext f =
  let path = Filename.temp_file "sigil_telemetry" ext in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ---------------------------------------------------------------- *)
(* Histogram bucketing                                              *)
(* ---------------------------------------------------------------- *)

let test_hist_bucket_goldens () =
  let cases =
    [
      (min_int, 0); (-5, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (1023, 10); (1024, 11); (65536, 17); (max_int, 62);
    ]
  in
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Telemetry.Hist.bucket_of v))
    cases;
  Alcotest.(check int) "bucket_lo 0" 0 (Telemetry.Hist.bucket_lo 0);
  Alcotest.(check int) "bucket_lo 1" 1 (Telemetry.Hist.bucket_lo 1);
  Alcotest.(check int) "bucket_lo 2" 2 (Telemetry.Hist.bucket_lo 2);
  Alcotest.(check int) "bucket_lo 3" 4 (Telemetry.Hist.bucket_lo 3);
  Alcotest.(check int) "bucket_lo 11" 1024 (Telemetry.Hist.bucket_lo 11)

let test_hist_observe () =
  let h = Telemetry.Hist.create () in
  List.iter (Telemetry.Hist.observe h) [ 0; 1; 1; 5; 1024 ];
  Alcotest.(check int) "total" 5 (Telemetry.Hist.total h);
  Alcotest.(check (array int))
    "counts trimmed to last non-zero bucket"
    [| 1; 2; 0; 1; 0; 0; 0; 0; 0; 0; 0; 1 |]
    (Telemetry.Hist.counts h);
  Alcotest.(check (array int)) "empty histogram trims to nothing" [||]
    (Telemetry.Hist.counts (Telemetry.Hist.create ()))

let qcheck_bucket_invariant =
  QCheck.Test.make ~name:"bucket_of lands v inside [bucket_lo b, bucket_lo (b+1))" ~count:1000
    QCheck.(oneof [ small_int; int; int_range 0 max_int ])
    (fun v ->
      let b = Telemetry.Hist.bucket_of v in
      let in_range = b >= 0 && b < 63 in
      if v <= 0 then in_range && b = 0
      else
        in_range
        && Telemetry.Hist.bucket_lo b <= v
        && (b = 62 || v < Telemetry.Hist.bucket_lo (b + 1)))

(* ---------------------------------------------------------------- *)
(* Snapshot algebra                                                 *)
(* ---------------------------------------------------------------- *)

let test_of_samples_combines () =
  let s =
    Telemetry.of_samples
      Telemetry.
        [
          count "c" 1; count "c" 2; gauge "g" 5; gauge "g" 7; peak "p" 3; peak "p" 9; peak "p" 4;
        ]
  in
  Alcotest.(check int) "counters add" 3 (geti s "c");
  Alcotest.(check int) "gauges add" 12 (geti s "g");
  Alcotest.(check int) "peaks take the max" 9 (geti s "p");
  Alcotest.(check int) "absent name reads 0" 0 (geti s "nope");
  Alcotest.(check bool) "find on absent name" true (Telemetry.find s "nope" = None)

let test_mismatch_rejected () =
  let raises what samples =
    match Telemetry.of_samples samples with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: mismatch not rejected" what
  in
  raises "kind mismatch" Telemetry.[ count "x" 1; gauge "x" 1 ];
  raises "domain mismatch" Telemetry.[ count "x" 1; count ~domain:Telemetry.Wall "x" 1 ]

let test_domain_split () =
  let s =
    Telemetry.of_samples
      Telemetry.[ count "det" 1; count ~domain:Telemetry.Wall "wall" 2; seconds "t" 0.5 ]
  in
  Alcotest.(check int) "det section keeps det" 1 (geti (Telemetry.deterministic s) "det");
  Alcotest.(check int) "det section drops wall" 0 (geti (Telemetry.deterministic s) "wall");
  Alcotest.(check int) "wall section keeps wall" 2 (geti (Telemetry.wall s) "wall");
  Alcotest.(check bool) "seconds is always wall" true
    (Telemetry.find (Telemetry.deterministic s) "t" = None)

(* random snapshots over a fixed vocabulary (one kind per name, as real
   probes have); seconds use dyadic fractions so float addition is exact
   and merge associativity can be checked with structural equality *)
let snapshot_gen =
  let open QCheck.Gen in
  let sample =
    oneof
      [
        map (fun v -> Telemetry.count "alpha" v) (int_range 0 1000);
        map (fun v -> Telemetry.count ~domain:Telemetry.Wall "walt" v) (int_range 0 1000);
        map (fun v -> Telemetry.gauge "beta" v) (int_range 0 1000);
        map (fun v -> Telemetry.peak "gamma" v) (int_range 0 1000);
        map (fun v -> Telemetry.seconds "delta" (float_of_int v /. 8.0)) (int_range 0 64);
        map
          (fun vs ->
            let h = Telemetry.Hist.create () in
            List.iter (Telemetry.Hist.observe h) vs;
            Telemetry.hist "eta" h)
          (list_size (int_range 0 8) (int_range 0 100_000));
      ]
  in
  map Telemetry.of_samples (list_size (int_range 0 10) sample)

let arbitrary_snapshot = QCheck.make ~print:Telemetry.to_json snapshot_gen

let qcheck_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:500
    QCheck.(triple arbitrary_snapshot arbitrary_snapshot arbitrary_snapshot)
    (fun (a, b, c) ->
      Telemetry.(equal (merge a (merge b c)) (merge (merge a b) c)))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:500
    QCheck.(pair arbitrary_snapshot arbitrary_snapshot)
    (fun (a, b) -> Telemetry.(equal (merge a b) (merge b a)))

let qcheck_merge_identity =
  QCheck.Test.make ~name:"empty is the merge identity" ~count:500 arbitrary_snapshot
    (fun a -> Telemetry.(equal (merge a empty) a && equal (merge empty a) a))

(* ---------------------------------------------------------------- *)
(* Deterministic goldens                                            *)
(* ---------------------------------------------------------------- *)

(* exact values for blackscholes simsmall under default options; any change
   here is a behaviour change in the shadow engine or the guest, never
   noise *)
let test_golden_blackscholes () =
  let s = run_stats "blackscholes" in
  let expect = Alcotest.(check int) in
  expect "machine.instructions" 1_478_258 (geti s "machine.instructions");
  expect "machine.calls" 11_245 (geti s "machine.calls");
  expect "machine.syscalls" 15 (geti s "machine.syscalls");
  expect "machine.contexts" 28 (geti s "machine.contexts");
  expect "machine.symbols" 25 (geti s "machine.symbols");
  expect "shadow.chunks_allocated" 27 (geti s "shadow.chunks_allocated");
  expect "shadow.pages" 2 (geti s "shadow.pages");
  expect "shadow.evictions" 0 (geti s "shadow.evictions");
  expect "shadow.range_runs" 86_636 (geti s "shadow.range_runs");
  expect "shadow.footprint_peak_bytes" 952_544 (geti s "shadow.footprint_peak_bytes");
  (* conservation: the shadow engine sees exactly the accesses the machine
     retires, and the profile accounts every byte of them *)
  expect "range_reads = machine.reads" (geti s "machine.reads") (geti s "shadow.range_reads");
  expect "range_read_bytes = machine.read_bytes" (geti s "machine.read_bytes")
    (geti s "shadow.range_read_bytes");
  expect "profile.read_bytes = machine.read_bytes" (geti s "machine.read_bytes")
    (geti s "profile.read_bytes");
  expect "range_writes = machine.writes" (geti s "machine.writes") (geti s "shadow.range_writes");
  (* the read-size histogram observes one value per range read *)
  (match Telemetry.find s "shadow.read_size" with
  | Some (Telemetry.Histogram counts) ->
    expect "read_size histogram totals the reads" (geti s "machine.reads")
      (Array.fold_left ( + ) 0 counts)
  | _ -> Alcotest.fail "shadow.read_size missing or not a histogram");
  Alcotest.(check bool) "unique reads <= total reads" true
    (geti s "profile.unique_read_bytes" <= geti s "profile.read_bytes")

(* the memory limit's FIFO accounting: exact eviction count at a binding
   cap, and allocations - evictions = live chunks *)
let test_golden_dedup_evictions () =
  let s =
    run_stats ~options:(Sigil.Options.with_max_chunks Sigil.Options.default 64) "dedup"
  in
  let expect = Alcotest.(check int) in
  expect "shadow.chunks_allocated" 168 (geti s "shadow.chunks_allocated");
  expect "shadow.evictions" 104 (geti s "shadow.evictions");
  expect "shadow.chunks_live" 64 (geti s "shadow.chunks_live");
  expect "shadow.chunks_peak (cap binds)" 64 (geti s "shadow.chunks_peak");
  expect "allocated - evicted = live"
    (geti s "shadow.chunks_allocated" - geti s "shadow.evictions")
    (geti s "shadow.chunks_live");
  expect "profile.unique_read_bytes" 2_687_495 (geti s "profile.unique_read_bytes")

(* the trace writer buffers at most one chunk plus the entry that crossed
   the flush threshold, and every dispatched event becomes an entry *)
let test_writer_buffer_bound () =
  with_temp ".tf" (fun path ->
      let options = Sigil.Options.(with_stats (with_events default)) in
      let chunk_bytes = 4096 in
      let w = Tracefile.Writer.create ~chunk_bytes ~options path in
      let r =
        Driver.run_workload ~options ~event_sink:(Tracefile.Writer.sink w)
          (find_workload "blackscholes") small
      in
      Tracefile.Writer.close w;
      let s =
        Telemetry.merge (Driver.Stats.of_run r)
          (Telemetry.of_samples (Tracefile.Writer.telemetry w))
      in
      Alcotest.(check int) "trace.entries = events.dispatched" (geti s "events.dispatched")
        (geti s "trace.entries");
      Alcotest.(check int) "trace.entries golden" 67_588 (geti s "trace.entries");
      let peak = geti s "trace.peak_buffer_bytes" in
      Alcotest.(check bool)
        (Printf.sprintf "peak buffer %d <= chunk + one entry" peak)
        true
        (peak <= chunk_bytes + 64);
      Alcotest.(check bool) "several chunks were flushed" true (geti s "trace.chunks" > 2))

(* ---------------------------------------------------------------- *)
(* Sequential vs pooled identity; collection never perturbs the run *)
(* ---------------------------------------------------------------- *)

let stats_specs = [ "blackscholes"; "canneal"; "dedup"; "streamcluster" ]

let run_suite_stats pool =
  let options = Sigil.Options.(with_stats default) in
  Driver.run_many ?pool
    (List.map (fun n -> Driver.job ~options (find_workload n) small) stats_specs)

let test_deterministic_j_invariance () =
  let sequential = run_suite_stats None in
  let parallel = Pool.with_pool ~domains:4 (fun p -> run_suite_stats (Some p)) in
  List.iteri
    (fun i (s, p) ->
      match (s, p) with
      | Ok s, Ok p ->
        Alcotest.check snapshot
          (Printf.sprintf "deterministic snapshot %d (%s)" i (List.nth stats_specs i))
          (Telemetry.deterministic (Driver.Stats.of_run s))
          (Telemetry.deterministic (Driver.Stats.of_run p))
      | _ -> Alcotest.fail "suite run failed")
    (List.combine sequential parallel);
  (* the rendered artifact agrees byte for byte, aggregate included *)
  let json results =
    Driver.Stats.to_json ~wall:false ~scale:small (List.combine stats_specs results)
  in
  Alcotest.(check string) "sigil-stats document byte-identical across -j" (json sequential)
    (json parallel);
  let agg = Driver.Stats.aggregate sequential in
  Alcotest.(check int) "aggregate counts the runs" (List.length stats_specs)
    (geti agg "suite.runs");
  Alcotest.(check int) "no failures" 0 (geti agg "suite.failures")

let test_stats_collection_is_inert () =
  let run options =
    Driver.run_workload ~options (find_workload "canneal") small
  in
  let off = run Sigil.Options.default in
  let on_ = run Sigil.Options.(with_stats default) in
  Alcotest.(check bool) "off-run has no snapshot" true (off.Driver.stats = None);
  Alcotest.(check bool) "on-run has a snapshot" true (on_.Driver.stats <> None);
  Alcotest.(check int) "instruction clocks agree"
    (Dbi.Machine.now off.Driver.machine)
    (Dbi.Machine.now on_.Driver.machine);
  Alcotest.(check bool) "machine counters agree" true
    (Dbi.Machine.counters off.Driver.machine = Dbi.Machine.counters on_.Driver.machine);
  Alcotest.(check string) "profiles bit-identical"
    (Sigil.Profile_io.to_string (Driver.sigil off))
    (Sigil.Profile_io.to_string (Driver.sigil on_))

let () =
  Alcotest.run "telemetry"
    [
      ( "hist",
        [
          Alcotest.test_case "bucket goldens" `Quick test_hist_bucket_goldens;
          Alcotest.test_case "observe and trim" `Quick test_hist_observe;
          QCheck_alcotest.to_alcotest qcheck_bucket_invariant;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "of_samples combines" `Quick test_of_samples_combines;
          Alcotest.test_case "mismatches rejected" `Quick test_mismatch_rejected;
          Alcotest.test_case "domain split" `Quick test_domain_split;
          QCheck_alcotest.to_alcotest qcheck_merge_associative;
          QCheck_alcotest.to_alcotest qcheck_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_merge_identity;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "blackscholes exact counters" `Quick test_golden_blackscholes;
          Alcotest.test_case "dedup memory-limit evictions" `Quick test_golden_dedup_evictions;
          Alcotest.test_case "trace writer buffer bound" `Quick test_writer_buffer_bound;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "deterministic section is -j invariant" `Quick
            test_deterministic_j_invariance;
          Alcotest.test_case "collection never perturbs the run" `Quick
            test_stats_collection_is_inert;
        ] );
    ]
