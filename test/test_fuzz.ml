(* Property-based fuzzing: random guest programs, run under every tool at
   once, must satisfy the conservation laws that tie the layers together. *)

type action =
  | Op of int
  | Fp of int
  | Read of int * int
  | Write of int * int
  | Branch of bool
  | Call of prog

and prog = {
  name : string;
  actions : action list;
}

(* Straddle a chunk boundary (0x200000 is chunk-aligned, chunks are 4 KB)
   so random spans exercise the cross-chunk paths of the range engine. *)
let arena = 0x200000 - 16
let arena_size = 8192

let gen_prog =
  let open QCheck.Gen in
  let gen_leaf_action =
    oneof
      [
        map (fun n -> Op (1 + n)) (int_range 0 50);
        map (fun n -> Fp (1 + n)) (int_range 0 50);
        map2 (fun a s -> Read (arena + min a (arena_size - 8), 1 + s)) (int_range 0 (arena_size - 8)) (int_range 0 7);
        map2 (fun a s -> Write (arena + min a (arena_size - 8), 1 + s)) (int_range 0 (arena_size - 8)) (int_range 0 7);
        map (fun b -> Branch b) bool;
      ]
  in
  let gen_name = map (fun i -> Printf.sprintf "fn%d" i) (int_range 0 7) in
  fix
    (fun self depth ->
      let action =
        if depth = 0 then gen_leaf_action
        else frequency [ (4, gen_leaf_action); (1, map (fun p -> Call p) (self (depth - 1))) ]
      in
      map2 (fun name actions -> { name; actions }) gen_name (list_size (int_range 0 12) action))
    3

let rec interp m prog =
  Dbi.Guest.call m prog.name (fun () ->
      List.iter
        (function
          | Op n -> Dbi.Guest.iop m n
          | Fp n -> Dbi.Guest.flop m n
          | Read (a, s) -> Dbi.Guest.read m a s
          | Write (a, s) -> Dbi.Guest.write m a s
          | Branch b -> Dbi.Guest.branch m b
          | Call p -> interp m p)
        prog.actions)

let rec print_prog p =
  Printf.sprintf "%s[%s]" p.name
    (String.concat ";"
       (List.map
          (function
            | Op n -> Printf.sprintf "i%d" n
            | Fp n -> Printf.sprintf "f%d" n
            | Read (a, s) -> Printf.sprintf "r%d+%d" (a - arena) s
            | Write (a, s) -> Printf.sprintf "w%d+%d" (a - arena) s
            | Branch b -> if b then "b1" else "b0"
            | Call p -> print_prog p)
          p.actions))

let run_all prog =
  let sigil = ref None and cg = ref None in
  let r =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t =
              Sigil.Tool.create ~options:Sigil.Options.(with_events (with_reuse default)) m
            in
            sigil := Some t;
            Sigil.Tool.tool t);
          (fun m ->
            let t = Callgrind.Tool.create m in
            cg := Some t;
            Callgrind.Tool.tool t);
        ]
      (fun m -> interp m prog)
  in
  (Option.get !sigil, Option.get !cg, r.Dbi.Runner.machine)

let arbitrary = QCheck.make ~print:print_prog gen_prog

let prop_conservation =
  QCheck.Test.make ~name:"ops/bytes conserved across all layers" ~count:120 arbitrary
    (fun prog ->
      let sigil, cg, m = run_all prog in
      let c = Dbi.Machine.counters m in
      let profile = Sigil.Tool.profile sigil in
      let sigil_ops =
        List.fold_left
          (fun acc ctx ->
            let s = Sigil.Profile.stats profile ctx in
            acc + s.Sigil.Profile.int_ops + s.Sigil.Profile.fp_ops)
          0 (Sigil.Profile.contexts profile)
      in
      let _, read_total = Sigil.Profile.totals profile in
      let written =
        List.fold_left
          (fun acc ctx -> acc + (Sigil.Profile.stats profile ctx).Sigil.Profile.written)
          0 (Sigil.Profile.contexts profile)
      in
      let total_cost = Callgrind.Tool.total cg in
      sigil_ops = c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops
      && read_total = c.Dbi.Machine.read_bytes
      && written = c.Dbi.Machine.written_bytes
      && total_cost.Callgrind.Cost.ir
         = c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops + c.Dbi.Machine.reads
           + c.Dbi.Machine.writes + c.Dbi.Machine.branches
      && total_cost.Callgrind.Cost.bc = c.Dbi.Machine.branches)

let prop_unique_bounded =
  QCheck.Test.make ~name:"unique <= total everywhere" ~count:120 arbitrary (fun prog ->
      let sigil, _, _ = run_all prog in
      let profile = Sigil.Tool.profile sigil in
      let unique, total = Sigil.Profile.totals profile in
      unique <= total
      && List.for_all
           (fun (e : Sigil.Profile.edge) ->
             e.Sigil.Profile.unique_bytes <= e.Sigil.Profile.bytes && e.Sigil.Profile.bytes > 0)
           (Sigil.Profile.edges profile))

let prop_event_log_consistent =
  QCheck.Test.make ~name:"event log balanced and critpath bounded" ~count:120 arbitrary
    (fun prog ->
      let sigil, _, m = run_all prog in
      match Sigil.Tool.event_log sigil with
      | None -> false
      | Some log ->
        let calls, rets =
          List.fold_left
            (fun (c, r) -> function
              | Sigil.Event_log.Call _ -> (c + 1, r)
              | Sigil.Event_log.Ret _ -> (c, r + 1)
              | Sigil.Event_log.Comp _ | Sigil.Event_log.Xfer _ -> (c, r))
            (0, 0) (Sigil.Event_log.entries log)
        in
        let cp = Analysis.Critpath.analyze log in
        let c = Dbi.Machine.counters m in
        calls = rets
        && calls = c.Dbi.Machine.calls
        && Analysis.Critpath.serial_length cp = c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops
        && Analysis.Critpath.critical_path_length cp <= Analysis.Critpath.serial_length cp
        && Analysis.Critpath.parallelism cp >= 1.0 -. 1e-9)

let prop_cdfg_consistent =
  QCheck.Test.make ~name:"cdfg inclusive costs and breakevens sane" ~count:80 arbitrary
    (fun prog ->
      let sigil, cg, m = run_all prog in
      let cdfg = Analysis.Cdfg.build ~callgrind:cg sigil in
      let c = Dbi.Machine.counters m in
      let root = Analysis.Cdfg.root cdfg in
      root.Analysis.Cdfg.incl_ops = c.Dbi.Machine.int_ops + c.Dbi.Machine.fp_ops
      && List.for_all
           (fun ctx ->
             let n = Analysis.Cdfg.node cdfg ctx in
             n.Analysis.Cdfg.incl_input_unique <= n.Analysis.Cdfg.incl_input_total
             && n.Analysis.Cdfg.incl_output_unique <= n.Analysis.Cdfg.incl_output_total
             && n.Analysis.Cdfg.self_ops <= n.Analysis.Cdfg.incl_ops
             &&
             let s = Analysis.Partition.breakeven cdfg ctx in
             s >= 1.0 || s = infinity)
           (Analysis.Cdfg.contexts cdfg))

let prop_reuse_consistent =
  QCheck.Test.make ~name:"reuse version bins count every touched element" ~count:80 arbitrary
    (fun prog ->
      let sigil, _, _ = run_all prog in
      let bins = Sigil.Reuse.version_bins (Sigil.Tool.reuse sigil) in
      let elements = bins.Sigil.Reuse.zero + bins.Sigil.Reuse.low + bins.Sigil.Reuse.high in
      (* every distinct byte a program touches ends as at least one version,
         and versions cannot outnumber total byte-accesses *)
      let c = Dbi.Machine.counters (Sigil.Tool.machine sigil) in
      let touched_bytes = c.Dbi.Machine.read_bytes + c.Dbi.Machine.written_bytes in
      elements <= max 1 touched_bytes)

(* Differential check of the range-batched shadow engine: the same random
   program driven through Shadow.read_range/write_range (default) and
   through the per-byte reference loop must produce bit-identical profiles,
   event logs, and reuse statistics. *)
let run_differential prog options =
  let range = ref None and per_byte = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options m in
            range := Some t;
            Sigil.Tool.tool t);
          (fun m ->
            let t =
              Sigil.Tool.create ~options:(Sigil.Options.with_per_byte_shadow options) m
            in
            per_byte := Some t;
            Sigil.Tool.tool t);
        ]
      (fun m -> interp m prog)
  in
  (Option.get !range, Option.get !per_byte)

let profiles_equal a b =
  let ctxs p = Sigil.Profile.contexts p in
  let stats_of p ctx =
    let s = Sigil.Profile.stats p ctx in
    Sigil.Profile.
      ( s.input_unique, s.input_nonunique, s.local_unique, s.local_nonunique, s.written,
        s.int_ops, s.fp_ops, s.calls )
  in
  let edges p =
    List.sort compare
      (List.map
         (fun (e : Sigil.Profile.edge) ->
           (e.Sigil.Profile.src, e.Sigil.Profile.dst, e.Sigil.Profile.bytes,
            e.Sigil.Profile.unique_bytes))
         (Sigil.Profile.edges p))
  in
  ctxs a = ctxs b
  && List.for_all (fun ctx -> stats_of a ctx = stats_of b ctx) (ctxs a)
  && edges a = edges b

let prop_range_matches_per_byte =
  QCheck.Test.make ~name:"range engine bit-identical to per-byte reference" ~count:120
    arbitrary (fun prog ->
      let range, per_byte = run_differential prog Sigil.Options.(with_events (with_reuse default)) in
      let bins t = Sigil.Reuse.version_bins (Sigil.Tool.reuse t) in
      let log t = Sigil.Event_log.entries (Option.get (Sigil.Tool.event_log t)) in
      profiles_equal (Sigil.Tool.profile range) (Sigil.Tool.profile per_byte)
      && bins range = bins per_byte
      && log range = log per_byte)

let prop_range_matches_per_byte_limited =
  QCheck.Test.make ~name:"range engine matches per-byte under FIFO eviction" ~count:60
    arbitrary (fun prog ->
      (* max_chunks 1 forces evictions on every cross-chunk access; the
         arena spans two chunks, so random traces hit the mid-range path *)
      let options = Sigil.Options.(with_max_chunks (with_reuse default) 1) in
      let range, per_byte = run_differential prog options in
      profiles_equal (Sigil.Tool.profile range) (Sigil.Tool.profile per_byte)
      && Sigil.Reuse.version_bins (Sigil.Tool.reuse range)
         = Sigil.Reuse.version_bins (Sigil.Tool.reuse per_byte)
      && Sigil.Tool.shadow_evictions range = Sigil.Tool.shadow_evictions per_byte)

(* Single-tool runner for the line-shadow and telemetry properties. *)
let run_one options prog =
  let sigil = ref None in
  let _ =
    Dbi.Runner.run ~call_overhead:0
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create ~options m in
            sigil := Some t;
            Sigil.Tool.tool t);
        ]
      (fun m -> interp m prog)
  in
  Option.get !sigil

(* Reference model for the line shadow: per-line access counts computed
   straight off the action list, independent of any shadow machinery. *)
let rec line_counts tbl line_bits prog =
  List.iter
    (function
      | Read (a, s) | Write (a, s) ->
        for line = a lsr line_bits to (a + s - 1) lsr line_bits do
          Hashtbl.replace tbl line (1 + Option.value ~default:0 (Hashtbl.find_opt tbl line))
        done
      | Call p -> line_counts tbl line_bits p
      | Op _ | Fp _ | Branch _ -> ())
    prog.actions

let line_shadow_matches_reference line_size line_bits prog =
  let t = run_one (Sigil.Options.with_line_size Sigil.Options.default line_size) prog in
  let line = Option.get (Sigil.Tool.line_shadow t) in
  let tbl = Hashtbl.create 256 in
  line_counts tbl line_bits prog;
  let c = Dbi.Machine.counters (Sigil.Tool.machine t) in
  let s = Telemetry.of_samples (Sigil.Tool.telemetry t) in
  Sigil.Line_shadow.lines line = Hashtbl.length tbl
  && List.for_all
       (fun (r : Sigil.Line_shadow.line_record) ->
         Hashtbl.find_opt tbl r.Sigil.Line_shadow.line_addr
         = Some r.Sigil.Line_shadow.accesses)
       (Sigil.Line_shadow.records line)
  && Telemetry.get_int s "line.touches" = c.Dbi.Machine.reads + c.Dbi.Machine.writes
  && Telemetry.get_int s "line.accesses"
     = Hashtbl.fold (fun _ n acc -> acc + n) tbl 0

(* At 1-byte lines the line shadow IS a byte shadow: its records must agree
   exactly with the per-byte access counts of the action trace. *)
let prop_line_shadow_per_byte =
  QCheck.Test.make ~name:"line shadow at 1B lines matches per-byte reference" ~count:100
    arbitrary (fun prog -> line_shadow_matches_reference 1 0 prog)

(* Aligned accesses: every access covers exactly one 8-byte line, so the
   line-granularity and byte-granularity views must coincide line for
   line (the arena base is 16-byte aligned). *)
let gen_aligned_prog =
  let open QCheck.Gen in
  let gen_leaf_action =
    oneof
      [
        map (fun n -> Op (1 + n)) (int_range 0 50);
        map (fun a -> Read (arena + (8 * a), 8)) (int_range 0 ((arena_size / 8) - 1));
        map (fun a -> Write (arena + (8 * a), 8)) (int_range 0 ((arena_size / 8) - 1));
      ]
  in
  let gen_name = map (fun i -> Printf.sprintf "fn%d" i) (int_range 0 7) in
  fix
    (fun self depth ->
      let action =
        if depth = 0 then gen_leaf_action
        else frequency [ (4, gen_leaf_action); (1, map (fun p -> Call p) (self (depth - 1))) ]
      in
      map2 (fun name actions -> { name; actions }) gen_name (list_size (int_range 0 12) action))
    2

let prop_line_shadow_aligned =
  QCheck.Test.make ~name:"line shadow on aligned accesses matches reference" ~count:100
    (QCheck.make ~print:print_prog gen_aligned_prog)
    (fun prog -> line_shadow_matches_reference 8 3 prog)

(* The FIFO memory limit's accounting, read back through telemetry: chunks
   are conserved (allocated - evicted = live) and the cap really binds. *)
let prop_memory_limit_accounting =
  QCheck.Test.make ~name:"FIFO memory limit conserves chunk accounting" ~count:80
    QCheck.(pair arbitrary (1 -- 3))
    (fun (prog, cap) ->
      let t = run_one (Sigil.Options.with_max_chunks Sigil.Options.default cap) prog in
      let s = Telemetry.of_samples (Sigil.Tool.telemetry t) in
      let g = Telemetry.get_int s in
      let c = Dbi.Machine.counters (Sigil.Tool.machine t) in
      g "shadow.chunks_live" = g "shadow.chunks_allocated" - g "shadow.evictions"
      && g "shadow.chunks_live" <= cap
      && g "shadow.chunks_peak" <= cap
      && g "shadow.evictions" = Sigil.Tool.shadow_evictions t
      && g "shadow.range_reads" = c.Dbi.Machine.reads
      && g "shadow.range_read_bytes" = c.Dbi.Machine.read_bytes)

(* Options.collect_stats gates only end-of-run snapshot assembly; the run
   itself — profile, reuse bins, event log, machine counters — must be
   bit-identical with it on and off. *)
let prop_stats_flag_inert =
  QCheck.Test.make ~name:"stats collection never perturbs the run" ~count:60 arbitrary
    (fun prog ->
      let base = Sigil.Options.(with_events (with_reuse default)) in
      let off = run_one base prog in
      let on_ = run_one (Sigil.Options.with_stats base) prog in
      let entries t = Sigil.Event_log.entries (Option.get (Sigil.Tool.event_log t)) in
      profiles_equal (Sigil.Tool.profile off) (Sigil.Tool.profile on_)
      && Sigil.Reuse.version_bins (Sigil.Tool.reuse off)
         = Sigil.Reuse.version_bins (Sigil.Tool.reuse on_)
      && entries off = entries on_
      && Dbi.Machine.counters (Sigil.Tool.machine off)
         = Dbi.Machine.counters (Sigil.Tool.machine on_)
      && Telemetry.equal
           (Telemetry.of_samples (Sigil.Tool.telemetry off))
           (Telemetry.of_samples (Sigil.Tool.telemetry on_)))

let prop_trace_replay_identical =
  QCheck.Test.make ~name:"trace replay reproduces the profile" ~count:40 arbitrary (fun prog ->
      let path = Filename.temp_file "fuzz_trace" ".txt" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let original =
            Dbi.Trace.record path (fun m ->
                (* record runs with default overhead; fine, it is recorded *)
                interp m prog)
          in
          let replayed_tool = ref None in
          let _ =
            Dbi.Trace.replay
              ~tools:
                [
                  (fun m ->
                    let t = Sigil.Tool.create m in
                    replayed_tool := Some t;
                    Sigil.Tool.tool t);
                ]
              path
          in
          let replayed = Sigil.Tool.machine (Option.get !replayed_tool) in
          Dbi.Machine.now original = Dbi.Machine.now replayed
          && Dbi.Context.count (Dbi.Machine.contexts original)
             = Dbi.Context.count (Dbi.Machine.contexts replayed)))

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_conservation;
            prop_unique_bounded;
            prop_event_log_consistent;
            prop_cdfg_consistent;
            prop_reuse_consistent;
            prop_range_matches_per_byte;
            prop_range_matches_per_byte_limited;
            prop_line_shadow_per_byte;
            prop_line_shadow_aligned;
            prop_memory_limit_accounting;
            prop_stats_flag_inert;
            prop_trace_replay_identical;
          ] );
    ]
