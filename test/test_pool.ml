(* The domain pool behind Driver.run_many: sizing, submission-order
   results, exception propagation out of worker domains, nesting, and
   shutdown behavior. *)

let test_sizing () =
  Pool.with_pool ~domains:3 (fun p -> Alcotest.(check int) "size 3" 3 (Pool.size p));
  Pool.with_pool ~domains:1 (fun p -> Alcotest.(check int) "size 1" 1 (Pool.size p));
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  let r = Pool.recommended () in
  Alcotest.(check bool) "recommended in [1, 8]" true (r >= 1 && r <= 8);
  Alcotest.(check int) "recommended respects cap" 1 (Pool.recommended ~cap:1 ())

let test_map_ordering () =
  let items = List.init 100 (fun i -> i) in
  let expected = List.map (fun i -> i * i) items in
  Pool.with_pool ~domains:4 (fun p ->
      Alcotest.(check (list int)) "results in submission order" expected
        (Pool.map p (fun i -> i * i) items));
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check (list int)) "sequential pool agrees" expected
        (Pool.map p (fun i -> i * i) items))

let test_map_empty_and_run () =
  Pool.with_pool ~domains:2 (fun p ->
      Alcotest.(check (list int)) "empty map" [] (Pool.map p (fun i -> i) []);
      Alcotest.(check (list string)) "run keeps thunk order" [ "a"; "b"; "c" ]
        (Pool.run p [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ]))

let test_exception_propagation () =
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.check_raises "first failing index wins" (Failure "boom 4") (fun () ->
          ignore
            (Pool.map p
               (fun i -> if i >= 4 then failwith (Printf.sprintf "boom %d" i) else i)
               (List.init 32 (fun i -> i)))))

let test_pool_survives_failed_batch () =
  Pool.with_pool ~domains:2 (fun p ->
      (try ignore (Pool.map p (fun () -> failwith "once") [ () ]) with Failure _ -> ());
      Alcotest.(check (list int)) "pool still works after a failed batch" [ 1; 2; 3 ]
        (Pool.map p (fun i -> i) [ 1; 2; 3 ]))

let test_nested_map () =
  Pool.with_pool ~domains:2 (fun p ->
      let table =
        Pool.map p (fun row -> Pool.map p (fun col -> (row * 10) + col) [ 0; 1; 2 ]) [ 1; 2; 3 ]
      in
      Alcotest.(check (list (list int)))
        "nested maps complete and stay ordered"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
        table)

(* The no-deadlock contract Driver's Isolate fault policy builds on: a
   raising task never prevents the rest of its batch from running. *)
let test_failed_batch_runs_every_task () =
  let n = 64 in
  let ran = Array.make n false in
  Pool.with_pool ~domains:3 (fun p ->
      (try
         ignore
           (Pool.map p
              (fun i ->
                ran.(i) <- true;
                if i mod 5 = 0 then failwith (Printf.sprintf "boom %d" i))
              (List.init n (fun i -> i)))
       with Failure _ -> ());
      Alcotest.(check bool) "every task ran despite the failures" true
        (Array.for_all Fun.id ran))

let test_failed_nested_map_no_deadlock () =
  (* a raising task inside a nested batch must neither hang the outer map
     nor stop sibling rows: the outer map re-raises, and the pool stays
     usable *)
  Pool.with_pool ~domains:2 (fun p ->
      let rows_done = Array.make 4 false in
      Alcotest.check_raises "inner failure propagates out of the outer map"
        (Failure "inner boom") (fun () ->
          ignore
            (Pool.map p
               (fun row ->
                 let r =
                   Pool.map p
                     (fun col ->
                       if row = 1 && col = 1 then failwith "inner boom";
                       (row * 10) + col)
                     [ 0; 1; 2 ]
                 in
                 rows_done.(row) <- true;
                 r)
               [ 0; 1; 2; 3 ]));
      Alcotest.(check bool) "sibling rows still completed" true
        (rows_done.(0) && rows_done.(2) && rows_done.(3));
      Alcotest.(check (list int)) "pool usable after nested failure" [ 2; 4 ]
        (Pool.map p (fun i -> 2 * i) [ 1; 2 ]))

let test_with_pool_reraises_after_shutdown () =
  (* with_pool must re-raise the body's exception only after joining its
     workers; observable as: the exception escapes and no pool state leaks
     (a fresh pool still works) *)
  Alcotest.check_raises "body exception re-raised" (Failure "body") (fun () ->
      Pool.with_pool ~domains:3 (fun p ->
          ignore (Pool.map p (fun i -> i) [ 1; 2; 3 ]);
          failwith "body"));
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.(check (list int)) "fresh pool after aborted with_pool" [ 1; 2; 3 ]
        (Pool.map p Fun.id [ 1; 2; 3 ]))

let test_task_accounting () =
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.(check int) "fresh pool: no tasks" 0 (Pool.tasks p);
      Alcotest.(check int) "fresh pool: no batches" 0 (Pool.batches p);
      ignore (Pool.map p (fun i -> i) (List.init 100 (fun i -> i)));
      ignore (Pool.run p [ (fun () -> ()); (fun () -> ()) ]);
      Alcotest.(check int) "tasks accumulate across batches" 102 (Pool.tasks p);
      Alcotest.(check int) "one batch per map/run" 2 (Pool.batches p);
      let counts = Pool.task_counts p in
      Alcotest.(check int) "one slot per domain" 3 (Array.length counts);
      Alcotest.(check int) "per-domain counts partition the tasks" 102
        (Array.fold_left ( + ) 0 counts));
  (* a 1-domain pool spawns no workers: the caller drains everything *)
  Pool.with_pool ~domains:1 (fun p ->
      ignore (Pool.map p (fun i -> i) [ 1; 2; 3 ]);
      Alcotest.(check (array int)) "caller slot owns every task" [| 3 |] (Pool.task_counts p))

let test_telemetry_wall_only () =
  Pool.with_pool ~domains:2 (fun p ->
      ignore (Pool.map p (fun i -> i) [ 1; 2; 3; 4 ]);
      let samples = Pool.telemetry p in
      Alcotest.(check bool) "every pool metric is wall-clock" true
        (List.for_all (fun s -> s.Telemetry.domain = Telemetry.Wall) samples);
      let s = Telemetry.of_samples samples in
      Alcotest.(check int) "pool.tasks" 4 (Telemetry.get_int s "pool.tasks");
      Alcotest.(check int) "pool.batches" 1 (Telemetry.get_int s "pool.batches");
      Alcotest.(check int) "pool.domains" 2 (Telemetry.get_int s "pool.domains");
      Alcotest.(check int) "per-domain samples partition the tasks" 4
        (Telemetry.get_int s "pool.tasks_domain0" + Telemetry.get_int s "pool.tasks_domain1"))

(* The accounting on the task hot path is two fetch-and-adds and a DLS
   read — it must not allocate. Measured as the per-task minor-heap slope
   of a batch of no-op tasks on a caller-only pool (1 domain, so every
   task and its accounting run on the domain whose counter we read); the
   bound leaves room for the map plumbing (per-task closure, queue cell,
   result cell) but would trip on any boxing added to the accounting. *)
let test_accounting_does_not_allocate () =
  Pool.with_pool ~domains:1 (fun p ->
      let small = List.init 256 (fun i -> i) in
      let large = List.init 1024 (fun i -> i) in
      let f _ = () in
      ignore (Pool.map p f small);
      (* warm-up: DLS slot, queue growth *)
      ignore (Pool.map p f large);
      let words items =
        let before = Gc.minor_words () in
        ignore (Pool.map p f items);
        Gc.minor_words () -. before
      in
      let per_task = (words large -. words small) /. float_of_int (1024 - 256) in
      Alcotest.(check bool)
        (Printf.sprintf "per-task minor words %.1f <= 64" per_task)
        true (per_task <= 64.0))

let test_shutdown () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map p (fun i -> i) [ 1 ]))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty map and run" `Quick test_map_empty_and_run;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "survives failed batch" `Quick test_pool_survives_failed_batch;
          Alcotest.test_case "failed batch runs every task" `Quick
            test_failed_batch_runs_every_task;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "failed nested map no deadlock" `Quick
            test_failed_nested_map_no_deadlock;
          Alcotest.test_case "with_pool re-raises after shutdown" `Quick
            test_with_pool_reraises_after_shutdown;
          Alcotest.test_case "task accounting" `Quick test_task_accounting;
          Alcotest.test_case "telemetry is wall-only" `Quick test_telemetry_wall_only;
          Alcotest.test_case "accounting does not allocate" `Quick
            test_accounting_does_not_allocate;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
    ]
