(* The domain pool behind Driver.run_many: sizing, submission-order
   results, exception propagation out of worker domains, nesting, and
   shutdown behavior. *)

let test_sizing () =
  Pool.with_pool ~domains:3 (fun p -> Alcotest.(check int) "size 3" 3 (Pool.size p));
  Pool.with_pool ~domains:1 (fun p -> Alcotest.(check int) "size 1" 1 (Pool.size p));
  Alcotest.check_raises "zero domains rejected"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  let r = Pool.recommended () in
  Alcotest.(check bool) "recommended in [1, 8]" true (r >= 1 && r <= 8);
  Alcotest.(check int) "recommended respects cap" 1 (Pool.recommended ~cap:1 ())

let test_map_ordering () =
  let items = List.init 100 (fun i -> i) in
  let expected = List.map (fun i -> i * i) items in
  Pool.with_pool ~domains:4 (fun p ->
      Alcotest.(check (list int)) "results in submission order" expected
        (Pool.map p (fun i -> i * i) items));
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check (list int)) "sequential pool agrees" expected
        (Pool.map p (fun i -> i * i) items))

let test_map_empty_and_run () =
  Pool.with_pool ~domains:2 (fun p ->
      Alcotest.(check (list int)) "empty map" [] (Pool.map p (fun i -> i) []);
      Alcotest.(check (list string)) "run keeps thunk order" [ "a"; "b"; "c" ]
        (Pool.run p [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ]))

let test_exception_propagation () =
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.check_raises "first failing index wins" (Failure "boom 4") (fun () ->
          ignore
            (Pool.map p
               (fun i -> if i >= 4 then failwith (Printf.sprintf "boom %d" i) else i)
               (List.init 32 (fun i -> i)))))

let test_pool_survives_failed_batch () =
  Pool.with_pool ~domains:2 (fun p ->
      (try ignore (Pool.map p (fun () -> failwith "once") [ () ]) with Failure _ -> ());
      Alcotest.(check (list int)) "pool still works after a failed batch" [ 1; 2; 3 ]
        (Pool.map p (fun i -> i) [ 1; 2; 3 ]))

let test_nested_map () =
  Pool.with_pool ~domains:2 (fun p ->
      let table =
        Pool.map p (fun row -> Pool.map p (fun col -> (row * 10) + col) [ 0; 1; 2 ]) [ 1; 2; 3 ]
      in
      Alcotest.(check (list (list int)))
        "nested maps complete and stay ordered"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
        table)

let test_shutdown () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map p (fun i -> i) [ 1 ]))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty map and run" `Quick test_map_empty_and_run;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "survives failed batch" `Quick test_pool_survives_failed_batch;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
    ]
