(* Streaming critical-path analysis over binary traces must be
   bit-identical to the in-memory path: for every PARSEC workload at
   simsmall, one run feeds both an in-memory log and the binary writer
   (via tee), then analyze (in-memory), analyze_stream (binary reader)
   and summarize_stream must agree on every number. *)

open Sigil

let with_temp f =
  let path = Filename.temp_file "sigil_cps" ".tf" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let check_workload (w : Workloads.Workload.t) =
  with_temp (fun path ->
      let options = Sigil.Options.(with_events default) in
      let log = Event_log.create () in
      let writer = Tracefile.Writer.create ~options path in
      let r =
        Driver.run_workload ~options
          ~event_sink:(Event_log.tee (Event_log.memory_sink log) (Tracefile.Writer.sink writer))
          w Workloads.Scale.Simsmall
      in
      let m = r.Driver.machine in
      Tracefile.Writer.close ~symbols:(Dbi.Machine.symbols m)
        ~contexts:(Dbi.Machine.contexts m) writer;
      let reader = Tracefile.Reader.open_file path in
      Fun.protect
        ~finally:(fun () -> Tracefile.Reader.close reader)
        (fun () ->
          let name = w.Workloads.Workload.name in
          Alcotest.(check int)
            (name ^ " entry count")
            (Event_log.length log)
            (Tracefile.Reader.entry_count reader);
          let mem = Analysis.Critpath.analyze log in
          let strm = Analysis.Critpath.analyze_stream (Tracefile.Reader.iter reader) in
          Alcotest.(check int)
            (name ^ " serial")
            (Analysis.Critpath.serial_length mem)
            (Analysis.Critpath.serial_length strm);
          Alcotest.(check int)
            (name ^ " critical")
            (Analysis.Critpath.critical_path_length mem)
            (Analysis.Critpath.critical_path_length strm);
          Alcotest.(check int)
            (name ^ " nodes")
            (Analysis.Critpath.node_count mem)
            (Analysis.Critpath.node_count strm);
          Alcotest.(check (float 0.0))
            (name ^ " parallelism")
            (Analysis.Critpath.parallelism mem)
            (Analysis.Critpath.parallelism strm);
          Alcotest.(check (list int))
            (name ^ " critical path contexts")
            (Analysis.Critpath.critical_path_contexts mem)
            (Analysis.Critpath.critical_path_contexts strm);
          let s = Analysis.Critpath.summarize_stream (Tracefile.Reader.iter reader) in
          Alcotest.(check int)
            (name ^ " summary serial")
            (Analysis.Critpath.serial_length mem)
            s.Analysis.Critpath.s_serial;
          Alcotest.(check int)
            (name ^ " summary critical")
            (Analysis.Critpath.critical_path_length mem)
            s.Analysis.Critpath.s_critical;
          Alcotest.(check int)
            (name ^ " summary fragments")
            (Analysis.Critpath.node_count mem)
            s.Analysis.Critpath.s_fragments))

let tests =
  List.map
    (fun (w : Workloads.Workload.t) ->
      Alcotest.test_case w.Workloads.Workload.name `Slow (fun () -> check_workload w))
    Workloads.Suite.parsec

let () = Alcotest.run "critpath_stream" [ ("parsec simsmall", tests) ]
