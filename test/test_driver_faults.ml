(* Fault-isolated batch execution (ISSUE 4 tentpole a): a crashing
   workload under [Isolate] is captured as a structured [Run_error] while
   every other job completes bit-identically to a clean run; [Fail_fast]
   keeps the historical raise-through behaviour; the wall-clock and
   instruction-budget guards surface as their own causes. *)

let small = Workloads.Scale.Simsmall

let crasher =
  {
    Workloads.Workload.name = "crasher";
    suite = Workloads.Workload.Parsec;
    description = "always raises mid-run (fault-injection test workload)";
    run = (fun m _ ->
      (* do a little real work first so the crash lands mid-stream, with
         live calls on the machine's stack *)
      let _ = Dbi.Machine.enter m "doomed" in
      Dbi.Machine.op m Dbi.Event.Int_op 100;
      failwith "injected crash");
  }

let parsec_jobs () = List.map (fun w -> Driver.job w small) Workloads.Suite.parsec

let profile_of run = Sigil.Profile_io.to_string (Driver.sigil run)

let fingerprint profiles = Digest.to_hex (Digest.string (String.concat "\n" profiles))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* Acceptance criterion: 13 workloads + one always-crashing one under
   Isolate -> exactly one Run_error, and the 13 survivors' profiles are
   bit-identical to a clean run's (fingerprint unchanged). *)
let test_isolate_completes_surviving_jobs () =
  let clean =
    List.map
      (function
        | Ok r -> profile_of r
        | Error e -> Alcotest.failf "clean run failed: %s" (Driver.Run_error.to_string e))
      (Driver.run_many (parsec_jobs ()))
  in
  let with_crasher () =
    let jobs = parsec_jobs () in
    let mid = List.length jobs / 2 in
    List.concat
      [
        List.filteri (fun i _ -> i < mid) jobs;
        [ Driver.job crasher small ];
        List.filteri (fun i _ -> i >= mid) jobs;
      ]
  in
  let check_results results =
    let oks, errors =
      List.partition_map
        (function Ok r -> Left (profile_of r) | Error e -> Right e)
        results
    in
    Alcotest.(check int) "exactly one Run_error" 1 (List.length errors);
    let e = List.hd errors in
    Alcotest.(check string) "error names the workload" "crasher" e.Driver.Run_error.workload;
    (match e.Driver.Run_error.cause with
    | Driver.Run_error.Raised msg ->
      Alcotest.(check bool) "cause carries the original message" true
        (contains ~sub:"injected crash" msg)
    | _ -> Alcotest.fail "expected a Raised cause");
    Alcotest.(check int) "all other workloads completed" (List.length clean) (List.length oks);
    Alcotest.(check string) "survivors bit-identical to clean run" (fingerprint clean)
      (fingerprint oks)
  in
  (* sequential *)
  check_results (Driver.run_many ~fault_policy:Driver.Isolate (with_crasher ()));
  (* and fanned over a pool: the crash must not poison other domains *)
  check_results
    (Pool.with_pool ~domains:3 (fun p ->
         Driver.run_many ~pool:p ~fault_policy:Driver.Isolate (with_crasher ())))

let test_fail_fast_raises_through () =
  let jobs = [ Driver.job crasher small; Driver.job (List.hd Workloads.Suite.parsec) small ] in
  (match Driver.run_many jobs with
  | _ -> Alcotest.fail "Fail_fast swallowed the crash"
  | exception Failure msg -> Alcotest.(check string) "original exception" "injected crash" msg);
  match Pool.with_pool ~domains:2 (fun p -> Driver.run_many ~pool:p jobs) with
  | _ -> Alcotest.fail "pooled Fail_fast swallowed the crash"
  | exception Failure msg -> Alcotest.(check string) "original exception" "injected crash" msg

let test_unresolved_workload_cause () =
  match
    Driver.run_suite ~fault_policy:Driver.Isolate [ ("blackscholes", small); ("nope", small) ]
  with
  | [ Ok _; Error e ] -> (
    match e.Driver.Run_error.cause with
    | Driver.Run_error.Unresolved _ ->
      Alcotest.(check string) "error names the spec" "nope" e.Driver.Run_error.workload
    | _ -> Alcotest.fail "expected an Unresolved cause")
  | _ -> Alcotest.fail "expected [Ok; Error] aligned with specs"

let test_instruction_budget_guard () =
  let options = Sigil.Options.with_instr_budget Sigil.Options.default 1000 in
  (* direct run: the guard exception escapes *)
  (match
     Driver.run_workload ~options (List.hd Workloads.Suite.parsec) small
   with
  | _ -> Alcotest.fail "budget guard never tripped"
  | exception Dbi.Machine.Budget_exhausted { budget; now } ->
    Alcotest.(check int) "budget echoed" 1000 budget;
    Alcotest.(check bool) "tripped just past the budget" true (now > 1000));
  (* under Isolate it becomes a structured cause *)
  match
    Driver.run_many ~fault_policy:Driver.Isolate
      [ Driver.job ~options (List.hd Workloads.Suite.parsec) small ]
  with
  | [ Error { Driver.Run_error.cause = Driver.Run_error.Budget_exhausted { budget; _ }; _ } ] ->
    Alcotest.(check int) "cause carries the budget" 1000 budget
  | _ -> Alcotest.fail "expected one Budget_exhausted Run_error"

let test_timeout_guard () =
  (* a zero-second limit trips on the first probe, deterministically *)
  let options = Sigil.Options.with_timeout Sigil.Options.default 0.0 in
  match
    Driver.run_many ~fault_policy:Driver.Isolate
      [ Driver.job ~options (List.hd Workloads.Suite.parsec) small ]
  with
  | [ Error { Driver.Run_error.cause = Driver.Run_error.Timeout { limit_s; _ }; _ } ] ->
    Alcotest.(check (float 0.0)) "cause carries the limit" 0.0 limit_s
  | [ Error e ] -> Alcotest.failf "wrong cause: %s" (Driver.Run_error.to_string e)
  | _ -> Alcotest.fail "expected one Timeout Run_error"

let test_run_error_rendering () =
  let e =
    {
      Driver.Run_error.workload = "dedup";
      scale = small;
      cause = Driver.Run_error.Budget_exhausted { budget = 10; now = 11 };
      backtrace = "";
    }
  in
  Alcotest.(check string) "one-line rendering"
    "dedup@simsmall: instruction budget 10 exhausted (clock 11)"
    (Driver.Run_error.to_string e)

let () =
  Alcotest.run "driver_faults"
    [
      ( "isolate",
        [
          Alcotest.test_case "crasher isolated, 13 survivors bit-identical" `Quick
            test_isolate_completes_surviving_jobs;
          Alcotest.test_case "fail-fast raises through" `Quick test_fail_fast_raises_through;
          Alcotest.test_case "unresolved workload cause" `Quick test_unresolved_workload_cause;
        ] );
      ( "guards",
        [
          Alcotest.test_case "instruction budget" `Quick test_instruction_budget_guard;
          Alcotest.test_case "wall-clock timeout" `Quick test_timeout_guard;
          Alcotest.test_case "Run_error.to_string" `Quick test_run_error_rendering;
        ] );
    ]
