(* Binary event-trace format: varint/codec round-trips (including extreme
   values), chunk framing, corruption diagnostics with chunk offsets,
   parallel decode, text<->binary conversion and the size/memory bounds
   the format exists for. *)

open Sigil

let entry = Alcotest.testable (fun ppf e -> Fmt.string ppf (Event_log.entry_to_string e)) ( = )

let with_temp ext f =
  let path = Filename.temp_file "sigil_tracefile" ext in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let sample_entries =
  [
    Event_log.Comp { ctx = 0; call = 0; int_ops = 10; fp_ops = 0 };
    Event_log.Call { ctx = 1; call = 1 };
    Event_log.Comp { ctx = 1; call = 1; int_ops = 10; fp_ops = 2 };
    Event_log.Xfer
      { src_ctx = 0; src_call = 0; dst_ctx = 1; dst_call = 1; bytes = 64; unique_bytes = 32 };
    Event_log.Xfer
      { src_ctx = 0; src_call = 0; dst_ctx = 1; dst_call = 1; bytes = 64; unique_bytes = 64 };
    Event_log.Ret { ctx = 1; call = 1 };
    Event_log.Comp { ctx = 0; call = 0; int_ops = 3; fp_ops = 0 };
  ]

(* ---------------------------------------------------------------- *)
(* Varints                                                          *)
(* ---------------------------------------------------------------- *)

let test_varint_cases () =
  let roundtrip n =
    let buf = Buffer.create 16 in
    Tracefile.Varint.write_signed buf n;
    let b = Buffer.to_bytes buf in
    let pos = ref 0 in
    let n' = Tracefile.Varint.read_signed b ~pos in
    Alcotest.(check int) (Printf.sprintf "signed %d" n) n n';
    Alcotest.(check int) "consumed all" (Bytes.length b) !pos
  in
  List.iter roundtrip
    [ 0; 1; -1; 63; 64; 127; 128; 16383; 16384; -16384; max_int; min_int; max_int - 1 ];
  let buf = Buffer.create 16 in
  Tracefile.Varint.write buf max_int;
  let b = Buffer.to_bytes buf in
  Alcotest.(check int) "max_int unsigned" max_int (Tracefile.Varint.read b ~pos:(ref 0))

let test_varint_truncated () =
  let buf = Buffer.create 16 in
  Tracefile.Varint.write buf 1_000_000;
  let b = Bytes.sub (Buffer.to_bytes buf) 0 (Buffer.length buf - 1) in
  match Tracefile.Varint.read b ~pos:(ref 0) with
  | exception Tracefile.Varint.Truncated -> ()
  | v -> Alcotest.failf "truncated varint decoded to %d" v

let qcheck_entry_gen =
  let open QCheck.Gen in
  let pos_int = oneof [ int_range 0 1000; int_range 0 max_int ] in
  let any_int = oneof [ int_range (-1000) 1000; int_range min_int max_int ] in
  oneof
    [
      map2 (fun ctx call -> Event_log.Call { ctx; call }) any_int any_int;
      map2 (fun ctx call -> Event_log.Ret { ctx; call }) any_int any_int;
      map3
        (fun ctx call (int_ops, fp_ops) -> Event_log.Comp { ctx; call; int_ops; fp_ops })
        any_int any_int
        (pair pos_int pos_int);
      map3
        (fun (src_ctx, src_call) (dst_ctx, dst_call) (bytes, unique_bytes) ->
          Event_log.Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes })
        (pair any_int any_int) (pair any_int any_int) (pair pos_int pos_int);
    ]

let qcheck_entry =
  QCheck.make ~print:(fun e -> Event_log.entry_to_string e) qcheck_entry_gen

(* entry -> binary -> entry through the chunk codec, including extreme
   63-bit values (zigzag varints must round-trip min_int/max_int) *)
let codec_roundtrip =
  QCheck.Test.make ~name:"entry binary codec roundtrip" ~count:500
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50) qcheck_entry)
    (fun entries ->
      let buf = Buffer.create 1024 in
      let d = Tracefile.Frame.delta () in
      List.iter (Tracefile.Frame.encode_entry d buf) entries;
      let b = Buffer.to_bytes buf in
      let d' = Tracefile.Frame.delta () in
      let pos = ref 0 in
      let decoded = List.map (fun _ -> Tracefile.Frame.decode_entry d' b ~pos) entries in
      !pos = Bytes.length b && decoded = entries)

(* ---------------------------------------------------------------- *)
(* File round-trips                                                 *)
(* ---------------------------------------------------------------- *)

let write_entries ?chunk_bytes entries path =
  let w = Tracefile.Writer.create ?chunk_bytes path in
  List.iter (Tracefile.Writer.add w) entries;
  Tracefile.Writer.close w;
  w

let read_entries path =
  let r = Tracefile.Reader.open_file path in
  Fun.protect
    ~finally:(fun () -> Tracefile.Reader.close r)
    (fun () ->
      let acc = ref [] in
      Tracefile.Reader.iter r (fun e -> acc := e :: !acc);
      List.rev !acc)

let test_file_roundtrip () =
  with_temp ".tf" (fun path ->
      let _w = write_entries sample_entries path in
      Alcotest.(check (list entry)) "roundtrip" sample_entries (read_entries path))

let test_multichunk_roundtrip () =
  (* tiny chunks force many chunk boundaries; delta state must reset at
     each so every chunk decodes on its own *)
  let entries = List.concat (List.init 100 (fun _ -> sample_entries)) in
  with_temp ".tf" (fun path ->
      let w = write_entries ~chunk_bytes:64 entries path in
      Alcotest.(check bool) "several chunks" true (Tracefile.Writer.chunks w > 5);
      Alcotest.(check (list entry)) "roundtrip" entries (read_entries path);
      let r = Tracefile.Reader.open_file path in
      Fun.protect
        ~finally:(fun () -> Tracefile.Reader.close r)
        (fun () ->
          Alcotest.(check int) "entry count" (List.length entries)
            (Tracefile.Reader.entry_count r);
          Tracefile.Reader.validate r;
          (* parallel per-chunk decode sees the same entries in order *)
          Pool.with_pool ~domains:2 (fun pool ->
              let per_chunk =
                Tracefile.Reader.map_chunks ~pool r (fun _ arr -> Array.to_list arr)
              in
              Alcotest.(check (list entry)) "map_chunks" entries (List.concat per_chunk))))

let test_qcheck_file_roundtrip =
  QCheck.Test.make ~name:"file roundtrip (random logs, tiny chunks)" ~count:50
    (QCheck.list_of_size (QCheck.Gen.int_range 0 200) qcheck_entry)
    (fun entries ->
      with_temp ".tf" (fun path ->
          let _ = write_entries ~chunk_bytes:32 entries path in
          read_entries path = entries))

(* ---------------------------------------------------------------- *)
(* Corruption diagnostics                                           *)
(* ---------------------------------------------------------------- *)

let check_corrupt_at ~expected_offset f =
  match f () with
  | exception Tracefile.Frame.Corrupt { offset; _ } ->
    Alcotest.(check int) "offending chunk offset" expected_offset offset
  | _ -> Alcotest.fail "damaged file accepted"

let test_truncated_file () =
  let entries = List.concat (List.init 200 (fun _ -> sample_entries)) in
  with_temp ".tf" (fun path ->
      let _ = write_entries ~chunk_bytes:128 entries path in
      let offsets =
        let r = Tracefile.Reader.open_file path in
        Fun.protect
          ~finally:(fun () -> Tracefile.Reader.close r)
          (fun () -> Tracefile.Reader.chunk_offsets r)
      in
      let last_offset = List.nth offsets (List.length offsets - 1) in
      (* cut mid-way through the last chunk's payload: the trailer (and
         index) vanish, so open must re-scan the framing and name the
         first incomplete chunk *)
      let data = In_channel.with_open_bin path In_channel.input_all in
      with_temp ".tf" (fun cut_path ->
          Out_channel.with_open_bin cut_path (fun oc ->
              Out_channel.output_string oc (String.sub data 0 (last_offset + 20)));
          check_corrupt_at ~expected_offset:last_offset (fun () ->
              Tracefile.Reader.open_file cut_path)))

let test_corrupted_crc () =
  let entries = List.concat (List.init 200 (fun _ -> sample_entries)) in
  with_temp ".tf" (fun path ->
      let _ = write_entries ~chunk_bytes:128 entries path in
      let victim =
        let r = Tracefile.Reader.open_file path in
        Fun.protect
          ~finally:(fun () -> Tracefile.Reader.close r)
          (fun () -> List.nth (Tracefile.Reader.chunk_offsets r) 2)
      in
      (* flip one payload byte; the trailer and index stay intact, so the
         file opens fine and the damage surfaces when the chunk decodes *)
      let data = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      let target = victim + 16 + 3 (* inside chunk 2's payload *) in
      Bytes.set data target (Char.chr (Char.code (Bytes.get data target) lxor 0xff));
      with_temp ".tf" (fun bad_path ->
          Out_channel.with_open_bin bad_path (fun oc ->
              Out_channel.output_bytes oc data);
          let r = Tracefile.Reader.open_file bad_path in
          Fun.protect
            ~finally:(fun () -> Tracefile.Reader.close r)
            (fun () ->
              check_corrupt_at ~expected_offset:victim (fun () ->
                  Tracefile.Reader.iter r ignore);
              check_corrupt_at ~expected_offset:victim (fun () ->
                  Tracefile.Reader.validate r))))

let test_not_a_tracefile () =
  with_temp ".txt" (fun path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "C 1 1\n");
      Alcotest.(check bool) "sniff" false (Tracefile.Reader.is_tracefile path);
      match Tracefile.Reader.open_file path with
      | exception Tracefile.Frame.Corrupt { offset = 0; _ } -> ()
      | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "text file opened as tracefile")

(* ---------------------------------------------------------------- *)
(* Converter                                                        *)
(* ---------------------------------------------------------------- *)

let test_convert_roundtrip () =
  let log = Event_log.create () in
  List.iter (Event_log.add log) sample_entries;
  with_temp ".txt" (fun txt ->
      Event_log.save log txt;
      with_temp ".tf" (fun tf ->
          let n = Tracefile.Convert.text_to_binary ~chunk_bytes:64 txt tf in
          Alcotest.(check int) "entry count" (List.length sample_entries) n;
          Alcotest.(check bool) "binary sniff" true (Tracefile.Reader.is_tracefile tf);
          with_temp ".txt" (fun txt2 ->
              let n' = Tracefile.Convert.binary_to_text tf txt2 in
              Alcotest.(check int) "entry count back" n n';
              Alcotest.(check (list entry)) "text->binary->text" sample_entries
                (Event_log.entries (Event_log.load txt2)))))

(* ---------------------------------------------------------------- *)
(* Live runs: embedded tables, memory bound, size bound             *)
(* ---------------------------------------------------------------- *)

let find_workload name =
  match Workloads.Suite.find name with Ok w -> w | Error e -> Alcotest.fail e

let test_embedded_tables () =
  with_temp ".tf" (fun path ->
      let options = Sigil.Options.(with_events default) in
      let w = Tracefile.Writer.create ~options path in
      let r =
        Driver.run_workload ~options ~event_sink:(Tracefile.Writer.sink w)
          (find_workload "blackscholes") Workloads.Scale.Simsmall
      in
      let m = r.Driver.machine in
      Tracefile.Writer.close ~symbols:(Dbi.Machine.symbols m) ~contexts:(Dbi.Machine.contexts m) w;
      let rd = Tracefile.Reader.open_file path in
      Fun.protect
        ~finally:(fun () -> Tracefile.Reader.close rd)
        (fun () ->
          Alcotest.(check bool) "has names" true (Tracefile.Reader.has_names rd);
          Alcotest.(check string) "root" "<root>" (Tracefile.Reader.fn_name rd Dbi.Context.root);
          (* every context the trace mentions resolves to the name the
             producing run would print *)
          Tracefile.Reader.iter rd (function
            | Event_log.Call { ctx; _ } ->
              Alcotest.(check string)
                (Printf.sprintf "ctx %d" ctx)
                (Driver.fn_name r ctx) (Tracefile.Reader.fn_name rd ctx)
            | _ -> ())))

let test_sink_memory_bound () =
  with_temp ".tf" (fun path ->
      let options = Sigil.Options.(with_events default) in
      let chunk_bytes = 4096 in
      let w = Tracefile.Writer.create ~chunk_bytes ~options path in
      let _r =
        Driver.run_workload ~options ~event_sink:(Tracefile.Writer.sink w)
          (find_workload "blackscholes") Workloads.Scale.Simsmall
      in
      Tracefile.Writer.close w;
      Alcotest.(check bool) "entries flowed" true (Tracefile.Writer.entries w > 10_000);
      (* the writer may exceed the target only by the one entry that
         crossed the threshold *)
      Alcotest.(check bool)
        (Printf.sprintf "peak buffer %d <= chunk + 64" (Tracefile.Writer.peak_buffer_bytes w))
        true
        (Tracefile.Writer.peak_buffer_bytes w <= chunk_bytes + 64))

let test_dedup_size_ratio () =
  (* acceptance bound: binary >= 4x smaller than text on dedup simsmall *)
  let options =
    Sigil.Options.(with_events { default with max_chunks = Some 300 })
  in
  let log = Event_log.create () in
  let _r =
    Driver.run_workload ~options ~event_sink:(Event_log.memory_sink log)
      (find_workload "dedup") Workloads.Scale.Simsmall
  in
  let size path = In_channel.with_open_bin path In_channel.length |> Int64.to_int in
  with_temp ".txt" (fun txt ->
      with_temp ".tf" (fun tf ->
          Event_log.save log txt;
          Tracefile.Writer.write_log log tf;
          let ratio = float_of_int (size txt) /. float_of_int (size tf) in
          Alcotest.(check bool)
            (Printf.sprintf "text/binary ratio %.2f >= 4" ratio)
            true (ratio >= 4.0)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "tracefile"
    [
      ( "varint",
        [
          Alcotest.test_case "unit cases" `Quick test_varint_cases;
          Alcotest.test_case "truncated" `Quick test_varint_truncated;
        ] );
      ("codec", [ qt codec_roundtrip ]);
      ( "file",
        [
          Alcotest.test_case "roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "multi-chunk + parallel decode" `Quick test_multichunk_roundtrip;
          qt test_qcheck_file_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncated file" `Quick test_truncated_file;
          Alcotest.test_case "corrupted crc" `Quick test_corrupted_crc;
          Alcotest.test_case "not a tracefile" `Quick test_not_a_tracefile;
        ] );
      ("convert", [ Alcotest.test_case "text<->binary" `Quick test_convert_roundtrip ]);
      ( "runs",
        [
          Alcotest.test_case "embedded tables" `Slow test_embedded_tables;
          Alcotest.test_case "sink memory bound" `Slow test_sink_memory_bound;
          Alcotest.test_case "dedup size ratio" `Slow test_dedup_size_ratio;
        ] );
    ]
