open Sigil

(* Range API: chunk clamping, run coalescing, eviction mid-range, and
   byte-for-byte equivalence with the single-byte calls. *)

let run_t : Shadow.run Alcotest.testable =
  Alcotest.testable
    (fun ppf (r : Shadow.run) ->
      Format.fprintf ppf "{producer=%d; call=%d; bytes=%d; unique=%d}" r.Shadow.r_producer
        r.Shadow.r_producer_call r.Shadow.r_bytes r.Shadow.r_unique_bytes)
    ( = )

let mk ?reuse ?track_writer_call ?max_chunks ?sink () =
  Shadow.create ?reuse ?track_writer_call ?max_chunks ?sink ()

let addr = 0x200000

let test_single_run_coalesced () =
  let t = mk () in
  Shadow.write_range t ~ctx:3 ~call:1 ~now:0 addr 64;
  let runs = Shadow.read_range t ~ctx:5 ~call:1 ~now:1 addr 64 in
  Alcotest.(check (list run_t))
    "one coalesced run"
    [ { Shadow.r_producer = 3; r_producer_call = 0; r_bytes = 64; r_unique_bytes = 64 } ]
    runs

let test_runs_split_on_producer () =
  let t = mk () in
  Shadow.write_range t ~ctx:3 ~call:1 ~now:0 addr 8;
  Shadow.write_range t ~ctx:4 ~call:1 ~now:0 (addr + 8) 4;
  Shadow.write_range t ~ctx:3 ~call:1 ~now:0 (addr + 12) 4;
  let runs = Shadow.read_range t ~ctx:5 ~call:1 ~now:1 addr 16 in
  Alcotest.(check (list run_t))
    "three runs, split at producer changes"
    [
      { Shadow.r_producer = 3; r_producer_call = 0; r_bytes = 8; r_unique_bytes = 8 };
      { Shadow.r_producer = 4; r_producer_call = 0; r_bytes = 4; r_unique_bytes = 4 };
      { Shadow.r_producer = 3; r_producer_call = 0; r_bytes = 4; r_unique_bytes = 4 };
    ]
    runs

let test_runs_split_on_producer_call () =
  (* same producer context but different calls must not coalesce: event
     files attach transfers to the producing call *)
  let t = mk ~track_writer_call:true () in
  Shadow.write_range t ~ctx:3 ~call:1 ~now:0 addr 4;
  Shadow.write_range t ~ctx:3 ~call:2 ~now:0 (addr + 4) 4;
  let runs = Shadow.read_range t ~ctx:5 ~call:1 ~now:1 addr 8 in
  Alcotest.(check (list run_t))
    "split at producer-call change"
    [
      { Shadow.r_producer = 3; r_producer_call = 1; r_bytes = 4; r_unique_bytes = 4 };
      { Shadow.r_producer = 3; r_producer_call = 2; r_bytes = 4; r_unique_bytes = 4 };
    ]
    runs

let test_unique_vs_nonunique_mix () =
  let t = mk () in
  Shadow.write_range t ~ctx:3 ~call:1 ~now:0 addr 8;
  (* pre-read the middle 4 bytes with the same (ctx, call) as below *)
  ignore (Shadow.read_range t ~ctx:5 ~call:1 ~now:1 (addr + 2) 4);
  let runs = Shadow.read_range t ~ctx:5 ~call:1 ~now:2 addr 8 in
  (* one producer throughout, so still one run; 4 of its bytes are re-reads *)
  Alcotest.(check (list run_t))
    "unique count excludes same-call re-reads"
    [ { Shadow.r_producer = 3; r_producer_call = 0; r_bytes = 8; r_unique_bytes = 4 } ]
    runs

let test_cross_chunk_span () =
  let t = mk () in
  let start = (3 * Shadow.chunk_bytes) - 5 in
  Shadow.write_range t ~ctx:7 ~call:1 ~now:0 start 10;
  Alcotest.(check int) "two chunks allocated" 2 (Shadow.chunks_live t);
  let runs = Shadow.read_range t ~ctx:5 ~call:1 ~now:1 start 10 in
  Alcotest.(check (list run_t))
    "runs coalesce across the chunk boundary"
    [ { Shadow.r_producer = 7; r_producer_call = 0; r_bytes = 10; r_unique_bytes = 10 } ]
    runs;
  (* both sides of the boundary really are shadowed *)
  Alcotest.(check (option int)) "left of boundary" (Some 7) (Shadow.producer_of t start);
  Alcotest.(check (option int))
    "right of boundary" (Some 7)
    (Shadow.producer_of t (start + 9))

let test_eviction_mid_range () =
  (* with max_chunks = 1, a cross-chunk write must evict the first chunk
     while the range is still in flight, and still land every byte *)
  let t = mk ~max_chunks:1 () in
  let start = Shadow.chunk_bytes - 4 in
  Shadow.write_range t ~ctx:7 ~call:1 ~now:0 start 8;
  Alcotest.(check int) "one live chunk" 1 (Shadow.chunks_live t);
  Alcotest.(check int) "first chunk evicted mid-range" 1 (Shadow.evictions t);
  Alcotest.(check (option int)) "evicted side forgotten" None (Shadow.producer_of t start);
  Alcotest.(check (option int))
    "surviving side kept" (Some 7)
    (Shadow.producer_of t Shadow.chunk_bytes);
  (* reading back across the boundary thrashes the single slot again:
     re-allocating chunk 0 evicts chunk 1 before its span is read, so every
     byte comes back as program input — exactly what per-byte reads do *)
  let runs = Shadow.read_range t ~ctx:5 ~call:1 ~now:1 start 8 in
  Alcotest.(check (list run_t))
    "thrashed bytes read as root-produced"
    [ { Shadow.r_producer = Dbi.Context.root; r_producer_call = 0; r_bytes = 8; r_unique_bytes = 8 } ]
    runs;
  Alcotest.(check int) "read re-evicted both chunks" 3 (Shadow.evictions t)

let test_eviction_mid_range_flushes_sink () =
  let versions = ref [] in
  let sink =
    {
      Shadow.on_episode_end = (fun ~reader:_ ~reads:_ ~first:_ ~last:_ -> ());
      on_version_end = (fun ~producer ~nonunique -> versions := (producer, nonunique) :: !versions);
    }
  in
  let t = mk ~reuse:true ~max_chunks:1 ~sink () in
  Shadow.write t ~ctx:9 ~call:1 ~now:0 0;
  (* cross-chunk read evicts chunk 0 when it reaches chunk 1; the flush
     reports the written byte's version and, as program input, the two
     bytes of chunk 0 the read itself just touched *)
  ignore (Shadow.read_range t ~ctx:5 ~call:1 ~now:1 (Shadow.chunk_bytes - 2) 4);
  Alcotest.(check (list (pair int int)))
    "evicted versions reported"
    [ (Dbi.Context.root, 0); (Dbi.Context.root, 0); (9, 0) ]
    !versions

let test_range_equals_per_byte () =
  (* same interleaved access trace through both APIs -> identical
     classification and identical sink traffic *)
  let record () =
    let log = ref [] in
    let sink =
      {
        Shadow.on_episode_end =
          (fun ~reader ~reads ~first ~last -> log := `Ep (reader, reads, first, last) :: !log);
        on_version_end = (fun ~producer ~nonunique -> log := `Ver (producer, nonunique) :: !log);
      }
    in
    (Shadow.create ~reuse:true ~track_writer_call:true ~sink (), log)
  in
  let ops =
    [
      `W (1, 1, addr, 16);
      `R (2, 1, addr + 3, 8);
      `R (2, 1, addr, 16);
      `W (1, 2, addr + 8, 4);
      `R (3, 1, addr, 16);
      `R (2, 2, addr + 14, 6);
    ]
  in
  let by_range, log_r = record () in
  let range_results =
    List.map
      (function
        | `W (ctx, call, a, n) ->
          Shadow.write_range by_range ~ctx ~call ~now:0 a n;
          []
        | `R (ctx, call, a, n) -> Shadow.read_range by_range ~ctx ~call ~now:call a n)
      ops
  in
  let by_byte, log_b = record () in
  let byte_results =
    List.map
      (function
        | `W (ctx, call, a, n) ->
          for i = 0 to n - 1 do
            Shadow.write by_byte ~ctx ~call ~now:0 (a + i)
          done;
          []
        | `R (ctx, call, a, n) ->
          List.init n (fun i -> Shadow.read by_byte ~ctx ~call ~now:call (a + i)))
      ops
  in
  (* sink call sequences identical *)
  Alcotest.(check int) "same sink calls" (List.length !log_b) (List.length !log_r);
  Alcotest.(check bool) "same sink sequence" true (!log_b = !log_r);
  (* per-byte classification recovered from the runs matches exactly: the
     unique flags within a run are not positional, so compare totals *)
  List.iter2
    (fun runs bytes ->
      let run_total = List.fold_left (fun a (r : Shadow.run) -> a + r.Shadow.r_bytes) 0 runs in
      let run_unique =
        List.fold_left (fun a (r : Shadow.run) -> a + r.Shadow.r_unique_bytes) 0 runs
      in
      let byte_unique =
        List.fold_left (fun a (r : Shadow.read_result) -> a + if r.Shadow.unique then 1 else 0) 0 bytes
      in
      Alcotest.(check int) "bytes" (List.length bytes) run_total;
      Alcotest.(check int) "unique bytes" byte_unique run_unique)
    range_results byte_results

let test_range_bounds () =
  let t = mk () in
  Alcotest.check_raises "past the end" (Invalid_argument "Shadow: address out of range")
    (fun () -> ignore (Shadow.read_range t ~ctx:1 ~call:1 ~now:0 (Shadow.max_address - 4) 8));
  Alcotest.check_raises "empty range" (Invalid_argument "Shadow: range length must be positive")
    (fun () -> ignore (Shadow.read_range t ~ctx:1 ~call:1 ~now:0 addr 0));
  Alcotest.check_raises "packed ctx bound"
    (Invalid_argument "Shadow: context id exceeds packed 16-bit bound") (fun () ->
      Shadow.write_range t ~ctx:0xFFFF ~call:1 ~now:0 addr 1)

let test_packed_footprint () =
  (* packed planes: ~8 host bytes per shadowed byte baseline and ~28 in
     full reuse+event width, vs 24 and 64 for the old boxed int arrays.
     Measure the marginal cost of a second chunk inside an already-mapped
     superpage so the page allocation doesn't blur the numbers. *)
  let marginal mk_t =
    let t = mk_t () in
    Shadow.write t ~ctx:1 ~call:1 ~now:0 addr;
    let one = Shadow.footprint_bytes t in
    Shadow.write t ~ctx:1 ~call:1 ~now:0 (addr + Shadow.chunk_bytes);
    Shadow.footprint_bytes t - one
  in
  let baseline = marginal (fun () -> mk ()) in
  Alcotest.(check bool)
    (Printf.sprintf "baseline chunk is packed (%d bytes)" baseline)
    true
    (baseline <= 9 * Shadow.chunk_bytes);
  let full = marginal (fun () -> mk ~reuse:true ~track_writer_call:true ()) in
  Alcotest.(check bool)
    (Printf.sprintf "full-width chunk is packed (%d bytes)" full)
    true
    (full <= 29 * Shadow.chunk_bytes);
  let base = Shadow.footprint_bytes (mk ()) in
  Alcotest.(check bool)
    (Printf.sprintf "empty-table floor is small (%d bytes)" base)
    true (base < 65536)

let () =
  Alcotest.run "shadow_range"
    [
      ( "range",
        [
          Alcotest.test_case "single run coalesced" `Quick test_single_run_coalesced;
          Alcotest.test_case "runs split on producer" `Quick test_runs_split_on_producer;
          Alcotest.test_case "runs split on producer call" `Quick
            test_runs_split_on_producer_call;
          Alcotest.test_case "unique/nonunique mix" `Quick test_unique_vs_nonunique_mix;
          Alcotest.test_case "cross-chunk span" `Quick test_cross_chunk_span;
          Alcotest.test_case "eviction mid-range" `Quick test_eviction_mid_range;
          Alcotest.test_case "eviction mid-range flushes sink" `Quick
            test_eviction_mid_range_flushes_sink;
          Alcotest.test_case "range equals per-byte" `Quick test_range_equals_per_byte;
          Alcotest.test_case "range bounds" `Quick test_range_bounds;
          Alcotest.test_case "packed footprint" `Quick test_packed_footprint;
        ] );
    ]
