(* Parallel execution must never change results: a suite fanned over a
   domain pool produces bit-identical profiles to the sequential loop
   (every run's Machine/tool/PRNG state is run-local), Profile.merge and
   Compare.diff_many are order-independent reductions, and the pool-backed
   Partition.trim matches the sequential pass. *)

let specs =
  [
    ("blackscholes", Workloads.Scale.Simsmall);
    ("canneal", Workloads.Scale.Simsmall);
    ("dedup", Workloads.Scale.Simsmall);
  ]

let profile_texts runs =
  List.map
    (fun r ->
      match r with
      | Ok run -> Sigil.Profile_io.to_string (Driver.sigil run)
      | Error e -> Alcotest.failf "workload failed: %s" (Driver.Run_error.to_string e))
    runs

let test_parallel_bit_identical () =
  let sequential = profile_texts (Driver.run_suite specs) in
  let parallel =
    Pool.with_pool ~domains:2 (fun p -> profile_texts (Driver.run_suite ~pool:p specs))
  in
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check bool)
        (Printf.sprintf "profile %d (%s) bit-identical" i (fst (List.nth specs i)))
        true (s = p))
    (List.combine sequential parallel);
  (* a second parallel sweep reproduces itself, too *)
  let parallel' =
    Pool.with_pool ~domains:3 (fun p -> profile_texts (Driver.run_suite ~pool:p specs))
  in
  Alcotest.(check bool) "3-domain sweep identical to 2-domain sweep" true (parallel = parallel')

let test_run_suite_reports_unknown () =
  match Driver.run_suite [ ("blackscholes", Workloads.Scale.Simsmall); ("nope", Workloads.Scale.Simsmall) ] with
  | [ Ok _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Error] aligned with the spec list"

let sigil_tool_of body =
  let tool = ref None in
  let _ =
    Dbi.Runner.run
      ~tools:
        [
          (fun m ->
            let t = Sigil.Tool.create m in
            tool := Some t;
            Sigil.Tool.tool t);
        ]
      body
  in
  Option.get !tool

let run_workload_tool name =
  match Workloads.Suite.find name with
  | Error e -> Alcotest.fail e
  | Ok w -> sigil_tool_of (fun m -> w.Workloads.Workload.run m Workloads.Scale.Simsmall)

let edge_list p =
  List.sort compare
    (List.map
       (fun (e : Sigil.Profile.edge) -> (e.src, e.dst, e.bytes, e.unique_bytes))
       (Sigil.Profile.edges p))

let stats_list p =
  List.map
    (fun ctx ->
      let s = Sigil.Profile.stats p ctx in
      ( ctx,
        ( s.Sigil.Profile.input_unique,
          s.Sigil.Profile.input_nonunique,
          s.Sigil.Profile.local_unique,
          s.Sigil.Profile.local_nonunique ),
        (s.Sigil.Profile.written, s.Sigil.Profile.int_ops, s.Sigil.Profile.fp_ops, s.Sigil.Profile.calls) ))
    (Sigil.Profile.contexts p)

let test_profile_merge_order_independent () =
  (* two deterministic runs of the same workload share one context tree, so
     their profiles are mergeable shards *)
  let a = Sigil.Tool.profile (run_workload_tool "blackscholes") in
  let b = Sigil.Tool.profile (run_workload_tool "blackscholes") in
  let ab = Sigil.Profile.create () in
  Sigil.Profile.merge ~into:ab a;
  Sigil.Profile.merge ~into:ab b;
  let ba = Sigil.Profile.create () in
  Sigil.Profile.merge ~into:ba b;
  Sigil.Profile.merge ~into:ba a;
  Alcotest.(check bool) "stats independent of merge order" true (stats_list ab = stats_list ba);
  Alcotest.(check bool) "edges independent of merge order" true (edge_list ab = edge_list ba);
  (* merging two identical shards doubles the single-run totals *)
  let u1, t1 = Sigil.Profile.totals a in
  let u2, t2 = Sigil.Profile.totals ab in
  Alcotest.(check (pair int int)) "merge sums totals" (2 * u1, 2 * t1) (u2, t2)

let test_diff_many_order_independent () =
  let snap name = Sigil.Profile_io.snapshot_of_tool (run_workload_tool name) in
  let s1 = snap "blackscholes" and s2 = snap "canneal" in
  let d12 = Analysis.Compare.diff_many ~before:[ s1; s2 ] ~after:[ s2; s1 ] in
  let d21 = Analysis.Compare.diff_many ~before:[ s2; s1 ] ~after:[ s1; s2 ] in
  Alcotest.(check bool) "delta rows independent of shard order" true (d12 = d21);
  Alcotest.(check int) "merged sides are identical" 0
    (List.length (Analysis.Compare.changed d12))

let test_parallel_trim_matches_sequential () =
  let tool = run_workload_tool "canneal" in
  let cdfg = Analysis.Cdfg.build tool in
  let seq = Analysis.Partition.trim cdfg in
  let par = Pool.with_pool ~domains:2 (fun p -> Analysis.Partition.trim ~pool:p cdfg) in
  Alcotest.(check bool) "selected candidates identical" true
    (seq.Analysis.Partition.selected = par.Analysis.Partition.selected);
  Alcotest.(check (float 0.0)) "coverage identical" seq.Analysis.Partition.coverage
    par.Analysis.Partition.coverage

let () =
  Alcotest.run "suite_determinism"
    [
      ( "determinism",
        [
          Alcotest.test_case "parallel suite bit-identical" `Quick test_parallel_bit_identical;
          Alcotest.test_case "run_suite unknown workload" `Quick test_run_suite_reports_unknown;
          Alcotest.test_case "Profile.merge order-independent" `Quick
            test_profile_merge_order_independent;
          Alcotest.test_case "Compare.diff_many order-independent" `Quick
            test_diff_many_order_independent;
          Alcotest.test_case "parallel Partition.trim matches" `Quick
            test_parallel_trim_matches_sequential;
        ] );
    ]
