exception Corrupt of { offset : int; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { offset; reason } ->
      Some (Printf.sprintf "Tracefile.Frame.Corrupt at offset %d: %s" offset reason)
    | _ -> None)

let corrupt ~offset reason = raise (Corrupt { offset; reason })

let magic = "sigiltf1"
let trailer_magic = "sigilend"
let version = 1
let chunk_magic = 0x48434753 (* "SGCH" read as LE u32 *)
let ckpt_magic = 0x504b4753 (* "SGKP" read as LE u32 *)
let chunk_header_bytes = 16
let trailer_bytes = 32
let default_chunk_bytes = 64 * 1024
let default_checkpoint_every = 16

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32 b off =
  let byte i = Char.code (Bytes.get b (off + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let get_u64 b off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

(* ------------------------------------------------------------------ *)
(* Entry codec                                                         *)
(* ------------------------------------------------------------------ *)

let tag_call = 1
let tag_comp = 2
let tag_xfer = 3
let tag_ret = 4

(* Flag bits packed into the tag byte. The stream is highly regular —
   Comp/Ret (and an Xfer's destination) almost always name the same
   (ctx, call) as the previous entry, fp op counts are usually zero and
   most transfers are all-unique — so the common cases cost zero payload
   bytes beyond the tag itself. *)
let flag_samepos = 0x08 (* ctx/call equal the running pair: no pos varints *)
let flag_omit = 0x10 (* Comp: fp_ops = 0; Xfer: unique_bytes = bytes *)
let flag_samesrc = 0x20 (* Xfer: producer equals the previous transfer's *)
let flag_samenum = 0x40 (* Comp: int_ops, Xfer: bytes repeat the previous one *)
let flag_stackpos = 0x80 (* ctx/call equal the tracked open frame (stack top) *)

type delta = {
  mutable d_ctx : int;
  mutable d_call : int;
  mutable s_ctx : int; (* previous transfer's producer: one producer *)
  mutable s_call : int; (* typically feeds many consecutive consumers *)
  mutable n_ops : int; (* previous computation's int op count *)
  mutable n_bytes : int; (* previous transfer's byte count *)
  mutable stack : (int * int) list;
      (* open frames seen since the chunk began (Call pushes, Ret pops):
         after a Ret, the resuming parent's fragment matches the top *)
}

let delta () =
  { d_ctx = 0; d_call = 0; s_ctx = 0; s_call = 0; n_ops = 0; n_bytes = 0; stack = [] }

let reset d =
  d.d_ctx <- 0;
  d.d_call <- 0;
  d.s_ctx <- 0;
  d.s_call <- 0;
  d.n_ops <- 0;
  d.n_bytes <- 0;
  d.stack <- []

let encode_entry d buf (e : Sigil.Event_log.entry) =
  let tag base ~samepos ~stackpos ~omit ~samesrc ~samenum =
    Buffer.add_char buf
      (Char.chr
         (base
         lor (if samepos then flag_samepos else 0)
         lor (if stackpos then flag_stackpos else 0)
         lor (if omit then flag_omit else 0)
         lor (if samesrc then flag_samesrc else 0)
         lor if samenum then flag_samenum else 0))
  in
  (* (samepos, stackpos): at most one set — either elides the position *)
  let classify ctx call =
    if ctx = d.d_ctx && call = d.d_call then (true, false)
    else
      match d.stack with
      | (c, k) :: _ when c = ctx && k = call -> (false, true)
      | _ -> (false, false)
  in
  let pos ~samepos ~stackpos ctx call =
    if not (samepos || stackpos) then begin
      Varint.write_signed buf (ctx - d.d_ctx);
      Varint.write_signed buf (call - d.d_call)
    end;
    d.d_ctx <- ctx;
    d.d_call <- call
  in
  match e with
  | Call { ctx; call } ->
    let sp, st = classify ctx call in
    tag tag_call ~samepos:sp ~stackpos:st ~omit:false ~samesrc:false ~samenum:false;
    pos ~samepos:sp ~stackpos:st ctx call;
    d.stack <- (ctx, call) :: d.stack
  | Comp { ctx; call; int_ops; fp_ops } ->
    let sp, st = classify ctx call in
    let sn = int_ops = d.n_ops in
    tag tag_comp ~samepos:sp ~stackpos:st ~omit:(fp_ops = 0) ~samesrc:false ~samenum:sn;
    pos ~samepos:sp ~stackpos:st ctx call;
    if not sn then Varint.write buf int_ops;
    d.n_ops <- int_ops;
    if fp_ops <> 0 then Varint.write buf fp_ops
  | Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes } ->
    (* destination is the open call — rebase the running pair to it; the
       producer repeats the previous transfer's (flag) or is encoded
       relative to the destination (producers sit near their consumers) *)
    let sp, st = classify dst_ctx dst_call in
    let ss = src_ctx = d.s_ctx && src_call = d.s_call in
    let sn = bytes = d.n_bytes in
    tag tag_xfer ~samepos:sp ~stackpos:st ~omit:(unique_bytes = bytes) ~samesrc:ss ~samenum:sn;
    pos ~samepos:sp ~stackpos:st dst_ctx dst_call;
    if not ss then begin
      Varint.write_signed buf (src_ctx - dst_ctx);
      Varint.write_signed buf (src_call - dst_call)
    end;
    d.s_ctx <- src_ctx;
    d.s_call <- src_call;
    if not sn then Varint.write buf bytes;
    d.n_bytes <- bytes;
    if unique_bytes <> bytes then Varint.write buf unique_bytes
  | Ret { ctx; call } ->
    let sp, st = classify ctx call in
    tag tag_ret ~samepos:sp ~stackpos:st ~omit:false ~samesrc:false ~samenum:false;
    pos ~samepos:sp ~stackpos:st ctx call;
    (match d.stack with
    | _ :: tl -> d.stack <- tl
    | [] -> ())

let decode_pos d ~samepos ~stackpos b ~pos =
  if samepos then ()
  else if stackpos then begin
    match d.stack with
    | (c, k) :: _ ->
      d.d_ctx <- c;
      d.d_call <- k
    | [] -> failwith "Tracefile: stackpos flag with no open frame"
  end
  else begin
    d.d_ctx <- d.d_ctx + Varint.read_signed b ~pos;
    d.d_call <- d.d_call + Varint.read_signed b ~pos
  end;
  (d.d_ctx, d.d_call)

let decode_entry d b ~pos : Sigil.Event_log.entry =
  if !pos >= Bytes.length b then raise Varint.Truncated;
  let byte = Char.code (Bytes.get b !pos) in
  incr pos;
  let base = byte land 0x07 in
  let samepos = byte land flag_samepos <> 0 in
  let stackpos = byte land flag_stackpos <> 0 in
  let omit = byte land flag_omit <> 0 in
  let samesrc = byte land flag_samesrc <> 0 in
  let samenum = byte land flag_samenum <> 0 in
  if samesrc && base <> tag_xfer then
    failwith (Printf.sprintf "Tracefile: unknown entry tag 0x%02x" byte);
  if samenum && base <> tag_xfer && base <> tag_comp then
    failwith (Printf.sprintf "Tracefile: unknown entry tag 0x%02x" byte);
  if base = tag_call then begin
    let ctx, call = decode_pos d ~samepos ~stackpos b ~pos in
    d.stack <- (ctx, call) :: d.stack;
    Call { ctx; call }
  end
  else if base = tag_comp then begin
    let ctx, call = decode_pos d ~samepos ~stackpos b ~pos in
    let int_ops = if samenum then d.n_ops else Varint.read b ~pos in
    d.n_ops <- int_ops;
    let fp_ops = if omit then 0 else Varint.read b ~pos in
    Comp { ctx; call; int_ops; fp_ops }
  end
  else if base = tag_xfer then begin
    let dst_ctx, dst_call = decode_pos d ~samepos ~stackpos b ~pos in
    if not samesrc then begin
      d.s_ctx <- dst_ctx + Varint.read_signed b ~pos;
      d.s_call <- dst_call + Varint.read_signed b ~pos
    end;
    let bytes = if samenum then d.n_bytes else Varint.read b ~pos in
    d.n_bytes <- bytes;
    let unique_bytes = if omit then bytes else Varint.read b ~pos in
    Xfer { src_ctx = d.s_ctx; src_call = d.s_call; dst_ctx; dst_call; bytes; unique_bytes }
  end
  else if base = tag_ret then begin
    let ctx, call = decode_pos d ~samepos ~stackpos b ~pos in
    (match d.stack with
    | _ :: tl -> d.stack <- tl
    | [] -> ());
    Ret { ctx; call }
  end
  else failwith (Printf.sprintf "Tracefile: unknown entry tag 0x%02x" byte)
