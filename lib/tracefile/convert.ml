type format = Binary | Text

let sniff path = if Reader.is_tracefile path then Binary else Text

let text_to_binary ?chunk_bytes src dst =
  let w = Writer.create ?chunk_bytes dst in
  Fun.protect
    ~finally:(fun () -> Writer.close w)
    (fun () ->
      Sigil.Event_log.iter_file src (Writer.add w);
      Writer.entries w)

let binary_to_text src dst =
  let r = Reader.open_file src in
  Fun.protect
    ~finally:(fun () -> Reader.close r)
    (fun () ->
      let oc = open_out dst in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let n = ref 0 in
          Reader.iter r (fun e ->
              output_string oc (Sigil.Event_log.entry_to_string e);
              output_char oc '\n';
              incr n);
          !n))
