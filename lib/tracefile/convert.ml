type format = Binary | Text

let sniff path = if Reader.is_tracefile path then Binary else Text

let text_to_binary ?chunk_bytes src dst =
  let w = Writer.create ?chunk_bytes dst in
  match
    Sigil.Event_log.iter_file src (Writer.add w);
    Writer.entries w
  with
  | n ->
    Writer.close w;
    n
  | exception e ->
    (* a malformed source must not publish (or leave) a partial trace *)
    Writer.discard w;
    raise e

let binary_to_text src dst =
  let r = Reader.open_file src in
  Fun.protect
    ~finally:(fun () -> Reader.close r)
    (fun () ->
      (* same atomic discipline as the binary writer: build the text file
         under a temporary name and publish it only when complete *)
      let tmp = dst ^ ".tmp" in
      let oc = open_out tmp in
      match
        let n = ref 0 in
        Reader.iter r (fun e ->
            output_string oc (Sigil.Event_log.entry_to_string e);
            output_char oc '\n';
            incr n);
        !n
      with
      | n ->
        close_out oc;
        Sys.rename tmp dst;
        n
      | exception e ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e)

let repair ?chunk_bytes src dst =
  let r, report = Reader.open_salvage src in
  Fun.protect
    ~finally:(fun () -> Reader.close r)
    (fun () ->
      let chunk_bytes = Option.value chunk_bytes ~default:(Reader.chunk_bytes r) in
      (* keep the producing run's options fingerprint: the rewritten trace
         should look like the original run wrote it, minus the damage *)
      let w = Writer.create ~chunk_bytes ~options_tag:(Reader.options_tag r) dst in
      match Reader.iter r (Writer.add w) with
      | () ->
        let names, stripped, ctx_parent, ctx_fn = Reader.raw_tables r in
        Writer.close_raw ~names ~stripped ~ctx_parent ~ctx_fn w;
        report
      | exception e ->
        Writer.discard w;
        raise e)
