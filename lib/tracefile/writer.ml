type t = {
  oc : out_channel;
  chunk_bytes : int;
  buf : Buffer.t; (* current chunk payload *)
  head : Buffer.t; (* scratch for headers / trailer sections *)
  delta : Frame.delta;
  mutable chunk_entries : int;
  mutable total_entries : int;
  mutable index_rev : (int * int * int) list; (* offset, entries, payload bytes *)
  mutable peak_buffer : int;
  mutable closed : bool;
}

let create ?(chunk_bytes = Frame.default_chunk_bytes) ?(options = Sigil.Options.default) path =
  if chunk_bytes <= 0 then invalid_arg "Tracefile.Writer.create: chunk_bytes must be positive";
  let oc = open_out_bin path in
  let head = Buffer.create 256 in
  Buffer.add_string head Frame.magic;
  Buffer.add_char head (Char.chr Frame.version);
  let tag = Sigil.Options.fingerprint options in
  Varint.write head (String.length tag);
  Buffer.add_string head tag;
  Varint.write head chunk_bytes;
  Buffer.output_buffer oc head;
  Buffer.clear head;
  {
    oc;
    chunk_bytes;
    buf = Buffer.create (chunk_bytes + 64);
    head;
    delta = Frame.delta ();
    chunk_entries = 0;
    total_entries = 0;
    index_rev = [];
    peak_buffer = 0;
    closed = false;
  }

let flush_chunk t =
  if t.chunk_entries > 0 then begin
    let offset = pos_out t.oc in
    let payload_len = Buffer.length t.buf in
    let payload = Buffer.to_bytes t.buf in
    Buffer.clear t.buf;
    Buffer.clear t.head;
    Frame.add_u32 t.head Frame.chunk_magic;
    Frame.add_u32 t.head t.chunk_entries;
    Frame.add_u32 t.head payload_len;
    Frame.add_u32 t.head (Crc32.bytes payload ~pos:0 ~len:payload_len);
    Buffer.output_buffer t.oc t.head;
    output_bytes t.oc payload;
    t.index_rev <- (offset, t.chunk_entries, payload_len) :: t.index_rev;
    t.chunk_entries <- 0;
    (* each chunk decodes independently *)
    Frame.reset t.delta
  end

let add t e =
  if t.closed then invalid_arg "Tracefile.Writer.add: writer is closed";
  Frame.encode_entry t.delta t.buf e;
  t.chunk_entries <- t.chunk_entries + 1;
  t.total_entries <- t.total_entries + 1;
  let len = Buffer.length t.buf in
  if len > t.peak_buffer then t.peak_buffer <- len;
  if len >= t.chunk_bytes then flush_chunk t

let sink t = add t
let entries t = t.total_entries
let chunks t = List.length t.index_rev
let peak_buffer_bytes t = t.peak_buffer

let write_tables t ~symbols ~contexts =
  let b = t.head in
  Buffer.clear b;
  (match symbols with
  | None ->
    Varint.write b 0;
    Buffer.add_char b '\000'
  | Some syms ->
    Varint.write b (Dbi.Symbol.count syms);
    Buffer.add_char b (if Dbi.Symbol.is_stripped syms then '\001' else '\000');
    (* Symbol.iter yields the degraded "???:<id>" names on a stripped
       table, matching what the producing run itself could see *)
    Dbi.Symbol.iter syms (fun _ name ->
        Varint.write b (String.length name);
        Buffer.add_string b name));
  (match contexts with
  | None -> Varint.write b 0
  | Some ctxs ->
    let count = Dbi.Context.count ctxs in
    Varint.write b count;
    (* dense ids; root (0) is implicit, every other node is (parent, fn) *)
    for ctx = 1 to count - 1 do
      let parent =
        match Dbi.Context.parent ctxs ctx with Some p -> p | None -> 0
      in
      Varint.write b parent;
      Varint.write b (Dbi.Context.fn ctxs ctx)
    done);
  Buffer.output_buffer t.oc b;
  Buffer.clear b

let write_index t index =
  let b = t.head in
  Buffer.clear b;
  Varint.write b (List.length index);
  List.iter
    (fun (offset, entries, bytes) ->
      Varint.write b offset;
      Varint.write b entries;
      Varint.write b bytes)
    index;
  Buffer.output_buffer t.oc b;
  Buffer.clear b

let close ?symbols ?contexts t =
  if not t.closed then begin
    flush_chunk t;
    let tables_offset = pos_out t.oc in
    write_tables t ~symbols ~contexts;
    let index_offset = pos_out t.oc in
    write_index t (List.rev t.index_rev);
    let b = t.head in
    Buffer.clear b;
    Frame.add_u64 b tables_offset;
    Frame.add_u64 b index_offset;
    Frame.add_u64 b t.total_entries;
    Buffer.add_string b Frame.trailer_magic;
    Buffer.output_buffer t.oc b;
    close_out t.oc;
    t.closed <- true
  end

let write_log ?chunk_bytes ?options ?symbols ?contexts log path =
  let w = create ?chunk_bytes ?options path in
  Fun.protect
    ~finally:(fun () -> close ?symbols ?contexts w)
    (fun () -> Sigil.Event_log.iter log (add w))
