type t = {
  oc : out_channel;
  final_path : string;
  tmp_path : string;
  chunk_bytes : int;
  checkpoint_every : int;
  buf : Buffer.t; (* current chunk payload *)
  head : Buffer.t; (* scratch for headers / trailer sections *)
  delta : Frame.delta;
  mutable chunk_entries : int;
  mutable total_entries : int;
  mutable index_rev : (int * int * int) list; (* offset, entries, payload bytes *)
  mutable chunks_since_ckpt : int;
  mutable peak_buffer : int;
  mutable checkpoints : int;
  chunk_payload : Telemetry.Hist.t; (* payload bytes per flushed chunk *)
  mutable closed : bool;
}

let create ?(chunk_bytes = Frame.default_chunk_bytes)
    ?(checkpoint_every = Frame.default_checkpoint_every) ?options ?options_tag path =
  if chunk_bytes <= 0 then invalid_arg "Tracefile.Writer.create: chunk_bytes must be positive";
  if checkpoint_every <= 0 then
    invalid_arg "Tracefile.Writer.create: checkpoint_every must be positive";
  (* all output goes to [path].tmp; the real name appears only on [close],
     so a crash mid-write never clobbers an existing good trace *)
  let tmp_path = path ^ ".tmp" in
  let oc = open_out_bin tmp_path in
  let head = Buffer.create 256 in
  Buffer.add_string head Frame.magic;
  Buffer.add_char head (Char.chr Frame.version);
  let tag =
    match options_tag with
    | Some tag -> tag
    | None -> Sigil.Options.fingerprint (Option.value options ~default:Sigil.Options.default)
  in
  Varint.write head (String.length tag);
  Buffer.add_string head tag;
  Varint.write head chunk_bytes;
  Buffer.output_buffer oc head;
  Buffer.clear head;
  {
    oc;
    final_path = path;
    tmp_path;
    chunk_bytes;
    checkpoint_every;
    buf = Buffer.create (chunk_bytes + 64);
    head;
    delta = Frame.delta ();
    chunk_entries = 0;
    total_entries = 0;
    index_rev = [];
    chunks_since_ckpt = 0;
    peak_buffer = 0;
    checkpoints = 0;
    chunk_payload = Telemetry.Hist.create ();
    closed = false;
  }

(* An index checkpoint carries everything a salvage needs to account for
   the chunks before it: the total entry count so far and the index
   triples. Readers skip these sections; [Reader.open_salvage] uses the
   last intact one to tell dropped chunks from never-written ones. *)
let write_checkpoint t =
  let b = Buffer.create 256 in
  Varint.write b t.total_entries;
  let index = List.rev t.index_rev in
  List.iter
    (fun (offset, entries, bytes) ->
      Varint.write b offset;
      Varint.write b entries;
      Varint.write b bytes)
    index;
  let payload = Buffer.to_bytes b in
  let payload_len = Bytes.length payload in
  Buffer.clear t.head;
  Frame.add_u32 t.head Frame.ckpt_magic;
  Frame.add_u32 t.head (List.length index);
  Frame.add_u32 t.head payload_len;
  Frame.add_u32 t.head (Crc32.bytes payload ~pos:0 ~len:payload_len);
  Buffer.output_buffer t.oc t.head;
  output_bytes t.oc payload;
  Buffer.clear t.head;
  t.checkpoints <- t.checkpoints + 1;
  (* bound what a SIGKILL can lose to one checkpoint interval *)
  flush t.oc

let flush_chunk t =
  if t.chunk_entries > 0 then begin
    let offset = pos_out t.oc in
    let payload_len = Buffer.length t.buf in
    let payload = Buffer.to_bytes t.buf in
    Buffer.clear t.buf;
    Buffer.clear t.head;
    Frame.add_u32 t.head Frame.chunk_magic;
    Frame.add_u32 t.head t.chunk_entries;
    Frame.add_u32 t.head payload_len;
    Frame.add_u32 t.head (Crc32.bytes payload ~pos:0 ~len:payload_len);
    Buffer.output_buffer t.oc t.head;
    output_bytes t.oc payload;
    t.index_rev <- (offset, t.chunk_entries, payload_len) :: t.index_rev;
    Telemetry.Hist.observe t.chunk_payload payload_len;
    t.chunk_entries <- 0;
    (* each chunk decodes independently *)
    Frame.reset t.delta;
    t.chunks_since_ckpt <- t.chunks_since_ckpt + 1;
    if t.chunks_since_ckpt >= t.checkpoint_every then begin
      t.chunks_since_ckpt <- 0;
      write_checkpoint t
    end
  end

let add t e =
  if t.closed then invalid_arg "Tracefile.Writer.add: writer is closed";
  Frame.encode_entry t.delta t.buf e;
  t.chunk_entries <- t.chunk_entries + 1;
  t.total_entries <- t.total_entries + 1;
  let len = Buffer.length t.buf in
  if len > t.peak_buffer then t.peak_buffer <- len;
  if len >= t.chunk_bytes then flush_chunk t

let sink t = add t
let entries t = t.total_entries
let chunks t = List.length t.index_rev
let peak_buffer_bytes t = t.peak_buffer
let bytes_written t = if t.closed then 0 else pos_out t.oc + Buffer.length t.buf

(* Everything here is a pure function of the entry stream and the writer
   configuration, so the samples are deterministic (the sequential event
   trace itself is). *)
let telemetry t =
  Telemetry.
    [
      count "trace.entries" t.total_entries;
      count "trace.chunks" (List.length t.index_rev);
      count "trace.checkpoints" t.checkpoints;
      peak "trace.peak_buffer_bytes" t.peak_buffer;
      hist "trace.chunk_payload_bytes" t.chunk_payload;
    ]

let write_tables_raw t ~names ~stripped ~ctx_parent ~ctx_fn =
  let b = t.head in
  Buffer.clear b;
  Varint.write b (Array.length names);
  Buffer.add_char b (if stripped then '\001' else '\000');
  Array.iter
    (fun name ->
      Varint.write b (String.length name);
      Buffer.add_string b name)
    names;
  let count = Array.length ctx_parent in
  Varint.write b count;
  (* dense ids; root (0) is implicit, every other node is (parent, fn) *)
  for ctx = 1 to count - 1 do
    Varint.write b ctx_parent.(ctx);
    Varint.write b ctx_fn.(ctx)
  done;
  Buffer.output_buffer t.oc b;
  Buffer.clear b

let tables_of ~symbols ~contexts =
  let names, stripped =
    match symbols with
    | None -> ([||], false)
    | Some syms ->
      let arr = Array.make (Dbi.Symbol.count syms) "" in
      (* Symbol.iter yields the degraded "???:<id>" names on a stripped
         table, matching what the producing run itself could see *)
      Dbi.Symbol.iter syms (fun id name -> arr.(id) <- name);
      (arr, Dbi.Symbol.is_stripped syms)
  in
  let ctx_parent, ctx_fn =
    match contexts with
    | None -> ([||], [||])
    | Some ctxs ->
      let count = Dbi.Context.count ctxs in
      let parent = Array.make count 0 and fn = Array.make count 0 in
      for ctx = 1 to count - 1 do
        parent.(ctx) <- (match Dbi.Context.parent ctxs ctx with Some p -> p | None -> 0);
        fn.(ctx) <- Dbi.Context.fn ctxs ctx
      done;
      (parent, fn)
  in
  (names, stripped, ctx_parent, ctx_fn)

let write_index t index =
  let b = t.head in
  Buffer.clear b;
  Varint.write b (List.length index);
  List.iter
    (fun (offset, entries, bytes) ->
      Varint.write b offset;
      Varint.write b entries;
      Varint.write b bytes)
    index;
  Buffer.output_buffer t.oc b;
  Buffer.clear b

let finalize t ~names ~stripped ~ctx_parent ~ctx_fn =
  if not t.closed then begin
    flush_chunk t;
    let tables_offset = pos_out t.oc in
    write_tables_raw t ~names ~stripped ~ctx_parent ~ctx_fn;
    let index_offset = pos_out t.oc in
    write_index t (List.rev t.index_rev);
    let b = t.head in
    Buffer.clear b;
    Frame.add_u64 b tables_offset;
    Frame.add_u64 b index_offset;
    Frame.add_u64 b t.total_entries;
    Buffer.add_string b Frame.trailer_magic;
    Buffer.output_buffer t.oc b;
    close_out t.oc;
    t.closed <- true;
    (* atomic publication: the destination either keeps its old content or
       gets the complete new trace, nothing in between *)
    Sys.rename t.tmp_path t.final_path
  end

let close ?symbols ?contexts t =
  let names, stripped, ctx_parent, ctx_fn = tables_of ~symbols ~contexts in
  finalize t ~names ~stripped ~ctx_parent ~ctx_fn

let close_raw ?(names = [||]) ?(stripped = false) ?(ctx_parent = [||]) ?(ctx_fn = [||]) t =
  finalize t ~names ~stripped ~ctx_parent ~ctx_fn

let discard t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    try Sys.remove t.tmp_path with Sys_error _ -> ()
  end

let write_log ?chunk_bytes ?options ?symbols ?contexts log path =
  let w = create ?chunk_bytes ?options path in
  match Sigil.Event_log.iter log (add w) with
  | () -> close ?symbols ?contexts w
  | exception e ->
    (* don't publish (or leave behind) a half-written file *)
    discard w;
    raise e
