(** Streaming binary event-trace reader.

    Opening a file parses the header, the trailer, the chunk index and the
    embedded symbol/context tables — but no event data. {!iter} and
    {!fold} then stream the trace one chunk at a time, so peak memory is
    one chunk's payload regardless of trace length; {!map_chunks} fans the
    independent per-chunk decodes out over a {!Pool.t}.

    Every structural failure raises {!Frame.Corrupt} carrying the file
    offset of the offending chunk: a truncated file is diagnosed at open
    time (the reader re-scans the chunk framing to name the first
    incomplete chunk), a payload whose CRC-32 does not match its header is
    reported when that chunk is decoded. *)

type t

(** [is_tracefile path] sniffs the 8-byte magic — used to tell binary
    traces from the line-oriented text format. *)
val is_tracefile : string -> bool

(** @raise Frame.Corrupt on a damaged or truncated file.
    @raise Sys_error when the file cannot be read. *)
val open_file : string -> t

(** {2 Salvage}

    Recovery path for traces left behind by a crash (a [.tmp] killed
    mid-write) or damaged afterwards (truncation, bit rot, torn tail). *)

type salvage_report = {
  recovered_entries : int;
  recovered_chunks : int;
  dropped_chunks : int;
      (** chunks present (wholly or partly) in the file but not recovered:
          everything at or past the first damage. Salvage never resumes
          past a gap, so a clean-looking chunk after damage is still
          dropped rather than silently stitched to the prefix. *)
  first_bad_offset : int option;  (** file offset of the first damage; [None] = clean *)
  tail_valid : bool;  (** trailer, tables and chunk index all parsed *)
}

val pp_salvage_report : Format.formatter -> salvage_report -> unit

(** [open_salvage path] opens a possibly-damaged trace, keeping the longest
    prefix of chunks that are wholly present, CRC-clean and decodable. The
    returned reader behaves like one from {!open_file} restricted to that
    prefix (embedded tables are available only when the tail survived);
    the report says what was kept and what was lost. A trace whose
    {e header} is damaged has no trustworthy prefix at all:

    @raise Frame.Corrupt (with the offending offset) on header damage.
    @raise Sys_error when the file cannot be read. *)
val open_salvage : string -> t * salvage_report

val close : t -> unit

(** {2 Metadata (header, trailer, embedded tables)} *)

val version : t -> int

(** The producing run's [Sigil.Options.fingerprint]. *)
val options_tag : t -> string

val chunk_bytes : t -> int
val entry_count : t -> int
val chunk_count : t -> int

(** File offset of each chunk's header, in chunk order (from the index). *)
val chunk_offsets : t -> int list
val symbol_count : t -> int
val context_count : t -> int

(** Whether the trace embeds non-empty symbol and context tables. *)
val has_names : t -> bool

(** [raw_tables t] is [(names, stripped, ctx_parent, ctx_fn)] — the
    embedded tables as the dense arrays the format stores (empty when the
    trace carries none). Used by [Convert.repair] to re-emit the tables
    into the rewritten trace. *)
val raw_tables : t -> string array * bool * int array * int array

(** [fn_name t ctx] resolves a context id to its function name through the
    embedded tables; ["<root>"] for the root context, ["ctx:<id>"] when the
    trace carries no tables or the id is unknown. *)
val fn_name : t -> Dbi.Context.id -> string

(** {2 Streaming access} *)

val iter : t -> (Sigil.Event_log.entry -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Sigil.Event_log.entry -> 'a) -> 'a

(** [to_log t] materializes the whole trace in memory (compatibility with
    list-based consumers; prefer {!iter}). *)
val to_log : t -> Sigil.Event_log.t

(** {2 Parallel per-chunk decode}

    Chunks are self-contained (delta state resets at chunk boundaries), so
    they decode independently. Each task opens its own file descriptor;
    results come back in chunk order. *)

val map_chunks : ?pool:Pool.t -> t -> (int -> Sigil.Event_log.entry array -> 'a) -> 'a list

(** [validate ?pool t] decodes every chunk (in parallel when a pool is
    given), checking framing, CRCs and entry counts against the index.

    @raise Frame.Corrupt on the first damaged chunk. *)
val validate : ?pool:Pool.t -> t -> unit
