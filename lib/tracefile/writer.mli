(** Streaming binary event-trace writer.

    A writer is a bounded-buffer {!Sigil.Event_log.sink}: entries are
    varint/delta-encoded into an in-memory chunk buffer that is framed and
    flushed to disk every time it reaches the chunk target, so the memory
    held on behalf of the trace never exceeds one chunk (plus one entry)
    no matter how long the run is. [close] appends the symbol and context
    tables of the producing run (making the file self-describing for
    name resolution), the chunk index, and the trailer. *)

type t

(** [create ?chunk_bytes ?options path] opens [path] and writes the header.
    [options] is fingerprinted into the header ([Sigil.Options.default]
    when omitted); [chunk_bytes] is the chunk payload target
    ({!Frame.default_chunk_bytes}). *)
val create : ?chunk_bytes:int -> ?options:Sigil.Options.t -> string -> t

val add : t -> Sigil.Event_log.entry -> unit

(** [sink w] is [add w] as a sink to pass to [Sigil.Tool.create] or
    [Driver.run_workload]. *)
val sink : t -> Sigil.Event_log.sink

(** Entries accepted so far. *)
val entries : t -> int

(** Chunks flushed so far (not counting the partial one being filled). *)
val chunks : t -> int

(** High-water mark of the in-memory chunk buffer — bounded by
    [chunk_bytes] plus one encoded entry. *)
val peak_buffer_bytes : t -> int

(** [close ?symbols ?contexts w] flushes the final chunk, writes the
    embedded tables (empty when omitted, e.g. for converted text traces
    whose producing run is gone), the chunk index and the trailer, and
    closes the file. Idempotent. *)
val close : ?symbols:Dbi.Symbol.t -> ?contexts:Dbi.Context.t -> t -> unit

(** [write_log ?chunk_bytes ?options ?symbols ?contexts log path] dumps an
    in-memory log in one call. *)
val write_log :
  ?chunk_bytes:int ->
  ?options:Sigil.Options.t ->
  ?symbols:Dbi.Symbol.t ->
  ?contexts:Dbi.Context.t ->
  Sigil.Event_log.t ->
  string ->
  unit
