(** Streaming binary event-trace writer.

    A writer is a bounded-buffer {!Sigil.Event_log.sink}: entries are
    varint/delta-encoded into an in-memory chunk buffer that is framed and
    flushed to disk every time it reaches the chunk target, so the memory
    held on behalf of the trace never exceeds one chunk (plus one entry)
    no matter how long the run is. [close] appends the symbol and context
    tables of the producing run (making the file self-describing for
    name resolution), the chunk index, and the trailer.

    Crash safety: all output goes to [path ^ ".tmp"] and is renamed to
    [path] only by a successful [close], so the destination is always
    either absent, the previous complete trace, or the new complete trace.
    Every [checkpoint_every] data chunks the writer emits an
    index-checkpoint section ({!Frame.ckpt_magic}) and flushes the OS
    buffer, bounding what a SIGKILL can lose and giving
    [Reader.open_salvage] an authoritative index for the prefix before the
    damage. *)

type t

(** [create ?chunk_bytes ?checkpoint_every ?options ?options_tag path]
    opens [path ^ ".tmp"] and writes the header. [options] is
    fingerprinted into the header ([Sigil.Options.default] when omitted);
    [options_tag] overrides the fingerprint string verbatim (used by
    [Convert.repair] to preserve the source trace's tag); [chunk_bytes] is
    the chunk payload target ({!Frame.default_chunk_bytes});
    [checkpoint_every] is the index-checkpoint cadence in data chunks
    ({!Frame.default_checkpoint_every}). *)
val create :
  ?chunk_bytes:int -> ?checkpoint_every:int -> ?options:Sigil.Options.t -> ?options_tag:string ->
  string -> t

val add : t -> Sigil.Event_log.entry -> unit

(** [sink w] is [add w] as a sink to pass to [Sigil.Tool.create] or
    [Driver.run_workload]. *)
val sink : t -> Sigil.Event_log.sink

(** Entries accepted so far. *)
val entries : t -> int

(** Chunks flushed so far (not counting the partial one being filled). *)
val chunks : t -> int

(** High-water mark of the in-memory chunk buffer — bounded by
    [chunk_bytes] plus one encoded entry. *)
val peak_buffer_bytes : t -> int

(** Bytes produced so far: what is on disk (in the .tmp) plus the buffered
    partial chunk. 0 once closed. Used by fault injection to trip a sink
    after a byte budget. *)
val bytes_written : t -> int

(** Deterministic [trace.*] telemetry samples: entries, flushed chunks,
    index checkpoints, the buffer high-water mark, and the chunk-payload
    size histogram — all pure functions of the entry stream and the writer
    configuration. *)
val telemetry : t -> Telemetry.sample list

(** [close ?symbols ?contexts w] flushes the final chunk, writes the
    embedded tables (empty when omitted, e.g. for converted text traces
    whose producing run is gone), the chunk index and the trailer, closes
    the .tmp and renames it over the destination. Idempotent. *)
val close : ?symbols:Dbi.Symbol.t -> ?contexts:Dbi.Context.t -> t -> unit

(** [close_raw ?names ?stripped ?ctx_parent ?ctx_fn w] is {!close} for
    callers holding the tables as raw arrays rather than live [Dbi]
    structures — e.g. [Convert.repair] re-emitting the tables recovered
    from a damaged trace. Arrays are indexed by dense id (context 0 is the
    implicit root). *)
val close_raw :
  ?names:string array -> ?stripped:bool -> ?ctx_parent:int array -> ?ctx_fn:int array -> t -> unit

(** [discard w] abandons the trace: closes and deletes the .tmp without
    ever touching the destination path. Idempotent; a no-op after a
    successful [close]. Use on the failure path so a crashed run leaves no
    partial artifact behind. *)
val discard : t -> unit

(** [write_log ?chunk_bytes ?options ?symbols ?contexts log path] dumps an
    in-memory log in one call; on error the partial .tmp is removed and
    the exception re-raised. *)
val write_log :
  ?chunk_bytes:int ->
  ?options:Sigil.Options.t ->
  ?symbols:Dbi.Symbol.t ->
  ?contexts:Dbi.Context.t ->
  Sigil.Event_log.t ->
  string ->
  unit
