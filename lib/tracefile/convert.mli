(** Text ↔ binary event-trace conversion.

    Keeps every pre-existing text event file usable with the binary
    toolchain and lets a binary trace be inspected with line tools. Both
    directions stream record-by-record in bounded memory. A text trace
    carries no symbol/context tables, so a binary file produced from one is
    self-framed but nameless ([Reader.has_names] is false). *)

type format = Binary | Text

(** [sniff path] detects the format from the file magic. *)
val sniff : string -> format

(** [text_to_binary ?chunk_bytes src dst] returns the entry count.

    @raise Failure on a malformed text record. *)
val text_to_binary : ?chunk_bytes:int -> string -> string -> int

(** [binary_to_text src dst] returns the entry count.

    @raise Frame.Corrupt on a damaged binary trace. *)
val binary_to_text : string -> string -> int

(** [repair ?chunk_bytes src dst] rewrites a damaged trace into a clean,
    fully-indexed one: opens [src] with {!Reader.open_salvage}, streams the
    recovered prefix of entries into a fresh writer (preserving the source
    header's options fingerprint and, when the tail survived, its embedded
    symbol/context tables), and returns the salvage report. [dst] is
    written atomically; [src] is untouched.

    @raise Frame.Corrupt when [src]'s header is damaged (nothing to
    salvage). *)
val repair : ?chunk_bytes:int -> string -> string -> Reader.salvage_report
