(** LEB128 variable-length integers over OCaml's native 63-bit ints.

    [write] treats the int as its 63-bit pattern (so every value, negative
    included, round-trips in at most 9 bytes; small non-negative values take
    one byte). [write_signed] applies zigzag first, which keeps small
    magnitudes — positive or negative — short; it is the encoding for delta
    fields. *)

exception Truncated
(** A decoder ran off the end of the buffer or hit an overlong encoding.
    Callers (the chunk decoder) translate this into {!Frame.Corrupt} with
    the offending chunk's file offset. *)

val write : Buffer.t -> int -> unit
val write_signed : Buffer.t -> int -> unit

(** [read b pos] decodes at [!pos], advancing [pos] past the value.

    @raise Truncated on a malformed or cut-off encoding. *)
val read : bytes -> pos:int ref -> int

val read_signed : bytes -> pos:int ref -> int
