let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let bytes b ~pos ~len =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let string s = bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
