type chunk = { c_offset : int; c_entries : int; c_bytes : int }

type t = {
  path : string;
  ic : in_channel;
  r_version : int;
  r_options_tag : string;
  r_chunk_bytes : int;
  r_stripped : bool;
  chunks : chunk array;
  total_entries : int;
  data_start : int; (* first byte after the header *)
  data_end : int; (* tables offset = first byte after the last chunk *)
  names : string array; (* function names; empty when no table embedded *)
  ctx_fn : int array; (* per-context function id; empty when absent *)
  ctx_parent : int array;
}

let read_bytes_at ic ~offset ~len =
  seek_in ic offset;
  let b = Bytes.create len in
  really_input ic b 0 len;
  b

(* Walk the chunk framing from [start] to diagnose a file whose trailer is
   missing or unusable: report the first chunk that is not wholly present.
   [limit] is the end of the region chunks may occupy. Index-checkpoint
   sections share the data chunks' framing and are walked the same way. *)
let diagnose_chunks ic ~start ~limit =
  let rec scan offset =
    if offset = limit then
      Frame.corrupt ~offset "trailer missing or unreadable (file truncated after last chunk?)"
    else if limit - offset < Frame.chunk_header_bytes then
      Frame.corrupt ~offset "truncated chunk header"
    else begin
      let header = read_bytes_at ic ~offset ~len:Frame.chunk_header_bytes in
      let magic = Frame.get_u32 header 0 in
      if magic <> Frame.chunk_magic && magic <> Frame.ckpt_magic then
        Frame.corrupt ~offset "bad chunk magic (trailer missing and data damaged)"
      else
        let payload = Frame.get_u32 header 8 in
        if limit - offset - Frame.chunk_header_bytes < payload then
          Frame.corrupt ~offset "truncated chunk payload"
        else scan (offset + Frame.chunk_header_bytes + payload)
    end
  in
  scan start

let parse_header ic ~file_len =
  let magic_len = String.length Frame.magic in
  if file_len < magic_len + 1 then Frame.corrupt ~offset:0 "not a sigil tracefile (too short)";
  (* header is tiny; over-read a small prefix and parse varints from it *)
  let pre_len = min file_len 4096 in
  let pre = read_bytes_at ic ~offset:0 ~len:pre_len in
  if Bytes.sub_string pre 0 magic_len <> Frame.magic then
    Frame.corrupt ~offset:0 "not a sigil tracefile (bad magic)";
  let version = Char.code (Bytes.get pre magic_len) in
  if version <> Frame.version then
    Frame.corrupt ~offset:magic_len (Printf.sprintf "unsupported version %d" version);
  let pos = ref (magic_len + 1) in
  try
    let tag_len = Varint.read pre ~pos in
    if tag_len < 0 || tag_len > pre_len - !pos then
      Frame.corrupt ~offset:!pos "options fingerprint overruns header";
    let tag = Bytes.sub_string pre !pos tag_len in
    pos := !pos + tag_len;
    let chunk_bytes = Varint.read pre ~pos in
    (version, tag, chunk_bytes, !pos)
  with Varint.Truncated -> Frame.corrupt ~offset:!pos "truncated header"

type tail = {
  t_tables_offset : int;
  t_total_entries : int;
  t_names : string array;
  t_stripped : bool;
  t_ctx_fn : int array;
  t_ctx_parent : int array;
  t_chunks : chunk array;
}

(* Parse everything the trailer locates (tables + chunk index). The caller
   has already verified the trailer magic. *)
let parse_tail ic ~file_len ~data_start =
  let trailer =
    read_bytes_at ic ~offset:(file_len - Frame.trailer_bytes) ~len:Frame.trailer_bytes
  in
  let tables_offset = Frame.get_u64 trailer 0 in
  let index_offset = Frame.get_u64 trailer 8 in
  let total_entries = Frame.get_u64 trailer 16 in
  if
    tables_offset < data_start || index_offset < tables_offset
    || index_offset > file_len - Frame.trailer_bytes
  then Frame.corrupt ~offset:(file_len - Frame.trailer_bytes) "trailer offsets out of range";
  (* tables + index are small; parse them from one contiguous read *)
  let meta_len = file_len - Frame.trailer_bytes - tables_offset in
  let meta = read_bytes_at ic ~offset:tables_offset ~len:meta_len in
  let pos = ref 0 in
  try
    let symbol_count = Varint.read meta ~pos in
    let stripped = Bytes.get meta !pos = '\001' in
    incr pos;
    let names =
      Array.init symbol_count (fun _ ->
          let len = Varint.read meta ~pos in
          if len < 0 || len > meta_len - !pos then
            Frame.corrupt ~offset:tables_offset "symbol name overruns table";
          let name = Bytes.sub_string meta !pos len in
          pos := !pos + len;
          name)
    in
    let context_count = Varint.read meta ~pos in
    let ctx_fn = Array.make context_count (-1) in
    let ctx_parent = Array.make context_count (-1) in
    for ctx = 1 to context_count - 1 do
      ctx_parent.(ctx) <- Varint.read meta ~pos;
      ctx_fn.(ctx) <- Varint.read meta ~pos
    done;
    pos := index_offset - tables_offset;
    let chunk_count = Varint.read meta ~pos in
    let chunks =
      Array.init chunk_count (fun _ ->
          let c_offset = Varint.read meta ~pos in
          let c_entries = Varint.read meta ~pos in
          let c_bytes = Varint.read meta ~pos in
          if c_offset < data_start || c_offset + Frame.chunk_header_bytes + c_bytes > tables_offset
          then Frame.corrupt ~offset:c_offset "chunk index entry out of range";
          { c_offset; c_entries; c_bytes })
    in
    {
      t_tables_offset = tables_offset;
      t_total_entries = total_entries;
      t_names = names;
      t_stripped = stripped;
      t_ctx_fn = ctx_fn;
      t_ctx_parent = ctx_parent;
      t_chunks = chunks;
    }
  with Varint.Truncated ->
    Frame.corrupt ~offset:tables_offset "truncated symbol/context tables or chunk index"

let has_trailer ic ~file_len ~data_start =
  file_len - data_start >= Frame.trailer_bytes
  &&
  let trailer =
    read_bytes_at ic ~offset:(file_len - Frame.trailer_bytes) ~len:Frame.trailer_bytes
  in
  Bytes.sub_string trailer 24 8 = Frame.trailer_magic

let open_file path =
  let ic = open_in_bin path in
  match
    let file_len = in_channel_length ic in
    let version, tag, chunk_bytes, data_start = parse_header ic ~file_len in
    if not (has_trailer ic ~file_len ~data_start) then
      (* no trailer at all: scan the raw tail so the first chunk the cut
         actually damaged is the one named *)
      diagnose_chunks ic ~start:data_start ~limit:(max data_start file_len);
    let tl = parse_tail ic ~file_len ~data_start in
    {
      path;
      ic;
      r_version = version;
      r_options_tag = tag;
      r_chunk_bytes = chunk_bytes;
      r_stripped = tl.t_stripped;
      chunks = tl.t_chunks;
      total_entries = tl.t_total_entries;
      data_start;
      data_end = tl.t_tables_offset;
      names = tl.t_names;
      ctx_fn = tl.t_ctx_fn;
      ctx_parent = tl.t_ctx_parent;
    }
  with
  | t -> t
  | exception e ->
    close_in_noerr ic;
    raise e

let is_tracefile path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = String.length Frame.magic in
      in_channel_length ic >= len
      &&
      let b = Bytes.create len in
      really_input ic b 0 len;
      Bytes.to_string b = Frame.magic)

let close t = close_in_noerr t.ic
let version t = t.r_version
let options_tag t = t.r_options_tag
let chunk_bytes t = t.r_chunk_bytes
let entry_count t = t.total_entries
let chunk_count t = Array.length t.chunks
let chunk_offsets t = Array.to_list (Array.map (fun c -> c.c_offset) t.chunks)
let symbol_count t = Array.length t.names
let context_count t = Array.length t.ctx_fn
let has_names t = Array.length t.names > 0 && Array.length t.ctx_fn > 0
let raw_tables t = (t.names, t.r_stripped, t.ctx_parent, t.ctx_fn)

let fn_name t ctx =
  if ctx = Dbi.Context.root then "<root>"
  else if ctx > 0 && ctx < Array.length t.ctx_fn then begin
    let fn = t.ctx_fn.(ctx) in
    if fn >= 0 && fn < Array.length t.names then t.names.(fn) else "ctx:" ^ string_of_int ctx
  end
  else "ctx:" ^ string_of_int ctx

(* Read one chunk's payload through [ic], verifying framing and CRC. *)
let read_chunk ic (c : chunk) =
  let header = read_bytes_at ic ~offset:c.c_offset ~len:Frame.chunk_header_bytes in
  if Frame.get_u32 header 0 <> Frame.chunk_magic then
    Frame.corrupt ~offset:c.c_offset "bad chunk magic";
  let entries = Frame.get_u32 header 4 in
  let payload_len = Frame.get_u32 header 8 in
  let crc = Frame.get_u32 header 12 in
  if entries <> c.c_entries || payload_len <> c.c_bytes then
    Frame.corrupt ~offset:c.c_offset "chunk header disagrees with index";
  let payload = Bytes.create payload_len in
  really_input ic payload 0 payload_len;
  let actual = Crc32.bytes payload ~pos:0 ~len:payload_len in
  if actual <> crc then
    Frame.corrupt ~offset:c.c_offset
      (Printf.sprintf "chunk CRC mismatch (stored 0x%08x, computed 0x%08x)" crc actual);
  payload

let decode_payload (c : chunk) payload f =
  let d = Frame.delta () in
  let pos = ref 0 in
  (try
     for _ = 1 to c.c_entries do
       f (Frame.decode_entry d payload ~pos)
     done
   with Varint.Truncated | Failure _ ->
     Frame.corrupt ~offset:c.c_offset "undecodable chunk payload");
  if !pos <> Bytes.length payload then
    Frame.corrupt ~offset:c.c_offset "chunk payload has trailing garbage"

(* ------------------------------------------------------------------ *)
(* Salvage                                                             *)
(* ------------------------------------------------------------------ *)

type salvage_report = {
  recovered_entries : int;
  recovered_chunks : int;
  dropped_chunks : int;
  first_bad_offset : int option;
  tail_valid : bool;
}

let pp_salvage_report ppf r =
  Format.fprintf ppf
    "recovered %d entries in %d chunks, dropped %d chunks%s (trailer/index %s)" r.recovered_entries
    r.recovered_chunks r.dropped_chunks
    (match r.first_bad_offset with
    | None -> ""
    | Some o -> Printf.sprintf ", first damage at offset %d" o)
    (if r.tail_valid then "intact" else "lost")

(* After damage at [start - 1], count later data chunks that still frame
   and CRC clean. Salvage refuses to resume past a gap (delta state and
   entry accounting would be guesses), so these are reported as dropped
   rather than silently resurrected. *)
let count_resync ic ~start ~limit =
  let count = ref 0 in
  let offset = ref start in
  while !offset + Frame.chunk_header_bytes <= limit do
    let header = read_bytes_at ic ~offset:!offset ~len:Frame.chunk_header_bytes in
    let advanced =
      Frame.get_u32 header 0 = Frame.chunk_magic
      &&
      let payload_len = Frame.get_u32 header 8 in
      let crc = Frame.get_u32 header 12 in
      payload_len <= limit - !offset - Frame.chunk_header_bytes
      &&
      let payload =
        read_bytes_at ic ~offset:(!offset + Frame.chunk_header_bytes) ~len:payload_len
      in
      Crc32.bytes payload ~pos:0 ~len:payload_len = crc
      && begin
        incr count;
        offset := !offset + Frame.chunk_header_bytes + payload_len;
        true
      end
    in
    if not advanced then incr offset
  done;
  !count

let open_salvage path =
  let ic = open_in_bin path in
  match
    let file_len = in_channel_length ic in
    (* a damaged header is unsalvageable: without the chunk-size framing
       start there is no prefix to trust — [Frame.Corrupt] escapes with
       the offending offset, which is the structured-error half of the
       salvage contract *)
    let version, tag, chunk_bytes, data_start = parse_header ic ~file_len in
    let tail =
      if not (has_trailer ic ~file_len ~data_start) then None
      else
        match parse_tail ic ~file_len ~data_start with
        | tl -> Some tl
        | exception Frame.Corrupt _ -> None
    in
    let limit = match tail with Some tl -> tl.t_tables_offset | None -> file_len in
    (* forward walk keeping every section that is wholly present, CRC-clean
       and (for data chunks) fully decodable; stop at the first damage —
       salvage recovers a strict prefix, never entries past a gap *)
    let recovered = ref [] in
    let entries = ref 0 in
    let bad = ref None in
    let rec walk offset =
      if offset >= limit then ()
      else if limit - offset < Frame.chunk_header_bytes then bad := Some offset
      else begin
        let header = read_bytes_at ic ~offset ~len:Frame.chunk_header_bytes in
        let magic = Frame.get_u32 header 0 in
        let count = Frame.get_u32 header 4 in
        let payload_len = Frame.get_u32 header 8 in
        let crc = Frame.get_u32 header 12 in
        if magic <> Frame.chunk_magic && magic <> Frame.ckpt_magic then bad := Some offset
        else if limit - offset - Frame.chunk_header_bytes < payload_len then bad := Some offset
        else begin
          let payload =
            read_bytes_at ic ~offset:(offset + Frame.chunk_header_bytes) ~len:payload_len
          in
          if Crc32.bytes payload ~pos:0 ~len:payload_len <> crc then bad := Some offset
          else if magic = Frame.ckpt_magic then
            (* intact checkpoint: nothing to recover from it, walk on *)
            walk (offset + Frame.chunk_header_bytes + payload_len)
          else begin
            let c = { c_offset = offset; c_entries = count; c_bytes = payload_len } in
            match decode_payload c payload (fun _ -> ()) with
            | () ->
              recovered := c :: !recovered;
              entries := !entries + count;
              walk (offset + Frame.chunk_header_bytes + payload_len)
            | exception Frame.Corrupt _ -> bad := Some offset
          end
        end
      end
    in
    walk data_start;
    let recovered = Array.of_list (List.rev !recovered) in
    let dropped =
      match tail with
      | Some tl -> max 0 (Array.length tl.t_chunks - Array.length recovered)
      | None -> (
        match !bad with
        | None -> 0
        | Some b -> 1 + count_resync ic ~start:(b + 1) ~limit)
    in
    let report =
      {
        recovered_entries = !entries;
        recovered_chunks = Array.length recovered;
        dropped_chunks = dropped;
        first_bad_offset = !bad;
        tail_valid = tail <> None;
      }
    in
    let data_end =
      if Array.length recovered = 0 then data_start
      else
        let c = recovered.(Array.length recovered - 1) in
        c.c_offset + Frame.chunk_header_bytes + c.c_bytes
    in
    let names, stripped, ctx_fn, ctx_parent =
      match tail with
      | Some tl -> (tl.t_names, tl.t_stripped, tl.t_ctx_fn, tl.t_ctx_parent)
      | None -> ([||], false, [||], [||])
    in
    ( {
        path;
        ic;
        r_version = version;
        r_options_tag = tag;
        r_chunk_bytes = chunk_bytes;
        r_stripped = stripped;
        chunks = recovered;
        total_entries = !entries;
        data_start;
        data_end;
        names;
        ctx_fn;
        ctx_parent;
      },
      report )
  with
  | t -> t
  | exception e ->
    close_in_noerr ic;
    raise e

let iter t f =
  Array.iter (fun c -> decode_payload c (read_chunk t.ic c) f) t.chunks

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let to_log t =
  let log = Sigil.Event_log.create () in
  iter t (Sigil.Event_log.add log);
  log

let decode_array c payload =
  let out = ref [] in
  decode_payload c payload (fun e -> out := e :: !out);
  let arr = Array.of_list (List.rev !out) in
  arr

let map_chunks ?pool t f =
  let work i =
    let c = t.chunks.(i) in
    (* own descriptor per task: in_channel positions are not shareable
       across domains *)
    let ic = open_in_bin t.path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> f i (decode_array c (read_chunk ic c)))
  in
  let indices = List.init (Array.length t.chunks) Fun.id in
  match pool with
  | Some p -> Pool.map p work indices
  | None ->
    List.map (fun i -> f i (decode_array t.chunks.(i) (read_chunk t.ic t.chunks.(i)))) indices

let validate ?pool t =
  let counts = map_chunks ?pool t (fun i arr -> (i, Array.length arr)) in
  let total =
    List.fold_left
      (fun acc (i, n) ->
        if n <> t.chunks.(i).c_entries then
          Frame.corrupt ~offset:t.chunks.(i).c_offset "decoded entry count disagrees with index";
        acc + n)
      0 counts
  in
  if total <> t.total_entries then
    Frame.corrupt ~offset:t.data_end "total entry count disagrees with trailer"
