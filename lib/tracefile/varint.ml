exception Truncated

let write buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    (* lsr sees the 63-bit pattern, so negative ints terminate in 9 bytes *)
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* zigzag: small magnitudes of either sign encode short *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))
let write_signed buf n = write buf (zigzag n)

let read b ~pos =
  let len = Bytes.length b in
  let r = ref 0 and shift = ref 0 and p = ref !pos and continue = ref true in
  while !continue do
    (* 9 groups of 7 bits cover the 63-bit int; a 10th byte is overlong *)
    if !p >= len || !shift > 62 then raise Truncated;
    let c = Char.code (Bytes.unsafe_get b !p) in
    incr p;
    r := !r lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then continue := false
  done;
  pos := !p;
  !r

let read_signed b ~pos = unzigzag (read b ~pos)
