(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.

    Guards every chunk payload in the binary event-trace format; values fit
    in 32 bits and are stored as unsigned little-endian words. *)

val bytes : bytes -> pos:int -> len:int -> int
val string : string -> int
