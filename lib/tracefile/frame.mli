(** On-disk layout constants and the chunk-level entry codec of the binary
    event-trace format (documented in docs/FORMATS.md §6).

    A trace file is: an 8-byte magic + version + options-fingerprint header;
    a sequence of framed chunks (fixed 16-byte header carrying a chunk
    magic, entry count, payload length and CRC-32, followed by the
    varint/delta-encoded payload); the symbol and context tables; a chunk
    index; and a fixed 32-byte trailer locating the tables and index from
    the end of the file. Delta state resets at every chunk boundary, so any
    chunk decodes independently of the others. *)

exception Corrupt of { offset : int; reason : string }
(** Raised by readers on any structural damage. [offset] is the file offset
    of the offending chunk (or region), never a generic position. *)

val corrupt : offset:int -> string -> 'a

val magic : string (** 8 bytes, start of file *)

val trailer_magic : string (** 8 bytes, end of file *)

val version : int
val chunk_magic : int (** u32 framing each chunk header *)

val ckpt_magic : int
(** u32 framing an index-checkpoint section. Checkpoints share the data
    chunks' 16-byte header layout ([ckpt_magic], count, payload length,
    CRC-32) but carry the chunk index accumulated so far instead of
    entries; readers skip them, and salvage uses the latest intact one to
    bound how much a torn tail can lose. *)

val chunk_header_bytes : int
val trailer_bytes : int
val default_chunk_bytes : int (** target payload size per chunk *)

val default_checkpoint_every : int
(** data chunks between two index checkpoints (writer default) *)

(** {2 Little-endian fixed-width helpers} *)

val add_u32 : Buffer.t -> int -> unit
val add_u64 : Buffer.t -> int -> unit
val get_u32 : bytes -> int -> int
val get_u64 : bytes -> int -> int

(** {2 Entry codec}

    One tag byte per entry, then varints; context and call fields are
    zigzag deltas against a per-chunk running (ctx, call) pair, which a
    transfer record rebases to its destination (the consuming call). The
    tag byte also carries flag bits eliding the common cases: [samepos]
    (the entry's (ctx, call) equal the running pair — no position varints
    follow), [stackpos] (they equal the tracked open frame instead — the
    codec mirrors Call/Ret nesting, so a parent resuming after a return
    costs no position bytes), [omit] (a computation's fp op count is zero
    / a transfer is all-unique — the field is not written), [samesrc]
    (the producer repeats the previous transfer's — otherwise it is
    encoded relative to the destination) and [samenum] (a computation's
    int op count / a transfer's byte count repeats the previous one — op
    and transfer sizes are heavily repetitive). *)

type delta = {
  mutable d_ctx : int;
  mutable d_call : int;
  mutable s_ctx : int;
  mutable s_call : int;
  mutable n_ops : int;
  mutable n_bytes : int;
  mutable stack : (int * int) list;
}

val delta : unit -> delta

(** [reset d] zeroes both running pairs — done at every chunk boundary so
    chunks decode independently. *)
val reset : delta -> unit

val encode_entry : delta -> Buffer.t -> Sigil.Event_log.entry -> unit

(** @raise Varint.Truncated on a cut-off value.
    @raise Failure on an unknown tag. *)
val decode_entry : delta -> bytes -> pos:int ref -> Sigil.Event_log.entry
