(** Profile regression comparison.

    The abstract lists "application performance optimization" among the
    tool's uses: profile a program, change it, profile again, and see
    which functions' computation or true communication moved. This module
    diffs two saved profiles ({!Sigil.Profile_io} snapshots), matching
    contexts by call path, and reports per-path deltas. *)

type delta = {
  path : string;
  ops_before : int;
  ops_after : int;
  unique_in_before : int; (** unique input bytes (true read set) *)
  unique_in_after : int;
  status : [ `Changed | `Added | `Removed | `Same ];
}

(** [diff before after] compares two snapshots; one row per call path that
    appears in either, sorted by decreasing absolute operation delta.
    Paths with identical numbers get [`Same]. *)
val diff : Sigil.Profile_io.snapshot -> Sigil.Profile_io.snapshot -> delta list

(** [diff_many ~before ~after] diffs two {e sets} of snapshots — e.g. the
    per-shard profiles a domain-parallel suite run produced — by summing
    each side's per-path aggregates first. The sums are commutative, so the
    result is independent of the order of either list. *)
val diff_many :
  before:Sigil.Profile_io.snapshot list ->
  after:Sigil.Profile_io.snapshot list ->
  delta list

(** [changed deltas] drops the [`Same] rows. *)
val changed : delta list -> delta list

(** [pp ?limit ppf deltas] prints the comparison (default top 25). *)
val pp : ?limit:int -> Format.formatter -> delta list -> unit
