(** HW/SW partitioning of control data flow graphs (§II-C1, §IV-A).

    Implements the paper's breakeven-speedup metric (eq. 1) and the
    max-coverage / min-communication trimming heuristic, producing the
    accelerator-candidate lists of Tables II–III and the coverage breakdown
    of Fig 7.

    The accelerator model: non-preemptible, all input data ready before it
    starts, an internal buffer (so only {e unique} communication is paid),
    and a fixed SoC bus bandwidth for offload. For a node [v] with merged
    sub-tree:

    {v t_sw         = incl_cycles(v)
 t_comm       = (incl_input_unique + incl_output_unique) / bus_bytes_per_cycle
 S_breakeven  = t_sw / (t_sw - t_comm) v}

    A node with [t_comm >= t_sw] cannot break even at any speedup
    ([breakeven] returns [infinity]).

    Trimming: the calltree is cut so each branch carries the least
    breakeven-speedup at its bottom. Deterministically, a node is merged
    (becomes a leaf candidate) when its own breakeven is no worse than the
    best achievable anywhere strictly inside its sub-tree — preferring the
    larger box (more coverage) on ties. The root and [main] are never
    merged; system-call pseudo-functions are never candidates. *)

type candidate = {
  ctx : Dbi.Context.id;
  name : string;
  path : string;
  breakeven : float;
  coverage : float; (** share of total program cycles in the merged box *)
  incl_cycles : int;
  input_unique : int;
  output_unique : int;
  incl_ops : int;
}

type trimmed = {
  selected : candidate list; (** leaves of the trimmed tree, preorder *)
  coverage : float; (** summed coverage of the selected leaves *)
}

(** Default SoC bus bandwidth: 8 bytes/cycle. *)
val default_bus_bytes_per_cycle : float

(** [breakeven ?bus_bytes_per_cycle cdfg ctx] for one merged sub-tree. *)
val breakeven : ?bus_bytes_per_cycle:float -> Cdfg.t -> Dbi.Context.id -> float

(** [trim ?bus_bytes_per_cycle ?max_coverage cdfg] runs the heuristic.
    [max_coverage] (default 0.5) bounds the program share a merged
    {e driver} box may take: a non-leaf node doing less than half of its
    sub-tree's work itself only merges below the bound, which keeps the
    heuristic selecting "useful functions" rather than the whole program
    (the root and [main] are never merged either way).

    [pool] parallelizes the reduction over the top two levels of calltree
    subtrees; results are bit-identical to the sequential pass (the
    per-subtree reductions are pure and re-assembled in child order). *)
val trim :
  ?bus_bytes_per_cycle:float -> ?max_coverage:float -> ?pool:Pool.t -> Cdfg.t -> trimmed

(** [rank trimmed] sorts candidates by increasing breakeven, deduplicated
    by function name (keeping each name's best context). *)
val rank : trimmed -> candidate list

(** [top n] / [bottom n] of a ranked list (bottom is worst-first). *)
val top : int -> candidate list -> candidate list

val bottom : int -> candidate list -> candidate list
