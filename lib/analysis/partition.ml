type candidate = {
  ctx : Dbi.Context.id;
  name : string;
  path : string;
  breakeven : float;
  coverage : float;
  incl_cycles : int;
  input_unique : int;
  output_unique : int;
  incl_ops : int;
}

type trimmed = {
  selected : candidate list;
  coverage : float;
}

let default_bus_bytes_per_cycle = 8.0

let breakeven ?(bus_bytes_per_cycle = default_bus_bytes_per_cycle) cdfg ctx =
  let n = Cdfg.node cdfg ctx in
  let t_sw = float_of_int n.Cdfg.incl_cycles in
  let t_comm =
    float_of_int (n.Cdfg.incl_input_unique + n.Cdfg.incl_output_unique) /. bus_bytes_per_cycle
  in
  if t_sw <= 0.0 || t_comm >= t_sw then infinity else t_sw /. (t_sw -. t_comm)

let is_syscall name = Dbi.Machine.is_syscall_fn name

let candidate_of ?(bus_bytes_per_cycle = default_bus_bytes_per_cycle) cdfg total ctx =
  let n = Cdfg.node cdfg ctx in
  {
    ctx;
    name = n.Cdfg.name;
    path = n.Cdfg.path;
    breakeven = breakeven ~bus_bytes_per_cycle cdfg ctx;
    coverage = float_of_int n.Cdfg.incl_cycles /. float_of_int (max 1 total);
    incl_cycles = n.Cdfg.incl_cycles;
    input_unique = n.Cdfg.incl_input_unique;
    output_unique = n.Cdfg.incl_output_unique;
    incl_ops = n.Cdfg.incl_ops;
  }

(* A node merges when no strictly deeper cut beats its own breakeven:
   best_inside(v) = min over descendants d of breakeven(d). Merging at the
   highest such node maximizes coverage (Amdahl) while keeping the least
   breakeven at the bottom of each branch.

   "Useful functions" constraint: a merged box must be a plausible
   accelerator, not the whole program wearing a box. A non-leaf node
   merges only when its sub-tree is at most [max_coverage] of the program;
   leaves (single hot functions like fluidanimate's ComputeForces) are
   exempt. Without this, top-level drivers whose I/O happens inside their
   own sub-tree always win with breakeven 1.0. *)
(* The visit is a pure bottom-up reduction per subtree: it returns the best
   breakeven available anywhere inside (own included) together with the
   selected leaves of the trimmed subtree, in preorder. Parent selection
   only ever {e replaces} what the children selected, so subtrees can be
   reduced independently — [?pool] fans the top two levels of the calltree
   out across domains; concatenating the per-child results in child order
   reproduces the sequential preorder bit for bit. *)
let trim ?(bus_bytes_per_cycle = default_bus_bytes_per_cycle) ?(max_coverage = 0.5) ?pool cdfg =
  let total = Cdfg.total_cycles cdfg in
  let never_merge n = n.Cdfg.name = "<root>" || n.Cdfg.name = "main" || is_syscall n.Cdfg.name in
  let box_allowed n =
    n.Cdfg.children = []
    || float_of_int n.Cdfg.incl_cycles <= max_coverage *. float_of_int (max 1 total)
  in
  let combine n ctx kid_results =
    let own =
      if never_merge n || not (box_allowed n) then infinity
      else breakeven ~bus_bytes_per_cycle cdfg ctx
    in
    let best_inside =
      List.fold_left (fun acc (best, _) -> min acc best) infinity kid_results
    in
    let selected =
      if (not (never_merge n)) && own <= best_inside && own < infinity then
        [ candidate_of ~bus_bytes_per_cycle cdfg total ctx ]
      else List.concat_map snd kid_results
    in
    (min own best_inside, selected)
  in
  let rec visit ctx =
    let n = Cdfg.node cdfg ctx in
    combine n ctx (List.map visit n.Cdfg.children)
  in
  let rec visit_fanout depth ctx =
    let n = Cdfg.node cdfg ctx in
    let kids =
      match pool with
      | Some p when depth > 0 && List.length n.Cdfg.children > 1 ->
        Pool.map p (visit_fanout (depth - 1)) n.Cdfg.children
      | _ -> List.map (if depth > 0 then visit_fanout (depth - 1) else visit) n.Cdfg.children
    in
    combine n ctx kids
  in
  let _, selected = visit_fanout 2 Dbi.Context.root in
  let coverage =
    List.fold_left (fun acc (c : candidate) -> acc +. c.coverage) 0.0 selected
  in
  { selected; coverage }

let rank trimmed =
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt by_name c.name with
      | Some best when best.breakeven <= c.breakeven -> ()
      | Some _ | None -> Hashtbl.replace by_name c.name c)
    trimmed.selected;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) by_name [] in
  List.sort
    (fun a b ->
      match compare a.breakeven b.breakeven with
      | 0 -> compare a.name b.name
      | c -> c)
    all

let top n ranked =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take n ranked

let bottom n ranked = top n (List.rev ranked)
