type delta = {
  path : string;
  ops_before : int;
  ops_after : int;
  unique_in_before : int;
  unique_in_after : int;
  status : [ `Changed | `Added | `Removed | `Same ];
}

let index snapshot =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (s : Sigil.Profile_io.ctx_stats) ->
      let path = Sigil.Profile_io.path snapshot s.Sigil.Profile_io.ctx in
      (* recursion can revisit a path string; accumulate *)
      let ops = s.Sigil.Profile_io.int_ops + s.Sigil.Profile_io.fp_ops in
      let unique = s.Sigil.Profile_io.input_unique in
      match Hashtbl.find_opt table path with
      | Some (o, u) -> Hashtbl.replace table path (o + ops, u + unique)
      | None -> Hashtbl.replace table path (ops, unique))
    (Sigil.Profile_io.contexts snapshot);
  table

(* Merging path-indexed tables is a commutative sum, so the aggregate of a
   snapshot list is independent of list order — shards produced by the
   domain-parallel suite runner can be diffed without sorting them first. *)
let index_many snapshots =
  let table = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      Hashtbl.iter
        (fun path (ops, unique) ->
          match Hashtbl.find_opt table path with
          | Some (o, u) -> Hashtbl.replace table path (o + ops, u + unique)
          | None -> Hashtbl.replace table path (ops, unique))
        (index snap))
    snapshots;
  table

let diff_indexed b a =
  let paths = Hashtbl.create 64 in
  Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) b;
  Hashtbl.iter (fun p _ -> Hashtbl.replace paths p ()) a;
  let rows =
    Hashtbl.fold
      (fun path () acc ->
        let bo, bu = Option.value ~default:(0, 0) (Hashtbl.find_opt b path) in
        let ao, au = Option.value ~default:(0, 0) (Hashtbl.find_opt a path) in
        let status =
          match (Hashtbl.mem b path, Hashtbl.mem a path) with
          | false, true -> `Added
          | true, false -> `Removed
          | true, true | false, false ->
            if bo = ao && bu = au then `Same else `Changed
        in
        {
          path;
          ops_before = bo;
          ops_after = ao;
          unique_in_before = bu;
          unique_in_after = au;
          status;
        }
        :: acc)
      paths []
  in
  List.sort
    (fun x y ->
      match compare (abs (y.ops_after - y.ops_before)) (abs (x.ops_after - x.ops_before)) with
      | 0 -> compare x.path y.path
      | c -> c)
    rows

let diff before after = diff_indexed (index before) (index after)
let diff_many ~before ~after = diff_indexed (index_many before) (index_many after)
let changed deltas = List.filter (fun d -> d.status <> `Same) deltas

let status_string = function
  | `Changed -> "~"
  | `Added -> "+"
  | `Removed -> "-"
  | `Same -> "="

let pp ?(limit = 25) ppf deltas =
  Format.fprintf ppf "%2s %12s %12s %10s %10s  %s@." "" "ops-before" "ops-after" "uniq-in-b"
    "uniq-in-a" "path";
  List.iteri
    (fun i d ->
      if i < limit then
        Format.fprintf ppf "%2s %12d %12d %10d %10d  %s@." (status_string d.status) d.ops_before
          d.ops_after d.unique_in_before d.unique_in_after d.path)
    deltas
