type node = {
  ctx : Dbi.Context.id;
  call : int;
  occurrence : int;
  self : int;
  inclusive : int;
}

type built = {
  b_id : int;
  b_ctx : Dbi.Context.id;
  b_call : int;
  b_occ : int;
  b_self : int;
  b_incl : int;
  b_pred : built option; (* the predecessor on the longest chain *)
  b_preds : built list; (* every dependency, for scheduling *)
}

type t = {
  serial : int;
  best : built option;
  nodes : int;
  order : built list; (* creation (= topological) order *)
}

type stream = (Sigil.Event_log.entry -> unit) -> unit

let call_key ctx call = (ctx lsl 40) lor (call land ((1 lsl 40) - 1))

type 'n frame = {
  f_ctx : Dbi.Context.id;
  f_call : int;
  mutable f_occ : int;
  mutable f_last : 'n option; (* previous occurrence of this call *)
  mutable f_call_pred : 'n option; (* caller's occurrence that called us *)
  mutable f_pending_ops : int;
  mutable f_pending_xfers : (Dbi.Context.id * int) list; (* (src ctx, src call) *)
}

(* One pass over the event stream, generic in the per-fragment node
   representation: [mk] builds a node from its dependencies (the full
   analysis allocates a DAG record, the O(1) summary keeps just the
   inclusive length), [incl] reads the inclusive chain length back.
   Returns (serial length, fragment count, best node). *)
let pass (type n) ~(mk : ctx:Dbi.Context.id -> call:int -> occ:int -> self:int -> deps:n list -> n)
    ~(incl : n -> int) (stream : stream) : int * int * n option =
  let latest_closed : (int, n) Hashtbl.t = Hashtbl.create 1024 in
  let serial = ref 0 in
  let nodes = ref 0 in
  let best : n option ref = ref None in
  let consider b =
    match !best with
    | Some cur when incl cur >= incl b -> ()
    | Some _ | None -> best := Some b
  in
  let close_fragment frame =
    let deps = ref [] in
    (match frame.f_last with Some b -> deps := b :: !deps | None -> ());
    (match frame.f_call_pred with Some b -> deps := b :: !deps | None -> ());
    frame.f_call_pred <- None;
    List.iter
      (fun (src_ctx, src_call) ->
        match Hashtbl.find_opt latest_closed (call_key src_ctx src_call) with
        | Some b -> deps := b :: !deps
        | None -> () (* program input or evicted producer: no ordering *))
      frame.f_pending_xfers;
    let b =
      mk ~ctx:frame.f_ctx ~call:frame.f_call ~occ:frame.f_occ ~self:frame.f_pending_ops
        ~deps:!deps
    in
    incr nodes;
    serial := !serial + frame.f_pending_ops;
    frame.f_occ <- frame.f_occ + 1;
    frame.f_last <- Some b;
    frame.f_pending_ops <- 0;
    frame.f_pending_xfers <- [];
    Hashtbl.replace latest_closed (call_key frame.f_ctx frame.f_call) b;
    consider b;
    b
  in
  let new_frame ctx call call_pred =
    {
      f_ctx = ctx;
      f_call = call;
      f_occ = 0;
      f_last = None;
      f_call_pred = call_pred;
      f_pending_ops = 0;
      f_pending_xfers = [];
    }
  in
  let stack = ref [ new_frame Dbi.Context.root 0 None ] in
  let top () =
    match !stack with
    | frame :: _ -> frame
    | [] -> failwith "Critpath: empty stack"
  in
  stream (fun entry ->
      match entry with
      | Sigil.Event_log.Comp { ctx; call; int_ops; fp_ops } ->
        let frame = top () in
        if frame.f_ctx <> ctx || frame.f_call <> call then
          failwith "Critpath: Comp does not match the open call";
        frame.f_pending_ops <- frame.f_pending_ops + int_ops + fp_ops
      | Sigil.Event_log.Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes = _; unique_bytes = _ }
        ->
        let frame = top () in
        if frame.f_ctx <> dst_ctx || frame.f_call <> dst_call then
          failwith "Critpath: Xfer does not match the open call";
        frame.f_pending_xfers <- (src_ctx, src_call) :: frame.f_pending_xfers
      | Sigil.Event_log.Call { ctx; call } ->
        let caller = top () in
        let b = close_fragment caller in
        stack := new_frame ctx call (Some b) :: !stack
      | Sigil.Event_log.Ret { ctx; call } -> (
        match !stack with
        | frame :: rest ->
          if frame.f_ctx <> ctx || frame.f_call <> call then
            failwith "Critpath: Ret does not match the open call";
          let (_ : n) = close_fragment frame in
          stack := rest
        | [] -> failwith "Critpath: Ret with empty stack"));
  (* close whatever remains (normally just the synthetic root) *)
  List.iter
    (fun frame ->
      if frame.f_pending_ops > 0 || frame.f_pending_xfers <> [] then
        ignore (close_fragment frame))
    !stack;
  (!serial, !nodes, !best)

let analyze_stream stream =
  let id = ref 0 in
  let order_rev = ref [] in
  let mk ~ctx ~call ~occ ~self ~deps =
    let start, pred =
      List.fold_left
        (fun (start, pred) (b : built) ->
          if b.b_incl > start then (b.b_incl, Some b) else (start, pred))
        (0, None) deps
    in
    let b =
      {
        b_id = !id;
        b_ctx = ctx;
        b_call = call;
        b_occ = occ;
        b_self = self;
        b_incl = start + self;
        b_pred = pred;
        b_preds = deps;
      }
    in
    incr id;
    order_rev := b :: !order_rev;
    b
  in
  let serial, nodes, best = pass ~mk ~incl:(fun b -> b.b_incl) stream in
  { serial; best; nodes; order = List.rev !order_rev }

let analyze log = analyze_stream (Sigil.Event_log.iter log)

type summary = { s_serial : int; s_critical : int; s_fragments : int }

let summarize_stream stream =
  let mk ~ctx:_ ~call:_ ~occ:_ ~self ~deps =
    self + List.fold_left (fun acc d -> max acc d) 0 deps
  in
  let serial, nodes, best = pass ~mk ~incl:Fun.id stream in
  {
    s_serial = serial;
    s_critical = (match best with Some incl -> incl | None -> 0);
    s_fragments = nodes;
  }

let summary_parallelism s =
  if s.s_critical = 0 then 1.0 else float_of_int s.s_serial /. float_of_int s.s_critical

let serial_length t = t.serial

let critical_path_length t =
  match t.best with
  | Some b -> b.b_incl
  | None -> 0

let parallelism t =
  let cp = critical_path_length t in
  if cp = 0 then 1.0 else float_of_int t.serial /. float_of_int cp

let critical_path t =
  let rec collect acc = function
    | None -> acc
    | Some b ->
      collect
        ({ ctx = b.b_ctx; call = b.b_call; occurrence = b.b_occ; self = b.b_self;
           inclusive = b.b_incl }
        :: acc)
        b.b_pred
  in
  collect [] t.best

let critical_path_contexts t =
  let path = List.rev (critical_path t) in
  (* leaf first *)
  let rec dedup = function
    | a :: b :: rest when a = b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup (List.map (fun n -> n.ctx) path)

let node_count t = t.nodes

type schedule = {
  cores : int;
  makespan : int;
  speedup : float;
  utilization : float;
}

(* Greedy list scheduling in creation order (every dependency closes before
   its consumer, so creation order is topological): each fragment starts as
   soon as its dependencies have finished and the earliest-free core is
   available. *)
let schedule t ~cores =
  if cores <= 0 then invalid_arg "Critpath.schedule: cores must be positive";
  let finish = Array.make (max 1 t.nodes) 0 in
  let core_free = Array.make cores 0 in
  let makespan = ref 0 in
  List.iter
    (fun b ->
      let ready = List.fold_left (fun acc p -> max acc finish.(p.b_id)) 0 b.b_preds in
      let core = ref 0 in
      for k = 1 to cores - 1 do
        if core_free.(k) < core_free.(!core) then core := k
      done;
      let start = max ready core_free.(!core) in
      let stop = start + b.b_self in
      core_free.(!core) <- stop;
      finish.(b.b_id) <- stop;
      if stop > !makespan then makespan := stop)
    t.order;
  let makespan = !makespan in
  {
    cores;
    makespan;
    speedup = (if makespan = 0 then 1.0 else float_of_int t.serial /. float_of_int makespan);
    utilization =
      (if makespan = 0 then 1.0
       else float_of_int t.serial /. float_of_int (cores * makespan));
  }
