(** Critical-path analysis over sequential event files (§II-C2, §IV-C).

    Reconstructs the dependency chains of Fig 3 from an {!Sigil.Event_log}:
    every function call is split into occurrence nodes (a new occurrence
    each time the function resumes after a child call), with

    - a conservative order edge from the previous occurrence of the same
      call,
    - a call edge from the caller's occurrence that issued the call, and
    - data-dependency edges from the producing call's latest occurrence for
      every transfer the fragment consumed.

    Functions are modelled as non-blocking: a caller's resumption does not
    depend on the child returning, only on explicit data edges. Node
    self-cost is the operations retired in the fragment; the inclusive cost
    of a node is the longest dependent chain from the program start; the
    program's critical path is the maximum inclusive cost. The maximum
    theoretical function-level parallelism (Fig 13) is the ratio of the
    serial length (total operations) to the critical-path length. *)

type node = {
  ctx : Dbi.Context.id;
  call : int;
  occurrence : int; (** 0-based occurrence index within the call *)
  self : int; (** operations in this fragment *)
  inclusive : int; (** longest chain from program start through this node *)
}

type t

(** A push-based producer of event entries in trace order: partially
    applied [Sigil.Event_log.iter log], a streaming binary-trace iterator
    ([Tracefile.Reader.iter r]), or [Sigil.Event_log.iter_file path] for a
    text file — the analysis never needs the log materialized. *)
type stream = (Sigil.Event_log.entry -> unit) -> unit

(** [analyze log] builds every dependency chain and the critical path. *)
val analyze : Sigil.Event_log.t -> t

(** [analyze_stream stream] is {!analyze} in a single incremental pass
    over any {!stream}: memory is proportional to the dependency DAG
    (needed for {!critical_path} and {!schedule}), never to the encoded
    log, which is consumed entry by entry. *)
val analyze_stream : stream -> t

(** {2 O(1)-per-fragment summary}

    When only the Fig 13 numbers are wanted, the DAG need not be retained:
    a fragment's contribution reduces to one int (its inclusive chain
    length), so the pass keeps just the open call stack and the
    latest-occurrence table. *)

type summary = {
  s_serial : int; (** total operations (serial schedule length) *)
  s_critical : int; (** longest dependent chain *)
  s_fragments : int; (** occurrence nodes visited *)
}

(** Single pass, no DAG: bit-identical serial/critical/parallelism to
    {!analyze} over the same stream. *)
val summarize_stream : stream -> summary

(** serial / critical (1.0 for an empty program), as {!parallelism}. *)
val summary_parallelism : summary -> float

(** Total operations in the program (serial schedule length). *)
val serial_length : t -> int

(** Length of the longest dependent chain. *)
val critical_path_length : t -> int

(** [parallelism t] = serial / critical (1.0 for an empty program). *)
val parallelism : t -> float

(** Nodes on the critical path, program order (main-side first, leaf
    last). *)
val critical_path : t -> node list

(** Distinct contexts along the critical path, leaf-to-start order,
    consecutive duplicates removed — the paper's
    [drand48_iterate -> ... -> main] rendering. *)
val critical_path_contexts : t -> Dbi.Context.id list

(** Number of occurrence nodes built. *)
val node_count : t -> int

(** {2 Scheduling}

    The paper's closing application: "the functions in parallel paths in a
    program can be mapped onto multiple cores such that dependencies are
    respected... The developer can map dependency chains onto these slots."
    Greedy list scheduling of the fragment DAG onto a fixed number of
    scheduling slots. *)

type schedule = {
  cores : int;
  makespan : int; (** schedule length in operations *)
  speedup : float; (** serial length / makespan *)
  utilization : float; (** busy fraction across all cores *)
}

(** [schedule t ~cores] maps every fragment onto [cores] slots, respecting
    the dependency edges; with unlimited cores the makespan approaches the
    critical-path length. *)
val schedule : t -> cores:int -> schedule
