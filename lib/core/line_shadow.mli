(** Line-granularity re-use mode (§IV-B3, Fig 12).

    When configured with a cache line size, Sigil shadows every line in
    memory rather than every byte, and prints re-use counts and lifetimes
    for every block touched by the program instead of aggregating costs by
    function. Re-use count of a line = accesses beyond the first. *)

type t

type line_record = {
  line_addr : int; (** line index (address / line size) *)
  accesses : int;
  first : int; (** timestamp of first access *)
  last : int; (** timestamp of last access *)
}

(** Fig 12's bins over per-line re-use counts. *)
type bins = {
  under_10 : int;
  under_100 : int;
  under_1000 : int;
  under_10000 : int;
  over_10000 : int;
}

(** [create ~line_size ()] — [line_size] must be a positive power of two
    (default 64). *)
val create : ?line_size:int -> unit -> t

(** [touch t ~now addr size] records an access covering
    [\[addr, addr+size)]. *)
val touch : t -> now:int -> int -> int -> unit

val line_size : t -> int

(** Number of distinct lines touched. *)
val lines : t -> int

(** All per-line records, ascending line address. *)
val records : t -> line_record list

(** [reuse_count r] is [r.accesses - 1]. *)
val reuse_count : line_record -> int

val bins : t -> bins

(** Fractions of [bins] that sum to 1 (0 lines yields all zeros). *)
val bin_fractions : t -> float * float * float * float * float

(** Deterministic [line.*] telemetry samples: touch calls, total per-line
    access count, distinct lines, and the configured line size. *)
val telemetry : t -> Telemetry.sample list
