type line_record = {
  line_addr : int;
  accesses : int;
  first : int;
  last : int;
}

type bins = {
  under_10 : int;
  under_100 : int;
  under_1000 : int;
  under_10000 : int;
  over_10000 : int;
}

type cell = {
  mutable accesses : int;
  mutable first : int;
  mutable last : int;
}

type t = {
  line_bits : int;
  size : int;
  table : (int, cell) Hashtbl.t;
  mutable touches : int; (* telemetry: touch calls, not lines covered *)
}

let log2 n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(line_size = 64) () =
  if line_size <= 0 || line_size land (line_size - 1) <> 0 then
    invalid_arg "Line_shadow.create: line size must be a positive power of two";
  { line_bits = log2 line_size; size = line_size; table = Hashtbl.create 4096; touches = 0 }

let touch t ~now addr size =
  if size <= 0 then invalid_arg "Line_shadow.touch: size must be positive";
  t.touches <- t.touches + 1;
  let first_line = addr lsr t.line_bits in
  let last_line = (addr + size - 1) lsr t.line_bits in
  for line = first_line to last_line do
    match Hashtbl.find_opt t.table line with
    | Some c ->
      c.accesses <- c.accesses + 1;
      c.last <- now
    | None -> Hashtbl.add t.table line { accesses = 1; first = now; last = now }
  done

let line_size t = t.size
let lines t = Hashtbl.length t.table

let records t =
  let all =
    Hashtbl.fold
      (fun line c acc ->
        { line_addr = line; accesses = c.accesses; first = c.first; last = c.last } :: acc)
      t.table []
  in
  List.sort (fun a b -> compare a.line_addr b.line_addr) all

let reuse_count (r : line_record) = r.accesses - 1

let bins t =
  Hashtbl.fold
    (fun _ c b ->
      let reuse = c.accesses - 1 in
      if reuse < 10 then { b with under_10 = b.under_10 + 1 }
      else if reuse < 100 then { b with under_100 = b.under_100 + 1 }
      else if reuse < 1000 then { b with under_1000 = b.under_1000 + 1 }
      else if reuse < 10000 then { b with under_10000 = b.under_10000 + 1 }
      else { b with over_10000 = b.over_10000 + 1 })
    t.table
    { under_10 = 0; under_100 = 0; under_1000 = 0; under_10000 = 0; over_10000 = 0 }

let telemetry t =
  let line_accesses = Hashtbl.fold (fun _ c acc -> acc + c.accesses) t.table 0 in
  Telemetry.
    [
      count "line.touches" t.touches;
      count "line.accesses" line_accesses;
      gauge "line.lines" (Hashtbl.length t.table);
      gauge "line.size" t.size;
    ]

let bin_fractions t =
  let b = bins t in
  let total = b.under_10 + b.under_100 + b.under_1000 + b.under_10000 + b.over_10000 in
  if total = 0 then (0., 0., 0., 0., 0.)
  else
    let f n = float_of_int n /. float_of_int total in
    (f b.under_10, f b.under_100, f b.under_1000, f b.under_10000, f b.over_10000)
