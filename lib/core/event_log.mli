(** Sequential event-file representation (§II-C2).

    Sigil's second output form: the execution as a list of dependent
    "events" — fragments of computation separated by data-transfer edges.
    Order is preserved *between* functions but not within one (the paper
    does not distinguish the order of events inside a function), so each
    fragment carries its operation totals and the set of transfers it
    consumed.

    Entries:
    - [Call]: a context was entered ([call] is its per-context sequence
      number);
    - [Comp]: computation retired by one fragment of one call;
    - [Xfer]: bytes flowing from a producer call to the current fragment;
    - [Ret]: the call returned.

    This module is a sink-agnostic facade: the tool pushes entries into an
    opaque {!sink} as the run produces them, so a consumer chooses where
    they go — the in-memory log below (tests, small runs), the streaming
    binary writer in [Tracefile.Writer] (bounded memory regardless of trace
    length), or both via {!tee}. The line-oriented text serialization
    ([C]/[O]/[X]/[R] records) remains the interchange format;
    [Tracefile.Convert] translates between it and the binary format. *)

type entry =
  | Call of { ctx : Dbi.Context.id; call : int }
  | Comp of { ctx : Dbi.Context.id; call : int; int_ops : int; fp_ops : int }
  | Xfer of {
      src_ctx : Dbi.Context.id;
      src_call : int;
      dst_ctx : Dbi.Context.id;
      dst_call : int;
      bytes : int;
      unique_bytes : int;
    }
  | Ret of { ctx : Dbi.Context.id; call : int }

(** {2 Sinks} *)

(** Where produced entries flow. Applied once per entry, in trace order. *)
type sink = entry -> unit

(** [tee a b] forwards every entry to [a] then [b]. *)
val tee : sink -> sink -> sink

(** {2 In-memory log}

    Backed by a growable array: [add] is amortized O(1) and {!iter} /
    {!entries} cost one pass per invocation (no per-call list reversal). *)

type t

val create : unit -> t
val add : t -> entry -> unit

(** [memory_sink t] is [add t] as a {!sink}. *)
val memory_sink : t -> sink

val entries : t -> entry list
val length : t -> int
val iter : t -> (entry -> unit) -> unit

(** {2 Text format} *)

val entry_to_string : entry -> string

(** [entry_of_string line] parses one record.

    @raise Failure on a malformed line. *)
val entry_of_string : string -> entry

val save : t -> string -> unit

(** [iter_file path f] streams a saved text event file record by record in
    constant memory (blank lines skipped).

    @raise Failure on a malformed file. *)
val iter_file : string -> (entry -> unit) -> unit

(** [load path] reads a saved event file into memory.

    @raise Failure on a malformed file. *)
val load : string -> t
