(* Per-fragment transfer accumulator: key packs (src context, src call). *)
let xfer_key src_ctx src_call = (src_ctx lsl 40) lor (src_call land ((1 lsl 40) - 1))
let xfer_src key = key lsr 40
let xfer_call key = key land ((1 lsl 40) - 1)

type xfer_acc = { mutable bytes : int; mutable unique : int }

type frame = {
  ctx : Dbi.Context.id;
  call : int;
  mutable frag_int_ops : int;
  mutable frag_fp_ops : int;
  frag_xfers : (int, xfer_acc) Hashtbl.t;
}

type t = {
  options : Options.t;
  machine : Dbi.Machine.t;
  shadow : Shadow.t;
  profile : Profile.t;
  reuse : Reuse.t;
  line : Line_shadow.t option;
  log : Event_log.t option; (* in-memory sink, when we own one *)
  sink : Event_log.sink option; (* where produced events flow *)
  events_dispatched : int ref; (* telemetry: entries pushed into the sink *)
  mutable stack : frame list; (* innermost first; bottom = synthetic root *)
}

let new_frame ctx call =
  { ctx; call; frag_int_ops = 0; frag_fp_ops = 0; frag_xfers = Hashtbl.create 8 }

let create ?(options = Options.default) ?event_sink machine =
  let reuse = Reuse.create () in
  (* an external sink turns event collection on even without the option *)
  let log, sink =
    match event_sink with
    | Some s -> (None, Some s)
    | None ->
      if options.Options.collect_events then
        let log = Event_log.create () in
        (Some log, Some (Event_log.memory_sink log))
      else (None, None)
  in
  let events_dispatched = ref 0 in
  let sink =
    Option.map
      (fun emit e ->
        incr events_dispatched;
        emit e)
      sink
  in
  let shadow =
    Shadow.create ~reuse:options.Options.reuse_mode ~track_writer_call:(sink <> None)
      ?max_chunks:options.Options.max_chunks ~sink:(Reuse.sink reuse) ()
  in
  {
    options;
    machine;
    shadow;
    profile = Profile.create ();
    reuse;
    line =
      (match options.Options.line_size with
      | Some size -> Some (Line_shadow.create ~line_size:size ())
      | None -> None);
    log;
    sink;
    events_dispatched;
    stack = [ new_frame Dbi.Context.root 0 ];
  }

let flush_fragment t frame =
  match t.sink with
  | None -> ()
  | Some emit ->
    if frame.frag_int_ops > 0 || frame.frag_fp_ops > 0 then
      emit
        (Event_log.Comp
           {
             ctx = frame.ctx;
             call = frame.call;
             int_ops = frame.frag_int_ops;
             fp_ops = frame.frag_fp_ops;
           });
    frame.frag_int_ops <- 0;
    frame.frag_fp_ops <- 0;
    if Hashtbl.length frame.frag_xfers > 0 then begin
      (* deterministic order for reproducible event files *)
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) frame.frag_xfers [] in
      List.iter
        (fun key ->
          let acc = Hashtbl.find frame.frag_xfers key in
          emit
            (Event_log.Xfer
               {
                 src_ctx = xfer_src key;
                 src_call = xfer_call key;
                 dst_ctx = frame.ctx;
                 dst_call = frame.call;
                 bytes = acc.bytes;
                 unique_bytes = acc.unique;
               }))
        (List.sort compare keys);
      Hashtbl.reset frame.frag_xfers
    end

let top t =
  match t.stack with
  | frame :: _ -> frame
  | [] -> assert false (* the synthetic root frame is never popped *)

(* Dependency edges also cover a function consuming data from an earlier
   call of itself (the PRNG-state chains of §IV-C); only reads of the
   current call's own writes impose no ordering. *)
let[@inline] xfer_add frame ~producer ~producer_call ~bytes ~unique_bytes =
  if producer <> frame.ctx || producer_call <> frame.call then begin
    let key = xfer_key producer producer_call in
    let acc =
      match Hashtbl.find_opt frame.frag_xfers key with
      | Some acc -> acc
      | None ->
        let acc = { bytes = 0; unique = 0 } in
        Hashtbl.add frame.frag_xfers key acc;
        acc
    in
    acc.bytes <- acc.bytes + bytes;
    acc.unique <- acc.unique + unique_bytes
  end

(* Per-byte reference path (Options.per_byte_shadow): the pre-range
   implementation, kept for differential tests and the ablation. *)
let byte_read t frame addr =
  let r =
    Shadow.read t.shadow ~ctx:frame.ctx ~call:frame.call ~now:(Dbi.Machine.now t.machine) addr
  in
  Profile.record_read t.profile ~producer:r.Shadow.producer ~consumer:frame.ctx
    ~unique:r.Shadow.unique ~bytes:1;
  match t.sink with
  | None -> ()
  | Some _ ->
    xfer_add frame ~producer:r.Shadow.producer ~producer_call:r.Shadow.producer_call ~bytes:1
      ~unique_bytes:(if r.Shadow.unique then 1 else 0)

(* Range fast path: one shadow traversal for the whole access, then one
   profile update and one transfer-accumulator hit per coalesced run. *)
let range_read t frame addr size =
  let runs =
    Shadow.read_range t.shadow ~ctx:frame.ctx ~call:frame.call
      ~now:(Dbi.Machine.now t.machine) addr size
  in
  let log = t.sink <> None in
  List.iter
    (fun (run : Shadow.run) ->
      Profile.record_run t.profile ~producer:run.Shadow.r_producer ~consumer:frame.ctx
        ~bytes:run.Shadow.r_bytes ~unique_bytes:run.Shadow.r_unique_bytes;
      if log then
        xfer_add frame ~producer:run.Shadow.r_producer
          ~producer_call:run.Shadow.r_producer_call ~bytes:run.Shadow.r_bytes
          ~unique_bytes:run.Shadow.r_unique_bytes)
    runs

let tool t : Dbi.Tool.t =
  let line_mode = t.line <> None in
  {
    name = "sigil";
    on_enter =
      (fun ~ctx ~fn:_ ~call ->
        if not line_mode then begin
          let parent = top t in
          flush_fragment t parent;
          Profile.record_call t.profile ~ctx;
          (match t.sink with
          | Some emit -> emit (Event_log.Call { ctx; call })
          | None -> ());
          t.stack <- new_frame ctx call :: t.stack
        end);
    on_leave =
      (fun ~ctx:_ ~fn:_ ->
        if not line_mode then begin
          match t.stack with
          | [ _root ] -> () (* unbalanced leave; machine validates, be safe *)
          | frame :: rest ->
            flush_fragment t frame;
            (match t.sink with
            | Some emit -> emit (Event_log.Ret { ctx = frame.ctx; call = frame.call })
            | None -> ());
            t.stack <- rest
          | [] -> assert false
        end);
    on_read =
      (fun ~ctx:_ ~addr ~size ->
        match t.line with
        | Some line -> Line_shadow.touch line ~now:(Dbi.Machine.now t.machine) addr size
        | None ->
          let frame = top t in
          if t.options.Options.per_byte_shadow then
            for i = 0 to size - 1 do
              byte_read t frame (addr + i)
            done
          else range_read t frame addr size);
    on_write =
      (fun ~ctx ~addr ~size ->
        match t.line with
        | Some line -> Line_shadow.touch line ~now:(Dbi.Machine.now t.machine) addr size
        | None ->
          let frame = top t in
          Profile.record_write t.profile ~ctx ~bytes:size;
          let now = Dbi.Machine.now t.machine in
          if t.options.Options.per_byte_shadow then
            for i = 0 to size - 1 do
              Shadow.write t.shadow ~ctx:frame.ctx ~call:frame.call ~now (addr + i)
            done
          else Shadow.write_range t.shadow ~ctx:frame.ctx ~call:frame.call ~now addr size);
    on_op =
      (fun ~ctx ~kind ~count ->
        if not line_mode then begin
          Profile.record_ops t.profile ~ctx kind count;
          let frame = top t in
          match kind with
          | Dbi.Event.Int_op -> frame.frag_int_ops <- frame.frag_int_ops + count
          | Dbi.Event.Fp_op -> frame.frag_fp_ops <- frame.frag_fp_ops + count
        end);
    on_branch = (fun ~ctx:_ ~taken:_ -> ());
    on_finish =
      (fun () ->
        (match t.stack with
        | [ root ] -> flush_fragment t root
        | frames -> List.iter (flush_fragment t) frames);
        Shadow.flush t.shadow);
  }

let options t = t.options
let machine t = t.machine
let profile t = t.profile
let reuse t = t.reuse
let line_shadow t = t.line
let event_log t = t.log
let shadow_footprint_bytes t = Shadow.footprint_bytes t.shadow
let shadow_footprint_peak_bytes t = Shadow.footprint_peak_bytes t.shadow
let shadow_evictions t = Shadow.evictions t.shadow

let telemetry t =
  let unique, total = Profile.totals t.profile in
  Shadow.telemetry t.shadow
  @ (match t.line with Some line -> Line_shadow.telemetry line | None -> [])
  @ Telemetry.
      [
        count "events.dispatched" !(t.events_dispatched);
        count "profile.unique_read_bytes" unique;
        count "profile.read_bytes" total;
        gauge "profile.contexts" (List.length (Profile.contexts t.profile));
      ]
