(** Sigil run-time options (the tool's command-line switches). *)

type t = {
  reuse_mode : bool;
      (** extend shadow objects with re-use count and lifetime variables
          (Table I, "Additional variables for Reuse mode") *)
  collect_events : bool;
      (** record the sequential event file alongside aggregates *)
  line_size : int option;
      (** shadow cache lines of this many bytes instead of single bytes
          (line-granularity mode, §IV-B3); [None] = byte granularity *)
  max_chunks : int option;
      (** memory-limit parameter: cap on live second-level shadow chunks,
          freed FIFO ("free up space from shadow bytes of addresses that
          have been least recently touched"); [None] = unlimited *)
  per_byte_shadow : bool;
      (** drive the shadow engine one byte at a time instead of through the
          range-batched fast path. Reference implementation kept for
          differential testing and the range-vs-per-byte ablation; output
          is identical, only slower. *)
  instr_budget : int option;
      (** fault-isolation guard: abort the run (raising
          [Dbi.Machine.Budget_exhausted]) once the retired-instruction
          clock exceeds this many instructions; [None] = unlimited *)
  timeout_s : float option;
      (** fault-isolation guard: abort the run (raising
          [Dbi.Machine.Timeout]) once it has held the host CPU for this
          many wall-clock seconds; [None] = no timeout *)
  collect_stats : bool;
      (** assemble a {!Telemetry.snapshot} for the run (the probes
          themselves are always on; this only controls whether the driver
          gathers them at run end). Never affects profile or trace content,
          so it is deliberately absent from {!fingerprint}. *)
}

(** Baseline profiling: no reuse stats, no events, byte granularity,
    unlimited shadow memory. *)
val default : t

val with_reuse : t -> t
val with_stats : t -> t
val with_events : t -> t
val with_per_byte_shadow : t -> t
val with_line_size : t -> int -> t
val with_max_chunks : t -> int -> t
val with_instr_budget : t -> int -> t
val with_timeout : t -> float -> t

(** [fingerprint t] is a stable one-line rendering of every switch,
    embedded in trace-file headers so a post-processing tool can tell which
    configuration produced a trace. *)
val fingerprint : t -> string
