type entry =
  | Call of { ctx : Dbi.Context.id; call : int }
  | Comp of { ctx : Dbi.Context.id; call : int; int_ops : int; fp_ops : int }
  | Xfer of {
      src_ctx : Dbi.Context.id;
      src_call : int;
      dst_ctx : Dbi.Context.id;
      dst_call : int;
      bytes : int;
      unique_bytes : int;
    }
  | Ret of { ctx : Dbi.Context.id; call : int }

type sink = entry -> unit

let tee a b e =
  a e;
  b e

(* Growable array; the [dummy] fills unused slots. *)
type t = { mutable arr : entry array; mutable n : int }

let dummy = Ret { ctx = 0; call = 0 }

let create () = { arr = [||]; n = 0 }

let add t e =
  if t.n = Array.length t.arr then begin
    let grown = Array.make (max 64 (2 * t.n)) dummy in
    Array.blit t.arr 0 grown 0 t.n;
    t.arr <- grown
  end;
  t.arr.(t.n) <- e;
  t.n <- t.n + 1

let memory_sink t = add t
let length t = t.n

let iter t f =
  for i = 0 to t.n - 1 do
    f t.arr.(i)
  done

let entries t = List.init t.n (fun i -> t.arr.(i))

let entry_to_string = function
  | Call { ctx; call } -> Printf.sprintf "C %d %d" ctx call
  | Comp { ctx; call; int_ops; fp_ops } -> Printf.sprintf "O %d %d %d %d" ctx call int_ops fp_ops
  | Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes } ->
    Printf.sprintf "X %d %d %d %d %d %d" src_ctx src_call dst_ctx dst_call bytes unique_bytes
  | Ret { ctx; call } -> Printf.sprintf "R %d %d" ctx call

let entry_of_string line =
  let fail () = failwith ("Event_log: malformed record: " ^ line) in
  let ints rest = List.map (fun s -> match int_of_string_opt s with Some i -> i | None -> fail ()) rest in
  match String.split_on_char ' ' (String.trim line) with
  | "C" :: rest ->
    (match ints rest with
    | [ ctx; call ] -> Call { ctx; call }
    | _ -> fail ())
  | "O" :: rest ->
    (match ints rest with
    | [ ctx; call; int_ops; fp_ops ] -> Comp { ctx; call; int_ops; fp_ops }
    | _ -> fail ())
  | "X" :: rest ->
    (match ints rest with
    | [ src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes ] ->
      Xfer { src_ctx; src_call; dst_ctx; dst_call; bytes; unique_bytes }
    | _ -> fail ())
  | "R" :: rest ->
    (match ints rest with
    | [ ctx; call ] -> Ret { ctx; call }
    | _ -> fail ())
  | _ -> fail ()

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> iter t (fun e -> output_string oc (entry_to_string e ^ "\n")))

let iter_file path f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop () =
        match input_line ic with
        | line ->
          if String.trim line <> "" then f (entry_of_string line);
          loop ()
        | exception End_of_file -> ()
      in
      loop ())

let load path =
  let t = create () in
  iter_file path (add t);
  t
