type t = {
  reuse_mode : bool;
  collect_events : bool;
  line_size : int option;
  max_chunks : int option;
  per_byte_shadow : bool;
  instr_budget : int option;
  timeout_s : float option;
  collect_stats : bool;
}

let default =
  {
    reuse_mode = false;
    collect_events = false;
    line_size = None;
    max_chunks = None;
    per_byte_shadow = false;
    instr_budget = None;
    timeout_s = None;
    collect_stats = false;
  }

let with_reuse t = { t with reuse_mode = true }
let with_stats t = { t with collect_stats = true }
let with_events t = { t with collect_events = true }
let with_per_byte_shadow t = { t with per_byte_shadow = true }

let with_line_size t size =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Options.with_line_size: line size must be a positive power of two";
  { t with line_size = Some size }

let with_max_chunks t n =
  if n <= 0 then invalid_arg "Options.with_max_chunks: must be positive";
  { t with max_chunks = Some n }

let with_instr_budget t n =
  if n <= 0 then invalid_arg "Options.with_instr_budget: must be positive";
  { t with instr_budget = Some n }

let with_timeout t s =
  if s < 0.0 then invalid_arg "Options.with_timeout: must be non-negative";
  { t with timeout_s = Some s }

let fingerprint t =
  let opt = function None -> "-" | Some n -> string_of_int n in
  let optf = function None -> "-" | Some s -> Printf.sprintf "%g" s in
  Printf.sprintf "reuse=%b events=%b line=%s max_chunks=%s per_byte=%b budget=%s timeout=%s"
    t.reuse_mode t.collect_events (opt t.line_size) (opt t.max_chunks) t.per_byte_shadow
    (opt t.instr_budget) (optf t.timeout_s)
