(** The Sigil tool.

    Hooks into the DBI machine the way Sigil hooks into Callgrind: it
    receives function names, addresses and operation counts, shadows every
    data byte, and produces the paper's outputs — the per-context aggregate
    {!Profile}, the {!Reuse} statistics (reuse mode), the {!Line_shadow}
    records (line mode), and the sequential {!Event_log} (event mode).

    In line-granularity mode the tool shadows lines instead of bytes and
    skips per-function aggregation, exactly as §IV-B3 describes; the
    byte-level machinery is disabled for that run. *)

type t

(** [create ?options ?event_sink machine] builds the tool state.

    When [event_sink] is given, event collection is enabled (regardless of
    [Options.collect_events]) and every produced entry is pushed into the
    sink as the run executes — nothing is buffered in the tool, so a
    streaming sink (e.g. [Tracefile.Writer.sink]) keeps memory bounded for
    arbitrarily long traces; {!event_log} is [None] in that case. Without
    a sink, [Options.collect_events] selects the in-memory log. *)
val create : ?options:Options.t -> ?event_sink:Event_log.sink -> Dbi.Machine.t -> t

(** The callback record to attach to the machine. *)
val tool : t -> Dbi.Tool.t

val options : t -> Options.t
val machine : t -> Dbi.Machine.t

(** Aggregate communication profile (byte mode; empty in line mode). *)
val profile : t -> Profile.t

(** Reuse statistics; meaningful only when [reuse_mode] was set. *)
val reuse : t -> Reuse.t

(** Line records; [None] unless line mode was configured. *)
val line_shadow : t -> Line_shadow.t option

(** The in-memory event log; [None] unless [collect_events] selected it
    (an external [event_sink] owns the entries instead). *)
val event_log : t -> Event_log.t option

(** {2 Shadow-memory introspection (Fig 6 data)} *)

val shadow_footprint_bytes : t -> int
val shadow_footprint_peak_bytes : t -> int
val shadow_evictions : t -> int

(** Deterministic telemetry for this run: the [shadow.*] samples, the
    [line.*] samples when line mode is active, events dispatched into the
    sink, and the profile's unique/total read bytes. *)
val telemetry : t -> Telemetry.sample list
