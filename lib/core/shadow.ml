type sink = {
  on_episode_end : reader:Dbi.Context.id -> reads:int -> first:int -> last:int -> unit;
  on_version_end : producer:Dbi.Context.id -> nonunique:int -> unit;
}

let null_sink =
  {
    on_episode_end = (fun ~reader:_ ~reads:_ ~first:_ ~last:_ -> ());
    on_version_end = (fun ~producer:_ ~nonunique:_ -> ());
  }

type read_result = {
  producer : Dbi.Context.id;
  producer_call : int;
  unique : bool;
}

type run = {
  r_producer : Dbi.Context.id;
  r_producer_call : int;
  r_bytes : int;
  r_unique_bytes : int;
}

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let chunk_bytes = chunk_size
let max_address = 1 lsl 30
let chunk_index_count = max_address lsr chunk_bits

(* The first level is itself paged: a 64-entry directory of on-demand
   32 KB superpages instead of one always-resident 2 MB pointer array, so
   the footprint floor is a few KB rather than 2 MB. *)
let page_bits = 12
let page_slots = 1 lsl page_bits
let dir_len = chunk_index_count lsr page_bits

(* Packed per-byte shadow fields (see docs/FORMATS.md, "Shadow memory
   layout"). Context ids live in one unsigned 16-bit plane (0xFFFF is the
   "invalid" sentinel, so ids must stay below [max_ctx]); 32-bit fields —
   call numbers, timestamps, counters — are striped across a lo/hi pair of
   16-bit planes. Everything stays an unboxed OCaml [int] on access. *)
type i16 = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let no_ctx = 0xFFFF
let max_ctx = 0xFFFE
let max_u32 = 0xFFFF_FFFF

let make_i16 init : i16 =
  let a = Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout chunk_size in
  Bigarray.Array1.fill a init;
  a

type u32 = { lo : i16; hi : i16 }

let make_u32 () = { lo = make_i16 0; hi = make_i16 0 }

let[@inline] u32_get p i =
  Bigarray.Array1.unsafe_get p.lo i lor (Bigarray.Array1.unsafe_get p.hi i lsl 16)

let[@inline] u32_set p i v =
  Bigarray.Array1.unsafe_set p.lo i (v land 0xFFFF);
  Bigarray.Array1.unsafe_set p.hi i ((v lsr 16) land 0xFFFF)

type reuse_chunk = {
  ep_first : u32;
  ep_last : u32;
  ep_reads : u32;
  ver_nonunique : u32;
}

type chunk = {
  index : int;
  writer : i16; (* producer context, no_ctx = invalid *)
  writer_call : u32 option; (* producer call number, event mode only *)
  reader : i16; (* last reader context, no_ctx = none *)
  reader_call : u32;
  reuse : reuse_chunk option;
}

type t = {
  dir : chunk option array option array;
  reuse_mode : bool;
  track_writer_call : bool;
  max_chunks : int;
  sink : sink;
  fifo : int Queue.t; (* chunk indices, creation order *)
  mutable live : int;
  mutable peak : int;
  mutable pages : int; (* superpages are never freed: monotone *)
  mutable evictions : int;
  mutable last_chunk : chunk option; (* single-entry lookup cache *)
  (* telemetry probes: plain int bumps, once per call (not per byte) *)
  mutable allocs : int;
  mutable range_reads : int;
  mutable range_read_bytes : int;
  mutable range_runs : int;
  mutable range_writes : int;
  mutable range_write_bytes : int;
  read_size : Telemetry.Hist.t;
}

let create ?(reuse = false) ?(track_writer_call = false) ?max_chunks ?(sink = null_sink) () =
  {
    dir = Array.make dir_len None;
    reuse_mode = reuse;
    track_writer_call;
    max_chunks = (match max_chunks with None -> max_int | Some n -> n);
    sink;
    fifo = Queue.create ();
    live = 0;
    peak = 0;
    pages = 0;
    evictions = 0;
    last_chunk = None;
    allocs = 0;
    range_reads = 0;
    range_read_bytes = 0;
    range_runs = 0;
    range_writes = 0;
    range_write_bytes = 0;
    read_size = Telemetry.Hist.create ();
  }

(* Host bytes per chunk: 2 B writer + 2 B reader + 4 B reader call, plus
   4 B producer call in event mode and 16 B of reuse fields in reuse mode,
   per shadowed guest byte; each 16-bit plane adds a small bigarray
   header. *)
let per_chunk_bytes reuse track_writer_call =
  let bytes_per_byte =
    2 + 2 + 4 + (if track_writer_call then 4 else 0) + if reuse then 16 else 0
  in
  let planes = 4 + (if track_writer_call then 2 else 0) + if reuse then 8 else 0 in
  (bytes_per_byte * chunk_size) + (planes * 16)

let page_bytes = (page_slots * 8) + 16

let footprint_bytes t =
  (dir_len * 8) + (t.pages * page_bytes)
  + (t.live * per_chunk_bytes t.reuse_mode t.track_writer_call)

let footprint_peak_bytes t =
  (dir_len * 8) + (t.pages * page_bytes)
  + (t.peak * per_chunk_bytes t.reuse_mode t.track_writer_call)

let chunks_live t = t.live
let chunks_peak t = t.peak
let evictions t = t.evictions

let flush_byte t (c : chunk) i =
  let reader = Bigarray.Array1.unsafe_get c.reader i in
  let writer = Bigarray.Array1.unsafe_get c.writer i in
  (match c.reuse with
  | None -> ()
  | Some r ->
    let reads = u32_get r.ep_reads i in
    if reader <> no_ctx && reads > 0 then
      t.sink.on_episode_end ~reader ~reads ~first:(u32_get r.ep_first i)
        ~last:(u32_get r.ep_last i);
    (* program-input bytes (never written) are data elements too; their
       producer is the root pseudo-context *)
    if writer <> no_ctx || reader <> no_ctx then begin
      let producer = if writer <> no_ctx then writer else Dbi.Context.root in
      t.sink.on_version_end ~producer ~nonunique:(u32_get r.ver_nonunique i)
    end);
  Bigarray.Array1.unsafe_set c.writer i no_ctx;
  (match c.writer_call with None -> () | Some wc -> u32_set wc i 0);
  Bigarray.Array1.unsafe_set c.reader i no_ctx;
  u32_set c.reader_call i 0;
  match c.reuse with
  | None -> ()
  | Some r ->
    u32_set r.ep_first i 0;
    u32_set r.ep_last i 0;
    u32_set r.ep_reads i 0;
    u32_set r.ver_nonunique i 0

let[@inline] byte_live c i =
  Bigarray.Array1.unsafe_get c.writer i <> no_ctx
  || Bigarray.Array1.unsafe_get c.reader i <> no_ctx

let flush_chunk t c =
  for i = 0 to chunk_size - 1 do
    if byte_live c i then flush_byte t c i
  done

let slot_of t index =
  match t.dir.(index lsr page_bits) with
  | None -> None
  | Some page -> page.(index land (page_slots - 1))

let evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some index ->
    (match slot_of t index with
    | None -> ()
    | Some c ->
      flush_chunk t c;
      (match t.dir.(index lsr page_bits) with
      | Some page -> page.(index land (page_slots - 1)) <- None
      | None -> assert false);
      t.live <- t.live - 1;
      t.evictions <- t.evictions + 1;
      (match t.last_chunk with
      | Some lc when lc.index = index -> t.last_chunk <- None
      | Some _ | None -> ()))

let page_for t index =
  let d = index lsr page_bits in
  match t.dir.(d) with
  | Some page -> page
  | None ->
    let page = Array.make page_slots None in
    t.dir.(d) <- Some page;
    t.pages <- t.pages + 1;
    page

let new_chunk t index =
  let reuse =
    if t.reuse_mode then
      Some
        {
          ep_first = make_u32 ();
          ep_last = make_u32 ();
          ep_reads = make_u32 ();
          ver_nonunique = make_u32 ();
        }
    else None
  in
  let c =
    {
      index;
      writer = make_i16 no_ctx;
      writer_call = (if t.track_writer_call then Some (make_u32 ()) else None);
      reader = make_i16 no_ctx;
      reader_call = make_u32 ();
      reuse;
    }
  in
  if t.live >= t.max_chunks then evict_one t;
  t.allocs <- t.allocs + 1;
  let page = page_for t index in
  page.(index land (page_slots - 1)) <- Some c;
  Queue.add index t.fifo;
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live;
  c

let chunk_for t addr =
  if addr < 0 || addr >= max_address then invalid_arg "Shadow: address out of range";
  let index = addr lsr chunk_bits in
  match t.last_chunk with
  | Some c when c.index = index -> c
  | Some _ | None ->
    let c =
      match slot_of t index with
      | Some c -> c
      | None -> new_chunk t index
    in
    t.last_chunk <- Some c;
    c

(* Packed-field bounds, checked once per operation (not per byte). *)
let[@inline] check_packed ctx call now =
  if ctx < 0 || ctx > max_ctx then
    invalid_arg "Shadow: context id exceeds packed 16-bit bound";
  if call < 0 || call > max_u32 then
    invalid_arg "Shadow: call number exceeds packed 32-bit bound";
  if now < 0 || now > max_u32 then
    invalid_arg "Shadow: timestamp exceeds packed 32-bit bound"

(* One byte of read bookkeeping. The result is packed into a single
   immediate int — producer lsl 33 | producer_call lsl 1 | unique — so the
   hot range loop never allocates. *)
let[@inline] read_byte (c : chunk) i ~ctx ~call ~now sink =
  let writer = Bigarray.Array1.unsafe_get c.writer i in
  let producer = if writer <> no_ctx then writer else Dbi.Context.root in
  let producer_call =
    match c.writer_call with
    | Some wc when writer <> no_ctx -> u32_get wc i
    | Some _ | None -> 0
  in
  (* Unique vs non-unique follows the (function, call) pair, which is why
     Table I stores both the last reader and the last reader call: a read
     is non-unique only when the same call of the same function already
     read the byte. An accelerator must re-fetch its inputs on every
     invocation, so cross-call re-reads count as unique communication. *)
  let prev_reader = Bigarray.Array1.unsafe_get c.reader i in
  let same_episode = prev_reader = ctx && u32_get c.reader_call i = call in
  (match c.reuse with
  | None -> ()
  | Some r ->
    if same_episode then begin
      u32_set r.ep_reads i (u32_get r.ep_reads i + 1);
      u32_set r.ep_last i now;
      u32_set r.ver_nonunique i (u32_get r.ver_nonunique i + 1)
    end
    else begin
      (* close the previous reader's episode, open a new one *)
      let reads = u32_get r.ep_reads i in
      if prev_reader <> no_ctx && reads > 0 then
        sink.on_episode_end ~reader:prev_reader ~reads ~first:(u32_get r.ep_first i)
          ~last:(u32_get r.ep_last i);
      u32_set r.ep_first i now;
      u32_set r.ep_last i now;
      u32_set r.ep_reads i 1
    end);
  Bigarray.Array1.unsafe_set c.reader i ctx;
  u32_set c.reader_call i call;
  (producer lsl 33) lor (producer_call lsl 1) lor (if same_episode then 0 else 1)

let[@inline] packed_producer p = p lsr 33
let[@inline] packed_producer_call p = (p lsr 1) land max_u32
let[@inline] packed_unique p = p land 1 = 1

let read t ~ctx ~call ~now addr =
  check_packed ctx call now;
  let c = chunk_for t addr in
  let i = addr land (chunk_size - 1) in
  let p = read_byte c i ~ctx ~call ~now t.sink in
  {
    producer = packed_producer p;
    producer_call = packed_producer_call p;
    unique = packed_unique p;
  }

let[@inline] check_range addr len =
  if len <= 0 then invalid_arg "Shadow: range length must be positive";
  if addr < 0 || addr > max_address - len then invalid_arg "Shadow: address out of range"

(* Baseline-mode fast path (no reuse stats, no producer calls): the
   per-byte work is three plane loads, a compare, and at most three plane
   stores — every configuration match is hoisted out of the loop and the
   producer call is constantly 0, so runs split on producer only. *)
let read_range_fast t ~ctx ~call addr len =
  let runs = ref [] in
  let run_producer = ref (-1) in
  let run_bytes = ref 0 in
  let run_unique = ref 0 in
  let call_lo = call land 0xFFFF in
  let call_hi = call lsr 16 in
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    (* resolve the chunk once per within-chunk span, not once per byte *)
    let c = chunk_for t !pos in
    let i0 = !pos land (chunk_size - 1) in
    let span = min !remaining (chunk_size - i0) in
    let writer_a = c.writer in
    let reader_a = c.reader in
    let rc_lo = c.reader_call.lo in
    let rc_hi = c.reader_call.hi in
    for i = i0 to i0 + span - 1 do
      let writer = Bigarray.Array1.unsafe_get writer_a i in
      let producer = if writer <> no_ctx then writer else Dbi.Context.root in
      let unique =
        if
          Bigarray.Array1.unsafe_get reader_a i = ctx
          && Bigarray.Array1.unsafe_get rc_lo i = call_lo
          && Bigarray.Array1.unsafe_get rc_hi i = call_hi
        then 0 (* same episode: reader fields already hold (ctx, call) *)
        else begin
          Bigarray.Array1.unsafe_set reader_a i ctx;
          Bigarray.Array1.unsafe_set rc_lo i call_lo;
          Bigarray.Array1.unsafe_set rc_hi i call_hi;
          1
        end
      in
      if producer = !run_producer && !run_bytes > 0 then begin
        run_bytes := !run_bytes + 1;
        run_unique := !run_unique + unique
      end
      else begin
        if !run_bytes > 0 then
          runs :=
            {
              r_producer = !run_producer;
              r_producer_call = 0;
              r_bytes = !run_bytes;
              r_unique_bytes = !run_unique;
            }
            :: !runs;
        run_producer := producer;
        run_bytes := 1;
        run_unique := unique
      end
    done;
    pos := !pos + span;
    remaining := !remaining - span
  done;
  if !run_bytes > 0 then
    runs :=
      {
        r_producer = !run_producer;
        r_producer_call = 0;
        r_bytes = !run_bytes;
        r_unique_bytes = !run_unique;
      }
      :: !runs;
  List.rev !runs

let read_range_general t ~ctx ~call ~now addr len =
  let runs = ref [] in
  (* live run accumulator; consecutive bytes sharing (producer, call)
     coalesce into one run *)
  let run_producer = ref (-1) in
  let run_pcall = ref 0 in
  let run_bytes = ref 0 in
  let run_unique = ref 0 in
  let emit () =
    if !run_bytes > 0 then
      runs :=
        {
          r_producer = !run_producer;
          r_producer_call = !run_pcall;
          r_bytes = !run_bytes;
          r_unique_bytes = !run_unique;
        }
        :: !runs
  in
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    (* resolve the chunk once per within-chunk span, not once per byte *)
    let c = chunk_for t !pos in
    let i0 = !pos land (chunk_size - 1) in
    let span = min !remaining (chunk_size - i0) in
    for i = i0 to i0 + span - 1 do
      let p = read_byte c i ~ctx ~call ~now t.sink in
      let producer = packed_producer p in
      let producer_call = packed_producer_call p in
      let unique = if packed_unique p then 1 else 0 in
      if !run_bytes > 0 && producer = !run_producer && producer_call = !run_pcall then begin
        run_bytes := !run_bytes + 1;
        run_unique := !run_unique + unique
      end
      else begin
        emit ();
        run_producer := producer;
        run_pcall := producer_call;
        run_bytes := 1;
        run_unique := unique
      end
    done;
    pos := !pos + span;
    remaining := !remaining - span
  done;
  emit ();
  List.rev !runs

let read_range t ~ctx ~call ~now addr len =
  check_packed ctx call now;
  check_range addr len;
  t.range_reads <- t.range_reads + 1;
  t.range_read_bytes <- t.range_read_bytes + len;
  Telemetry.Hist.observe t.read_size len;
  let runs =
    if t.reuse_mode || t.track_writer_call then read_range_general t ~ctx ~call ~now addr len
    else read_range_fast t ~ctx ~call addr len
  in
  t.range_runs <- t.range_runs + List.length runs;
  runs

(* In non-reuse mode the sink calls of [flush_byte] are no-ops, so an
   overwrite only needs to clear the reader episode — no full flush. *)
let[@inline] write_byte t (c : chunk) i ~ctx ~call =
  (match c.reuse with
  | None ->
    Bigarray.Array1.unsafe_set c.reader i no_ctx;
    u32_set c.reader_call i 0
  | Some _ -> if byte_live c i then flush_byte t c i);
  Bigarray.Array1.unsafe_set c.writer i ctx;
  match c.writer_call with None -> () | Some wc -> u32_set wc i call

let write t ~ctx ~call ~now:_ addr =
  check_packed ctx call 0;
  let c = chunk_for t addr in
  write_byte t c (addr land (chunk_size - 1)) ~ctx ~call

(* Spans wide enough to amortize the [Array1.sub] descriptor allocations
   are cleared with [Array1.fill] (memset) instead of a per-byte loop. *)
let fill_span_threshold = 32

let write_span_fast (c : chunk) i0 span ~ctx =
  if span >= fill_span_threshold then begin
    Bigarray.Array1.(fill (sub c.reader i0 span) no_ctx);
    Bigarray.Array1.(fill (sub c.reader_call.lo i0 span) 0);
    Bigarray.Array1.(fill (sub c.reader_call.hi i0 span) 0);
    Bigarray.Array1.(fill (sub c.writer i0 span) ctx)
  end
  else begin
    let reader_a = c.reader in
    let rc_lo = c.reader_call.lo in
    let rc_hi = c.reader_call.hi in
    let writer_a = c.writer in
    for i = i0 to i0 + span - 1 do
      Bigarray.Array1.unsafe_set reader_a i no_ctx;
      Bigarray.Array1.unsafe_set rc_lo i 0;
      Bigarray.Array1.unsafe_set rc_hi i 0;
      Bigarray.Array1.unsafe_set writer_a i ctx
    done
  end

let write_range t ~ctx ~call ~now:_ addr len =
  check_packed ctx call 0;
  check_range addr len;
  t.range_writes <- t.range_writes + 1;
  t.range_write_bytes <- t.range_write_bytes + len;
  let fast = (not t.reuse_mode) && not t.track_writer_call in
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    let c = chunk_for t !pos in
    let i0 = !pos land (chunk_size - 1) in
    let span = min !remaining (chunk_size - i0) in
    if fast then write_span_fast c i0 span ~ctx
    else
      for i = i0 to i0 + span - 1 do
        write_byte t c i ~ctx ~call
      done;
    pos := !pos + span;
    remaining := !remaining - span
  done

let flush t =
  Array.iter
    (function
      | Some page ->
        Array.iter
          (function
            | Some c -> flush_chunk t c
            | None -> ())
          page
      | None -> ())
    t.dir

let telemetry t =
  Telemetry.
    [
      count "shadow.chunks_allocated" t.allocs;
      gauge "shadow.chunks_live" t.live;
      peak "shadow.chunks_peak" t.peak;
      gauge "shadow.pages" t.pages;
      count "shadow.evictions" t.evictions;
      count "shadow.range_reads" t.range_reads;
      count "shadow.range_read_bytes" t.range_read_bytes;
      count "shadow.range_runs" t.range_runs;
      count "shadow.range_writes" t.range_writes;
      count "shadow.range_write_bytes" t.range_write_bytes;
      hist "shadow.read_size" t.read_size;
      peak "shadow.footprint_peak_bytes" (footprint_peak_bytes t);
    ]

let producer_of t addr =
  if addr < 0 || addr >= max_address then invalid_arg "Shadow: address out of range";
  match slot_of t (addr lsr chunk_bits) with
  | None -> None
  | Some c ->
    let w = Bigarray.Array1.unsafe_get c.writer (addr land (chunk_size - 1)) in
    if w <> no_ctx then Some w else None
