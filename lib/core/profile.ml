type fn_stats = {
  mutable input_unique : int;
  mutable input_nonunique : int;
  mutable local_unique : int;
  mutable local_nonunique : int;
  mutable written : int;
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable calls : int;
}

type edge = {
  src : Dbi.Context.id;
  dst : Dbi.Context.id;
  mutable bytes : int;
  mutable unique_bytes : int;
}

(* Context ids are dense and small; pack an edge key into one int. *)
let edge_key src dst = (src lsl 30) lor dst

type t = {
  mutable stats : fn_stats option array;
  edges : (int, edge) Hashtbl.t;
  mutable last_edge : edge option; (* consecutive reads usually share an edge *)
}

let create () = { stats = Array.make 256 None; edges = Hashtbl.create 256; last_edge = None }

let zero_stats () =
  {
    input_unique = 0;
    input_nonunique = 0;
    local_unique = 0;
    local_nonunique = 0;
    written = 0;
    int_ops = 0;
    fp_ops = 0;
    calls = 0;
  }

let stats t ctx =
  let len = Array.length t.stats in
  if ctx >= len then begin
    let grown = Array.make (max (2 * len) (ctx + 1)) None in
    Array.blit t.stats 0 grown 0 len;
    t.stats <- grown
  end;
  match t.stats.(ctx) with
  | Some s -> s
  | None ->
    let s = zero_stats () in
    t.stats.(ctx) <- Some s;
    s

let edge t src dst =
  match t.last_edge with
  | Some e when e.src = src && e.dst = dst -> e
  | Some _ | None ->
    let key = edge_key src dst in
    let e =
      match Hashtbl.find_opt t.edges key with
      | Some e -> e
      | None ->
        let e = { src; dst; bytes = 0; unique_bytes = 0 } in
        Hashtbl.add t.edges key e;
        e
    in
    t.last_edge <- Some e;
    e

let record_run t ~producer ~consumer ~bytes ~unique_bytes =
  let nonunique = bytes - unique_bytes in
  let s = stats t consumer in
  if producer = consumer then begin
    s.local_unique <- s.local_unique + unique_bytes;
    s.local_nonunique <- s.local_nonunique + nonunique
  end
  else begin
    s.input_unique <- s.input_unique + unique_bytes;
    s.input_nonunique <- s.input_nonunique + nonunique;
    let e = edge t producer consumer in
    e.bytes <- e.bytes + bytes;
    e.unique_bytes <- e.unique_bytes + unique_bytes
  end

let record_read t ~producer ~consumer ~unique ~bytes =
  record_run t ~producer ~consumer ~bytes ~unique_bytes:(if unique then bytes else 0)

let record_write t ~ctx ~bytes =
  let s = stats t ctx in
  s.written <- s.written + bytes

let record_ops t ~ctx kind count =
  let s = stats t ctx in
  match kind with
  | Dbi.Event.Int_op -> s.int_ops <- s.int_ops + count
  | Dbi.Event.Fp_op -> s.fp_ops <- s.fp_ops + count

let record_call t ~ctx =
  let s = stats t ctx in
  s.calls <- s.calls + 1

let merge ~into src =
  for ctx = 0 to Array.length src.stats - 1 do
    match src.stats.(ctx) with
    | None -> ()
    | Some s ->
      let d = stats into ctx in
      d.input_unique <- d.input_unique + s.input_unique;
      d.input_nonunique <- d.input_nonunique + s.input_nonunique;
      d.local_unique <- d.local_unique + s.local_unique;
      d.local_nonunique <- d.local_nonunique + s.local_nonunique;
      d.written <- d.written + s.written;
      d.int_ops <- d.int_ops + s.int_ops;
      d.fp_ops <- d.fp_ops + s.fp_ops;
      d.calls <- d.calls + s.calls
  done;
  Hashtbl.iter
    (fun _ (e : edge) ->
      let d = edge into e.src e.dst in
      d.bytes <- d.bytes + e.bytes;
      d.unique_bytes <- d.unique_bytes + e.unique_bytes)
    src.edges;
  into.last_edge <- None

let edges t = Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
let in_edges t ctx = List.filter (fun e -> e.dst = ctx) (edges t)
let out_edges t ctx = List.filter (fun e -> e.src = ctx) (edges t)

let output_bytes t ctx =
  List.fold_left
    (fun (total, unique) e -> (total + e.bytes, unique + e.unique_bytes))
    (0, 0) (out_edges t ctx)

let input_bytes t ctx =
  List.fold_left
    (fun (total, unique) e -> (total + e.bytes, unique + e.unique_bytes))
    (0, 0) (in_edges t ctx)

let contexts t =
  let acc = ref [] in
  for ctx = Array.length t.stats - 1 downto 0 do
    match t.stats.(ctx) with
    | Some _ -> acc := ctx :: !acc
    | None -> ()
  done;
  !acc

let totals t =
  List.fold_left
    (fun (unique, total) ctx ->
      let s = stats t ctx in
      let u = s.input_unique + s.local_unique in
      let n = s.input_nonunique + s.local_nonunique in
      (unique + u, total + u + n))
    (0, 0) (contexts t)
