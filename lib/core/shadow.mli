(** Two-level shadow memory (Table I).

    Holds a shadow object for every unique data byte the guest touches,
    invisible to the guest itself. The structure follows Nethercote &
    Seward: a first-level table indexed by the high bits of the address
    whose second-level chunks are created only when the corresponding part
    of the address space is accessed.

    Baseline shadow object: last writer (context), last reader (context)
    and last reader call number. Reuse mode extends it with the re-use
    count and the first/last access timestamps.

    Two derived notions feed the re-use statistics:

    - an {e episode}: the consecutive reads of one byte by one function
      call (the paper's re-use lifetime is measured "within a function
      call"). An episode ends when a different context or call reads the
      byte, when the byte is overwritten, on eviction, or at program end.
    - a {e version}: the value written by one producer. A version ends on
      overwrite, eviction, or program end; its re-use count is the number
      of non-unique reads it received.

    A FIFO memory limiter ([max_chunks]) frees the oldest second-level
    chunks, trading accuracy for footprint (the paper needs this only for
    dedup and reports the loss as negligible).

    {b Storage.} Chunk state is packed into unboxed 16-bit bigarray planes
    (32-bit fields are striped across a lo/hi pair), and the first level is
    a 64-entry directory of on-demand superpages — see docs/FORMATS.md,
    "Shadow memory layout", for the exact per-chunk host-byte math and the
    packed-field bounds (context ids < 0xFFFF, call numbers and timestamps
    < 2^32; out-of-bound values raise [Invalid_argument]). *)

type t

(** Where finished episodes and versions are reported (the {!Reuse}
    accumulator implements this). *)
type sink = {
  on_episode_end : reader:Dbi.Context.id -> reads:int -> first:int -> last:int -> unit;
      (** A byte's read episode closed: [reads] total reads by this
          (context, call), first/last read timestamps. *)
  on_version_end : producer:Dbi.Context.id -> nonunique:int -> unit;
      (** A byte version died; [nonunique] is its re-use count. Program
          input (bytes read but never written) reports with
          [producer = Dbi.Context.root]. Only emitted in reuse mode. *)
}

val null_sink : sink

(** Result of shadowing one read. *)
type read_result = {
  producer : Dbi.Context.id;
      (** last writer, or {!Dbi.Context.root} when the byte was never
          written (program input) *)
  producer_call : int;
      (** the producer's call number, when [track_writer_call] was set
          (0 otherwise) — event files need it to attach transfer edges to
          the right call of the producer *)
  unique : bool;
      (** first read by this (context, call) since the last write — the
          reason Table I stores both the last reader and its call number.
          Cross-call re-reads by the same function are unique: an
          accelerator re-fetches its inputs on every invocation. *)
}

(** One run of a range operation: a maximal span of consecutive bytes that
    share the same producer and producer call. Runs let the tool pay its
    per-access accounting (profile update, transfer accumulation) once per
    run instead of once per byte. *)
type run = {
  r_producer : Dbi.Context.id;
  r_producer_call : int;
  r_bytes : int; (** bytes in the run *)
  r_unique_bytes : int; (** of which first-use (see {!read_result.unique}) *)
}

(** [create ~reuse ~track_writer_call ~max_chunks ~sink ()] builds an empty
    table. [reuse] allocates the extended shadow objects;
    [track_writer_call] adds the producer call number (used in event-file
    mode). *)
val create : ?reuse:bool -> ?track_writer_call:bool -> ?max_chunks:int -> ?sink:sink -> unit -> t

(** [read t ~ctx ~call ~now addr] classifies and records a 1-byte read.

    @raise Invalid_argument if [addr] is outside the shadowed region. *)
val read : t -> ctx:Dbi.Context.id -> call:int -> now:int -> int -> read_result

(** [write t ~ctx ~call ~now addr] records a 1-byte write: the previous
    version (if any) is flushed to the sink and [ctx] becomes the
    producer. *)
val write : t -> ctx:Dbi.Context.id -> call:int -> now:int -> int -> unit

(** [read_range t ~ctx ~call ~now addr len] shadows a [len]-byte read as
    one operation: the chunk is resolved once per within-chunk span and
    consecutive bytes with the same (producer, producer call) coalesce into
    one {!run}. The returned runs are in address order and their byte
    counts sum to [len]. Byte-for-byte equivalent to [len] calls of
    {!read} — same sink callbacks in the same order, same classification.

    @raise Invalid_argument if the span leaves the shadowed region or
    [len <= 0]. *)
val read_range : t -> ctx:Dbi.Context.id -> call:int -> now:int -> int -> int -> run list

(** [write_range t ~ctx ~call ~now addr len] records a [len]-byte write,
    resolving each chunk once per span. Equivalent to [len] calls of
    {!write}. *)
val write_range : t -> ctx:Dbi.Context.id -> call:int -> now:int -> int -> int -> unit

(** [flush t] ends every live episode and version (program end). The table
    remains usable. *)
val flush : t -> unit

(** {2 Introspection} *)

(** Highest shadowable address (exclusive). *)
val max_address : int

val chunk_bytes : int

(** Live second-level chunks. *)
val chunks_live : t -> int

val chunks_peak : t -> int

(** Chunks freed by the FIFO limiter. *)
val evictions : t -> int

(** Current footprint estimate in host bytes (directory + live superpages
    + live chunks). *)
val footprint_bytes : t -> int

val footprint_peak_bytes : t -> int

(** Deterministic [shadow.*] telemetry samples: chunk allocations, live /
    peak chunk counts, evictions, coalesced range-operation counters, the
    power-of-two read-size histogram, and the peak footprint. All values
    derive from the guest event stream only. *)
val telemetry : t -> Telemetry.sample list

(** [producer_of t addr] peeks at the current producer without recording a
    read; [None] if the byte has no live shadow. Test/debug helper. *)
val producer_of : t -> int -> Dbi.Context.id option
