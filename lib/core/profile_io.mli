(** Persistent aggregate profiles.

    The paper closes by promising to "release the profile data for many
    commonly used benchmarks... researchers can use the data without
    running Sigil". This module is that artifact: a finished run's symbol
    table, calling-context tree, per-context aggregates and communication
    edges serialize to a self-contained text file, and load back into a
    {!snapshot} that can be inspected without a machine or a re-run.

    Format (line-oriented):
    {v
 sigil-profile 1
 S <fn-id> <name>                         symbols
 C <ctx> <parent> <fn-id> <calls>         context-tree nodes (preorder)
 T <ctx> <in-u> <in-n> <loc-u> <loc-n> <written> <iops> <fops>
 X <src> <dst> <bytes> <unique>           communication edges v}  *)

type ctx_stats = {
  ctx : Dbi.Context.id;
  parent : Dbi.Context.id; (** -1 for the root *)
  fn : int; (** -1 for the root *)
  calls : int;
  input_unique : int;
  input_nonunique : int;
  local_unique : int;
  local_nonunique : int;
  written : int;
  int_ops : int;
  fp_ops : int;
}

type edge = {
  src : Dbi.Context.id;
  dst : Dbi.Context.id;
  bytes : int;
  unique_bytes : int;
}

type snapshot

(** [save tool path] writes the finished run's profile, atomically: the
    text goes to [path ^ ".tmp"] and is renamed over [path] only once
    complete, so [path] never holds a torn profile (the .tmp is removed on
    error). *)
val save : Tool.t -> string -> unit

(** [to_string tool] is the exact file [save] would write. The rendering is
    canonical (sorted symbols and edges, preorder contexts), so two runs
    are bit-identical profiles iff their [to_string] outputs are equal —
    the equality the parallel-vs-sequential determinism test checks. *)
val to_string : Tool.t -> string

(** [snapshot_of_tool tool] captures without touching the filesystem. *)
val snapshot_of_tool : Tool.t -> snapshot

(** [load path] parses a saved profile.

    @raise Failure on malformed input or unsupported version. *)
val load : string -> snapshot

(** {2 Queries} *)

(** Function name by id ([fn = -1] renders ["<root>"]). *)
val fn_name : snapshot -> int -> string

(** [path snap ctx] renders the full call path, as {!Dbi.Context.path}. *)
val path : snapshot -> Dbi.Context.id -> string

(** Contexts in preorder (root first). *)
val contexts : snapshot -> ctx_stats list

val stats : snapshot -> Dbi.Context.id -> ctx_stats
val edges : snapshot -> edge list

(** [children snap ctx] in file order. *)
val children : snapshot -> Dbi.Context.id -> Dbi.Context.id list

(** Program-wide [(unique, total)] read bytes, as {!Profile.totals}. *)
val totals : snapshot -> int * int
