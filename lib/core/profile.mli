(** Per-context communication and computation aggregates.

    This is Sigil's first output representation: for every calling context,
    the bytes it read and wrote classified along the paper's two axes —
    input/local (produced by another function vs. by itself) and
    unique/non-unique (first use vs. re-use) — plus operation counts and
    calls; and for every producer→consumer pair, a communication edge
    weighted by total and unique bytes. Output communication of a context
    is the sum over its outgoing edges. *)

type fn_stats = {
  mutable input_unique : int; (** bytes read, produced elsewhere, first use *)
  mutable input_nonunique : int;
  mutable local_unique : int; (** bytes read, produced by this context *)
  mutable local_nonunique : int;
  mutable written : int; (** bytes written *)
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable calls : int;
}

type edge = {
  src : Dbi.Context.id;
  dst : Dbi.Context.id;
  mutable bytes : int; (** total bytes transferred *)
  mutable unique_bytes : int; (** first-use bytes *)
}

type t

val create : unit -> t

(** [stats t ctx] is the live stats record for [ctx] (created on demand). *)
val stats : t -> Dbi.Context.id -> fn_stats

(** [record_read t ~producer ~consumer ~unique ~bytes] classifies a read:
    local when [producer = consumer], otherwise input for the consumer and
    an edge [producer -> consumer]. Reads of never-written data arrive with
    [producer = Dbi.Context.root] (program input). *)
val record_read :
  t -> producer:Dbi.Context.id -> consumer:Dbi.Context.id -> unique:bool -> bytes:int -> unit

(** [record_run t ~producer ~consumer ~bytes ~unique_bytes] records one
    coalesced {!Shadow.run} — [bytes] total of which [unique_bytes] were
    first-use — with a single stats and edge update. [record_read] is the
    single-flag special case. *)
val record_run :
  t ->
  producer:Dbi.Context.id ->
  consumer:Dbi.Context.id ->
  bytes:int ->
  unique_bytes:int ->
  unit

val record_write : t -> ctx:Dbi.Context.id -> bytes:int -> unit
val record_ops : t -> ctx:Dbi.Context.id -> Dbi.Event.op_kind -> int -> unit
val record_call : t -> ctx:Dbi.Context.id -> unit

(** [merge ~into src] adds every stat and edge of [src] into [into].

    All fields are sums, so merging is commutative and associative: folding
    any permutation of a profile list into an empty profile yields the same
    aggregate — which is what lets the domain-parallel suite runner reduce
    shard profiles in completion order without losing determinism. Both
    profiles must index the {e same} context tree (repeated or sharded runs
    of one deterministic workload); merging across unrelated trees is
    meaningless. [src] is not modified. *)
val merge : into:t -> t -> unit

(** All communication edges, unordered. *)
val edges : t -> edge list

(** Incoming / outgoing edges of one context. *)
val in_edges : t -> Dbi.Context.id -> edge list

val out_edges : t -> Dbi.Context.id -> edge list

(** [output_bytes t ctx] sums outgoing edges: [(total, unique)]. *)
val output_bytes : t -> Dbi.Context.id -> int * int

(** [input_bytes t ctx] is [(total, unique)] input read by [ctx] (excludes
    local). *)
val input_bytes : t -> Dbi.Context.id -> int * int

(** Contexts with any recorded activity, ascending id. *)
val contexts : t -> Dbi.Context.id list

(** Totals across all contexts: [(unique_reads, total_reads)] where reads =
    input + local. *)
val totals : t -> int * int
