type ctx_stats = {
  ctx : Dbi.Context.id;
  parent : Dbi.Context.id;
  fn : int;
  calls : int;
  input_unique : int;
  input_nonunique : int;
  local_unique : int;
  local_nonunique : int;
  written : int;
  int_ops : int;
  fp_ops : int;
}

type edge = {
  src : Dbi.Context.id;
  dst : Dbi.Context.id;
  bytes : int;
  unique_bytes : int;
}

type snapshot = {
  names : (int, string) Hashtbl.t;
  by_ctx : (Dbi.Context.id, ctx_stats) Hashtbl.t;
  order : Dbi.Context.id list; (* preorder *)
  edge_list : edge list;
}

let magic = "sigil-profile 1"

let snapshot_of_tool tool =
  let machine = Tool.machine tool in
  let profile = Tool.profile tool in
  let contexts = Dbi.Machine.contexts machine in
  let symbols = Dbi.Machine.symbols machine in
  let names = Hashtbl.create 64 in
  Dbi.Symbol.iter symbols (fun id name -> Hashtbl.replace names id name);
  let by_ctx = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit ctx =
    let s = Profile.stats profile ctx in
    let parent = match Dbi.Context.parent contexts ctx with Some p -> p | None -> -1 in
    let fn = if ctx = Dbi.Context.root then -1 else Dbi.Context.fn contexts ctx in
    Hashtbl.replace by_ctx ctx
      {
        ctx;
        parent;
        fn;
        calls = s.Profile.calls;
        input_unique = s.Profile.input_unique;
        input_nonunique = s.Profile.input_nonunique;
        local_unique = s.Profile.local_unique;
        local_nonunique = s.Profile.local_nonunique;
        written = s.Profile.written;
        int_ops = s.Profile.int_ops;
        fp_ops = s.Profile.fp_ops;
      };
    order := ctx :: !order;
    List.iter visit (Dbi.Context.children contexts ctx)
  in
  visit Dbi.Context.root;
  let edge_list =
    List.map
      (fun (e : Profile.edge) ->
        {
          src = e.Profile.src;
          dst = e.Profile.dst;
          bytes = e.Profile.bytes;
          unique_bytes = e.Profile.unique_bytes;
        })
      (Profile.edges profile)
  in
  let edge_list = List.sort compare edge_list in
  { names; by_ctx; order = List.rev !order; edge_list }

let render snap =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (magic ^ "\n");
  let symbol_ids = Hashtbl.fold (fun id _ acc -> id :: acc) snap.names [] in
  List.iter
    (fun id -> Printf.bprintf buf "S %d %s\n" id (Hashtbl.find snap.names id))
    (List.sort compare symbol_ids);
  List.iter
    (fun ctx ->
      let s = Hashtbl.find snap.by_ctx ctx in
      Printf.bprintf buf "C %d %d %d %d\n" s.ctx s.parent s.fn s.calls;
      Printf.bprintf buf "T %d %d %d %d %d %d %d %d\n" s.ctx s.input_unique s.input_nonunique
        s.local_unique s.local_nonunique s.written s.int_ops s.fp_ops)
    snap.order;
  List.iter
    (fun e -> Printf.bprintf buf "X %d %d %d %d\n" e.src e.dst e.bytes e.unique_bytes)
    snap.edge_list;
  Buffer.contents buf

let to_string tool = render (snapshot_of_tool tool)

let save tool path =
  let text = to_string tool in
  (* write-temp-then-rename: a failure mid-write must not clobber an
     existing good profile with a torn one *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match output_string oc text with
  | () ->
    close_out oc;
    Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail line = failwith ("Profile_io: malformed line: " ^ line) in
      (match input_line ic with
      | header when header = magic -> ()
      | header -> failwith ("Profile_io: unsupported header: " ^ header)
      | exception End_of_file -> failwith "Profile_io: empty file");
      let names = Hashtbl.create 64 in
      let by_ctx = Hashtbl.create 256 in
      let order = ref [] in
      let edges = ref [] in
      let ints line rest = List.map (fun s -> match int_of_string_opt s with Some v -> v | None -> fail line) rest in
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
          (if String.trim line <> "" then
             match String.split_on_char ' ' line with
             | "S" :: id :: name_parts ->
               let id = match int_of_string_opt id with Some v -> v | None -> fail line in
               Hashtbl.replace names id (String.concat " " name_parts)
             | "C" :: rest -> (
               match ints line rest with
               | [ ctx; parent; fn; calls ] ->
                 Hashtbl.replace by_ctx ctx
                   {
                     ctx;
                     parent;
                     fn;
                     calls;
                     input_unique = 0;
                     input_nonunique = 0;
                     local_unique = 0;
                     local_nonunique = 0;
                     written = 0;
                     int_ops = 0;
                     fp_ops = 0;
                   };
                 order := ctx :: !order
               | _ -> fail line)
             | "T" :: rest -> (
               match ints line rest with
               | [ ctx; iu; inn; lu; ln; written; iops; fops ] -> (
                 match Hashtbl.find_opt by_ctx ctx with
                 | None -> fail line
                 | Some s ->
                   Hashtbl.replace by_ctx ctx
                     {
                       s with
                       input_unique = iu;
                       input_nonunique = inn;
                       local_unique = lu;
                       local_nonunique = ln;
                       written;
                       int_ops = iops;
                       fp_ops = fops;
                     })
               | _ -> fail line)
             | "X" :: rest -> (
               match ints line rest with
               | [ src; dst; bytes; unique_bytes ] ->
                 edges := { src; dst; bytes; unique_bytes } :: !edges
               | _ -> fail line)
             | _ -> fail line);
          loop ()
      in
      loop ();
      { names; by_ctx; order = List.rev !order; edge_list = List.rev !edges })

let fn_name snap fn =
  if fn < 0 then "<root>"
  else match Hashtbl.find_opt snap.names fn with Some n -> n | None -> "?" ^ string_of_int fn

let stats snap ctx =
  match Hashtbl.find_opt snap.by_ctx ctx with
  | Some s -> s
  | None -> invalid_arg "Profile_io.stats: unknown context"

let path snap ctx =
  if ctx = Dbi.Context.root then "<root>"
  else begin
    let rec collect acc ctx =
      if ctx = Dbi.Context.root || ctx < 0 then acc
      else
        let s = stats snap ctx in
        collect (fn_name snap s.fn :: acc) s.parent
    in
    String.concat "/" (collect [] ctx)
  end

let contexts snap = List.map (stats snap) snap.order
let edges snap = snap.edge_list

let children snap ctx =
  List.filter_map
    (fun c ->
      let s = stats snap c in
      if s.parent = ctx && c <> Dbi.Context.root then Some c else None)
    snap.order

let totals snap =
  List.fold_left
    (fun (unique, total) s ->
      let u = s.input_unique + s.local_unique in
      let n = s.input_nonunique + s.local_nonunique in
      (unique + u, total + u + n))
    (0, 0) (contexts snap)
