(** Suite-run heartbeat.

    Long sweeps (13 workloads x simlarge) are silent for minutes; this
    reporter prints what is running, how far along the retired-instruction
    clock is, shadow evictions so far, and an ETA extrapolated from the
    jobs already finished.

    Two rendering modes, chosen at {!create} time from
    [Unix.isatty stderr]:

    - {b tty}: a single live status line, rewritten in place by a ticker
      domain every [interval_s] seconds and erased at {!close};
    - {b plain} (stderr redirected to a file or CI log): one start line and
      one finish line per job, no control characters, no ticker domain.

    The ticker samples each live run's {!Dbi.Machine} clock and shadow
    eviction counter from outside the running domain. Those are plain
    mutable [int] fields, so the reads are racy — they may lag the worker —
    but OCaml ints are word-sized, a torn read is impossible, and a stale
    heartbeat costs nothing. Progress output never feeds results or
    telemetry snapshots; determinism is untouched. *)

type t

(** A job registered with {!start}. *)
type handle

(** [create ~total ()] builds a reporter for a batch of [total] jobs.
    [interval_s] (default 0.5) is the tty refresh period; [force_plain]
    (default [not (Unix.isatty stderr)]) selects plain-line mode. *)
val create : ?interval_s:float -> ?force_plain:bool -> total:int -> unit -> t

(** [start t ~workload ~scale] registers a job as running (plain mode
    prints the start line). Call it from the domain that runs the job. *)
val start : t -> workload:string -> scale:string -> handle

(** [attach h machine sigil] gives the reporter the live machine (and tool,
    when Sigil is attached) to sample instructions and evictions from;
    wired through the [on_start] hook of [Dbi.Runner.run]. *)
val attach : handle -> Dbi.Machine.t -> Sigil.Tool.t option -> unit

(** [finish t h ~ok] marks the job done and (plain mode) prints its final
    clock/eviction line. *)
val finish : t -> handle -> ok:bool -> unit

(** [close t] stops and joins the ticker and erases the live line.
    Idempotent. *)
val close : t -> unit
