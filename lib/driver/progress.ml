type handle = {
  h_label : string;
  mutable h_machine : Dbi.Machine.t option;
  mutable h_sigil : Sigil.Tool.t option;
}

type t = {
  total : int;
  interval_s : float;
  plain : bool;
  start_s : float;
  lock : Mutex.t; (* protects active / finished / failed *)
  mutable active : handle list;
  mutable finished : int;
  mutable failed : int;
  stop : bool Atomic.t;
  mutable ticker : unit Domain.t option;
  mutable live_len : int; (* width of the current live line, for erasing *)
}

let now_s = Dbi.Runner.monotonic_s

(* Racy by design: the machine runs in another domain and these are plain
   mutable int fields. Word-sized reads can be stale, never torn. *)
let describe h =
  match h.h_machine with
  | None -> h.h_label
  | Some m ->
    let instr = Dbi.Machine.now m in
    let ev = match h.h_sigil with Some s -> Sigil.Tool.shadow_evictions s | None -> 0 in
    if ev > 0 then Printf.sprintf "%s %.1fMi ev:%d" h.h_label (float_of_int instr /. 1e6) ev
    else Printf.sprintf "%s %.1fMi" h.h_label (float_of_int instr /. 1e6)

let status_line t =
  Mutex.lock t.lock;
  let finished = t.finished and failed = t.failed in
  let active = List.map describe t.active in
  Mutex.unlock t.lock;
  let elapsed = now_s () -. t.start_s in
  let eta =
    if finished > 0 && finished < t.total then
      Printf.sprintf " eta %.0fs"
        (elapsed /. float_of_int finished *. float_of_int (t.total - finished))
    else ""
  in
  let failures = if failed > 0 then Printf.sprintf " %d failed" failed else "" in
  Printf.sprintf "[%d/%d]%s %s%s" finished t.total failures (String.concat " | " active) eta

let erase t =
  if t.live_len > 0 then begin
    Printf.eprintf "\r%s\r" (String.make t.live_len ' ');
    t.live_len <- 0
  end

let redraw t =
  let line = status_line t in
  let pad = max 0 (t.live_len - String.length line) in
  Printf.eprintf "\r%s%s" line (String.make pad ' ');
  flush stderr;
  t.live_len <- String.length line + pad

let rec ticker_loop t =
  if not (Atomic.get t.stop) then begin
    redraw t;
    (* sleep in small steps so close is prompt *)
    let deadline = now_s () +. t.interval_s in
    while (not (Atomic.get t.stop)) && now_s () < deadline do
      Unix.sleepf 0.05
    done;
    ticker_loop t
  end

let create ?(interval_s = 0.5) ?force_plain ~total () =
  let plain =
    match force_plain with Some p -> p | None -> not (Unix.isatty Unix.stderr)
  in
  let t =
    {
      total;
      interval_s;
      plain;
      start_s = now_s ();
      lock = Mutex.create ();
      active = [];
      finished = 0;
      failed = 0;
      stop = Atomic.make false;
      ticker = None;
      live_len = 0;
    }
  in
  if not plain then t.ticker <- Some (Domain.spawn (fun () -> ticker_loop t));
  t

let start t ~workload ~scale =
  let h = { h_label = Printf.sprintf "%s(%s)" workload scale; h_machine = None; h_sigil = None } in
  Mutex.lock t.lock;
  t.active <- t.active @ [ h ];
  let pos = t.finished + List.length t.active in
  Mutex.unlock t.lock;
  if t.plain then begin
    Printf.eprintf "[%d/%d] %s started\n" pos t.total h.h_label;
    flush stderr
  end;
  h

let attach h machine sigil =
  h.h_machine <- Some machine;
  h.h_sigil <- sigil

let finish t h ~ok =
  Mutex.lock t.lock;
  t.active <- List.filter (fun x -> x != h) t.active;
  t.finished <- t.finished + 1;
  if not ok then t.failed <- t.failed + 1;
  let finished = t.finished in
  Mutex.unlock t.lock;
  if t.plain then begin
    let detail =
      match h.h_machine with
      | None -> ""
      | Some m ->
        let ev = match h.h_sigil with Some s -> Sigil.Tool.shadow_evictions s | None -> 0 in
        Printf.sprintf " (%.1fMi, %d evictions)" (float_of_int (Dbi.Machine.now m) /. 1e6) ev
    in
    Printf.eprintf "[%d/%d] %s %s%s\n" finished t.total h.h_label
      (if ok then "done" else "FAILED")
      detail;
    flush stderr
  end

let close t =
  match t.ticker with
  | Some d ->
    Atomic.set t.stop true;
    Domain.join d;
    t.ticker <- None;
    erase t;
    flush stderr
  | None -> ()
