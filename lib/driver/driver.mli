(** Convenience runner used by the CLI tools, examples and benchmarks:
    runs a named workload under the requested tool combination and hands
    back the finished tool states. *)

(** Re-export: the suite-run heartbeat lives in the same library. *)
module Progress = Progress

type run = {
  workload : Workloads.Workload.t;
  scale : Workloads.Scale.t;
  machine : Dbi.Machine.t;
  sigil : Sigil.Tool.t option;
  callgrind : Callgrind.Tool.t option;
  elapsed_s : float; (** host seconds for the instrumented run *)
  stats : Telemetry.snapshot option;
      (** run telemetry, assembled at run end when [Options.collect_stats]
          was set: the machine's [machine.*] samples, the Sigil tool's
          [shadow.*]/[line.*]/[events.*]/[profile.*] samples, and the
          wall-clock [run.elapsed_s]. The deterministic section is
          bit-identical between sequential and pooled executions of the
          same job. *)
}

(** [run_workload ?options ?event_sink ?with_sigil ?with_callgrind
    ?stripped w scale] executes one guest run with the selected tools
    attached. [event_sink] streams produced events out of the tool as the
    run executes (see [Sigil.Tool.create]); a sink is stateful, so give
    each run its own. [on_start] fires once the machine exists and tools
    are attached, just before the workload runs — the progress heartbeat
    hooks in here. *)
val run_workload :
  ?options:Sigil.Options.t ->
  ?event_sink:Sigil.Event_log.sink ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  ?stripped:bool ->
  ?on_start:(Dbi.Machine.t -> Sigil.Tool.t option -> unit) ->
  Workloads.Workload.t ->
  Workloads.Scale.t ->
  run

(** [run_named ?options ?with_sigil ?with_callgrind name scale] resolves the
    workload by name first. Returns [Error _] for unknown names. *)
val run_named :
  ?options:Sigil.Options.t ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  string ->
  Workloads.Scale.t ->
  (run, string) result

(** {2 Batch execution}

    One evaluation sweep = many independent [(workload, scale, options)]
    runs. [run_many]/[run_suite] fan a batch out over a {!Pool} (when one is
    given) and hand the results back {e in submission order}; because every
    run's machine, tool and PRNG state is run-local, the parallel results
    are bit-identical to a sequential loop over the same jobs. *)

(** What a crashing job does to the rest of its batch. [Fail_fast]
    propagates the first exception (in submission order) out of
    [run_many], discarding the batch — the historical behaviour.
    [Isolate] captures each job's failure as a {!Run_error.t} and runs
    every other job to completion; surviving runs are bit-identical to a
    batch that never contained the crasher. *)
type fault_policy = Fail_fast | Isolate

(** Structured description of one failed job, captured under {!Isolate}. *)
module Run_error : sig
  type cause =
    | Raised of string  (** [Printexc.to_string] of the escaping exception *)
    | Timeout of { limit_s : float; now : int }
        (** wall-clock guard tripped ([Options.timeout_s]) *)
    | Budget_exhausted of { budget : int; now : int }
        (** instruction-budget guard tripped ([Options.instr_budget]) *)
    | Unresolved of string  (** workload name did not resolve; never ran *)

  type t = {
    workload : string;  (** workload name (as submitted) *)
    scale : Workloads.Scale.t;
    cause : cause;
    backtrace : string;  (** raw backtrace at the raise point; may be empty *)
  }

  (** One-line ["name@scale: cause"] rendering for logs and CLI output. *)
  val to_string : t -> string
end

type job

(** [job ?options ?event_sink ?with_sigil ?with_callgrind ?stripped w
    scale] describes one run without executing it (defaults as
    {!run_workload}). *)
val job :
  ?options:Sigil.Options.t ->
  ?event_sink:Sigil.Event_log.sink ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  ?stripped:bool ->
  Workloads.Workload.t ->
  Workloads.Scale.t ->
  job

(** [run_many ?pool ?progress ?fault_policy jobs] executes the batch
    ([pool = None] runs in the calling domain) and returns results in
    submission order. Under the default [Fail_fast] every element is [Ok]
    (a failing job raises out of the call); under [Isolate] failed jobs
    come back as [Error] and the rest of the batch completes. [progress]
    reports each job's start/finish (and live clock, via the run-start
    hook) to a {!Progress.t} heartbeat; it never influences results. *)
val run_many :
  ?pool:Pool.t ->
  ?progress:Progress.t ->
  ?fault_policy:fault_policy ->
  job list ->
  (run, Run_error.t) result list

(** [run_suite ?pool ?fault_policy ... specs] is {!run_many} over named
    workloads: each [(name, scale)] resolves first (unknown names become
    [Error] with cause {!Run_error.Unresolved} and are never run), all
    resolvable jobs execute as one batch, and results come back aligned
    with [specs]. *)
val run_suite :
  ?pool:Pool.t ->
  ?progress:Progress.t ->
  ?fault_policy:fault_policy ->
  ?options:Sigil.Options.t ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  ?stripped:bool ->
  (string * Workloads.Scale.t) list ->
  (run, Run_error.t) result list

(** [time_native w scale] is the uninstrumented baseline run time. *)
val time_native : Workloads.Workload.t -> Workloads.Scale.t -> float

(** [sigil run] / [callgrind run] extract tool state, failing loudly when
    the tool was not attached. *)
val sigil : run -> Sigil.Tool.t

val callgrind : run -> Callgrind.Tool.t

(** [cdfg run] builds the control data flow graph from a run that had both
    tools attached (Callgrind optional). *)
val cdfg : run -> Analysis.Cdfg.t

(** [critpath run] analyzes the event log (requires
    [Options.collect_events]). *)
val critpath : run -> Analysis.Critpath.t

(** [fn_name run ctx] renders a context's function name. *)
val fn_name : run -> Dbi.Context.id -> string

(** Telemetry aggregation and the [--stats-out] JSON artifact. *)
module Stats : sig
  (** [of_run r] is the run's snapshot ([Telemetry.empty] when the job ran
      without [Options.collect_stats]). *)
  val of_run : run -> Telemetry.snapshot

  (** [aggregate ?pool results] folds every successful run's snapshot in
      submission order (merge is associative and commutative, so the result
      is independent of execution interleaving), adds the deterministic
      suite-shape counters [suite.runs] / [suite.failures], and appends the
      pool's wall-clock accounting when a pool was used. *)
  val aggregate : ?pool:Pool.t -> (run, Run_error.t) result list -> Telemetry.snapshot

  (** [to_json ?wall ?pool ~scale named_results] renders the
      ["sigil-stats/1"] document (see docs/FORMATS.md): schema tag, scale,
      one entry per run in submission order, and the aggregate.
      [wall = false] omits every wall-clock section, making the bytes a
      pure function of the deterministic metrics — two files from a [-j 1]
      and a [-j 8] run of the same suite compare equal with [cmp]. *)
  val to_json :
    ?wall:bool ->
    ?pool:Pool.t ->
    scale:Workloads.Scale.t ->
    (string * (run, Run_error.t) result) list ->
    string

  (** [write_json ?wall ?pool ~scale named_results path] writes {!to_json}
      crash-safely ([path.tmp] then atomic rename). *)
  val write_json :
    ?wall:bool ->
    ?pool:Pool.t ->
    scale:Workloads.Scale.t ->
    (string * (run, Run_error.t) result) list ->
    string ->
    unit
end
