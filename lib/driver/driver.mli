(** Convenience runner used by the CLI tools, examples and benchmarks:
    runs a named workload under the requested tool combination and hands
    back the finished tool states. *)

type run = {
  workload : Workloads.Workload.t;
  scale : Workloads.Scale.t;
  machine : Dbi.Machine.t;
  sigil : Sigil.Tool.t option;
  callgrind : Callgrind.Tool.t option;
  elapsed_s : float; (** host seconds for the instrumented run *)
}

(** [run_workload ?options ?event_sink ?with_sigil ?with_callgrind
    ?stripped w scale] executes one guest run with the selected tools
    attached. [event_sink] streams produced events out of the tool as the
    run executes (see [Sigil.Tool.create]); a sink is stateful, so give
    each run its own. *)
val run_workload :
  ?options:Sigil.Options.t ->
  ?event_sink:Sigil.Event_log.sink ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  ?stripped:bool ->
  Workloads.Workload.t ->
  Workloads.Scale.t ->
  run

(** [run_named ?options ?with_sigil ?with_callgrind name scale] resolves the
    workload by name first. Returns [Error _] for unknown names. *)
val run_named :
  ?options:Sigil.Options.t ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  string ->
  Workloads.Scale.t ->
  (run, string) result

(** {2 Batch execution}

    One evaluation sweep = many independent [(workload, scale, options)]
    runs. [run_many]/[run_suite] fan a batch out over a {!Pool} (when one is
    given) and hand the results back {e in submission order}; because every
    run's machine, tool and PRNG state is run-local, the parallel results
    are bit-identical to a sequential loop over the same jobs. *)

(** What a crashing job does to the rest of its batch. [Fail_fast]
    propagates the first exception (in submission order) out of
    [run_many], discarding the batch — the historical behaviour.
    [Isolate] captures each job's failure as a {!Run_error.t} and runs
    every other job to completion; surviving runs are bit-identical to a
    batch that never contained the crasher. *)
type fault_policy = Fail_fast | Isolate

(** Structured description of one failed job, captured under {!Isolate}. *)
module Run_error : sig
  type cause =
    | Raised of string  (** [Printexc.to_string] of the escaping exception *)
    | Timeout of { limit_s : float; now : int }
        (** wall-clock guard tripped ([Options.timeout_s]) *)
    | Budget_exhausted of { budget : int; now : int }
        (** instruction-budget guard tripped ([Options.instr_budget]) *)
    | Unresolved of string  (** workload name did not resolve; never ran *)

  type t = {
    workload : string;  (** workload name (as submitted) *)
    scale : Workloads.Scale.t;
    cause : cause;
    backtrace : string;  (** raw backtrace at the raise point; may be empty *)
  }

  (** One-line ["name@scale: cause"] rendering for logs and CLI output. *)
  val to_string : t -> string
end

type job

(** [job ?options ?event_sink ?with_sigil ?with_callgrind ?stripped w
    scale] describes one run without executing it (defaults as
    {!run_workload}). *)
val job :
  ?options:Sigil.Options.t ->
  ?event_sink:Sigil.Event_log.sink ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  ?stripped:bool ->
  Workloads.Workload.t ->
  Workloads.Scale.t ->
  job

(** [run_many ?pool ?fault_policy jobs] executes the batch ([pool = None]
    runs in the calling domain) and returns results in submission order.
    Under the default [Fail_fast] every element is [Ok] (a failing job
    raises out of the call); under [Isolate] failed jobs come back as
    [Error] and the rest of the batch completes. *)
val run_many :
  ?pool:Pool.t -> ?fault_policy:fault_policy -> job list -> (run, Run_error.t) result list

(** [run_suite ?pool ?fault_policy ... specs] is {!run_many} over named
    workloads: each [(name, scale)] resolves first (unknown names become
    [Error] with cause {!Run_error.Unresolved} and are never run), all
    resolvable jobs execute as one batch, and results come back aligned
    with [specs]. *)
val run_suite :
  ?pool:Pool.t ->
  ?fault_policy:fault_policy ->
  ?options:Sigil.Options.t ->
  ?with_sigil:bool ->
  ?with_callgrind:bool ->
  ?stripped:bool ->
  (string * Workloads.Scale.t) list ->
  (run, Run_error.t) result list

(** [time_native w scale] is the uninstrumented baseline run time. *)
val time_native : Workloads.Workload.t -> Workloads.Scale.t -> float

(** [sigil run] / [callgrind run] extract tool state, failing loudly when
    the tool was not attached. *)
val sigil : run -> Sigil.Tool.t

val callgrind : run -> Callgrind.Tool.t

(** [cdfg run] builds the control data flow graph from a run that had both
    tools attached (Callgrind optional). *)
val cdfg : run -> Analysis.Cdfg.t

(** [critpath run] analyzes the event log (requires
    [Options.collect_events]). *)
val critpath : run -> Analysis.Critpath.t

(** [fn_name run ctx] renders a context's function name. *)
val fn_name : run -> Dbi.Context.id -> string
