(** Fixed-size domain pool with a shared work queue.

    The evaluation sweep (13 workloads x scales x tool configurations) is a
    bag of independent instrumented runs: each owns its own {!Dbi.Machine},
    tool state and PRNG, so fanning them across OCaml 5 domains changes
    wall-clock only, never results. This pool is the one parallel-execution
    primitive in the tree; {!Driver.run_many}, the benchmark harness and the
    parallel analysis passes all share it.

    Determinism contract: {!map} and {!run} return results in submission
    order regardless of which domain executed what, and raise the {e first}
    (by submission index) exception a task raised, with its original
    backtrace. Submitting pure tasks therefore yields output bit-identical
    to a sequential [List.map].

    The submitting domain is a worker too: while it waits for a batch it
    drains the shared queue, so a pool of [domains = n] applies exactly [n]
    domains' worth of compute to a batch, [create ~domains:1 ()] degrades to
    a plain sequential map without spawning, and nested [map] calls (a task
    that itself maps over the same pool) cannot deadlock. *)

type t

(** [create ~domains ()] spawns [domains - 1] worker domains (the caller is
    the last one). Default: {!recommended}.

    @raise Invalid_argument if [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** [recommended ?cap ()] is [Domain.recommended_domain_count] capped at
    [cap] (default 8) and floored at 1 — the default pool size everywhere a
    [--domains] flag is left unset. *)
val recommended : ?cap:int -> unit -> int

(** Number of domains the pool applies to a batch (including the caller). *)
val size : t -> int

(** [map pool f items] runs [f] on every item concurrently and returns the
    results in submission order. Re-raises the first failing item's
    exception. Safe to call from inside a pool task (the nested batch is
    drained by the same domains).

    Failure semantics (the no-deadlock contract {!Driver.run_many} builds
    its [Isolate] fault policy on): a raising task never aborts, skips or
    blocks the rest of its batch — every submitted task runs exactly once,
    [map] only returns (or re-raises) after all of them have completed,
    and the pool remains usable for subsequent batches. The exception
    re-raised is the first one {e by submission index}, not by wall-clock
    order, with the raising task's original backtrace. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [run pool thunks] is [map pool (fun f -> f ()) thunks]. *)
val run : t -> (unit -> 'a) list -> 'a list

(** {2 Accounting}

    The pool counts work with atomics preallocated at {!create}; the
    per-task cost is two fetch-and-adds and a domain-local read, with no
    allocation on the task path (asserted by [test_pool.ml] with
    [Gc.minor_words]). *)

(** Tasks executed over the pool's lifetime. *)
val tasks : t -> int

(** [map]/[run] batches submitted. *)
val batches : t -> int

(** Per-domain task counts: slot 0 is the submitting (caller) domain, slots
    [1 .. size-1] the spawned workers. Sums to {!tasks}. *)
val task_counts : t -> int array

(** [pool.*] telemetry samples. All of them are wall-clock domain: which
    domain drains which task is a host scheduling accident, and a
    sequential run has no pool at all, so none of this may appear in the
    deterministic section. *)
val telemetry : t -> Telemetry.sample list

(** [shutdown pool] drains nothing: it asks idle workers to exit and joins
    them. Calling {!map} afterwards raises; shutdown is idempotent. *)
val shutdown : t -> unit

(** [with_pool ?domains f] runs [f pool] and shuts the pool down on the way
    out (including on exceptions). *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a
