type t = {
  lock : Mutex.t;
  work : Condition.t; (* a task was queued, or the pool is stopping *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  size : int;
  (* accounting: all atomics are preallocated at [create] so the per-task
     hot path is two fetch-and-adds and a DLS read — no allocation *)
  tasks : int Atomic.t;
  batches : int Atomic.t;
  per_domain : int Atomic.t array; (* slot 0 = caller, 1.. = workers *)
  slot : int Domain.DLS.key;
}

let default_cap = 8

let recommended ?(cap = default_cap) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some job -> Some job
    | None ->
      if t.stopping then None
      else begin
        Condition.wait t.work t.lock;
        next ()
      end
  in
  let job = next () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some job ->
    job ();
    worker_loop t

let create ?(domains = recommended ()) () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      size = domains;
      tasks = Atomic.make 0;
      batches = Atomic.make 0;
      per_domain = Array.init domains (fun _ -> Atomic.make 0);
      slot = Domain.DLS.new_key (fun () -> 0);
    }
  in
  t.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set t.slot (i + 1);
            worker_loop t));
  t

let size t = t.size

type 'b cell =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map t f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n Pending in
    let remaining = ref n in (* protected by t.lock *)
    let batch_done = Condition.create () in
    let task i () =
      Atomic.incr t.tasks;
      Atomic.incr t.per_domain.(Domain.DLS.get t.slot);
      let cell =
        match f items.(i) with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      results.(i) <- cell;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock t.lock
    in
    Atomic.incr t.batches;
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work;
    (* The caller helps: run queued tasks (of this batch or any nested one)
       until every task of this batch has completed somewhere. Waiting only
       happens with an empty queue, so a task blocked here on a nested batch
       always leaves its sub-tasks runnable by other domains. *)
    let rec help () =
      if !remaining = 0 then Mutex.unlock t.lock
      else
        match Queue.take_opt t.queue with
        | Some job ->
          Mutex.unlock t.lock;
          job ();
          Mutex.lock t.lock;
          help ()
        | None ->
          Condition.wait batch_done t.lock;
          help ()
    in
    help ();
    (* submission order; first failure (by index) wins *)
    Array.iteri
      (fun i cell ->
        match cell with
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ -> ()
        | Pending -> failwith (Printf.sprintf "Pool.map: task %d never completed" i))
      results;
    Array.to_list
      (Array.map (function Done v -> v | Pending | Failed _ -> assert false) results)
  end

let run t thunks = map t (fun f -> f ()) thunks
let tasks t = Atomic.get t.tasks
let batches t = Atomic.get t.batches
let task_counts t = Array.map Atomic.get t.per_domain

(* All pool metrics live in the Wall domain: a sequential driver run spawns
   no pool at all, and which domain drains which task is a scheduler
   accident — so none of this may leak into the deterministic section. *)
let telemetry t =
  let per =
    Array.to_list
      (Array.mapi
         (fun i c -> Telemetry.count ~domain:Telemetry.Wall (Printf.sprintf "pool.tasks_domain%d" i) (Atomic.get c))
         t.per_domain)
  in
  Telemetry.
    [
      gauge ~domain:Wall "pool.domains" t.size;
      count ~domain:Wall "pool.tasks" (Atomic.get t.tasks);
      count ~domain:Wall "pool.batches" (Atomic.get t.batches);
    ]
  @ per

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
