module Progress = Progress

type run = {
  workload : Workloads.Workload.t;
  scale : Workloads.Scale.t;
  machine : Dbi.Machine.t;
  sigil : Sigil.Tool.t option;
  callgrind : Callgrind.Tool.t option;
  elapsed_s : float;
  stats : Telemetry.snapshot option;
}

type fault_policy = Fail_fast | Isolate

module Run_error = struct
  type cause =
    | Raised of string
    | Timeout of { limit_s : float; now : int }
    | Budget_exhausted of { budget : int; now : int }
    | Unresolved of string

  type t = {
    workload : string;
    scale : Workloads.Scale.t;
    cause : cause;
    backtrace : string;
  }

  let cause_to_string = function
    | Raised msg -> msg
    | Timeout { limit_s; now } ->
      Printf.sprintf "timed out after %gs (retired-instruction clock %d)" limit_s now
    | Budget_exhausted { budget; now } ->
      Printf.sprintf "instruction budget %d exhausted (clock %d)" budget now
    | Unresolved msg -> msg

  let to_string e =
    Printf.sprintf "%s@%s: %s" e.workload (Workloads.Scale.name e.scale)
      (cause_to_string e.cause)
end

let run_workload ?(options = Sigil.Options.default) ?event_sink ?(with_sigil = true)
    ?(with_callgrind = false) ?(stripped = false) ?on_start (workload : Workloads.Workload.t)
    scale =
  let sigil_tool = ref None in
  let callgrind_tool = ref None in
  let tools =
    (if with_sigil then
       [
         (fun m ->
           let t = Sigil.Tool.create ~options ?event_sink m in
           sigil_tool := Some t;
           Sigil.Tool.tool t);
       ]
     else [])
    @
    if with_callgrind then
      [
        (fun m ->
          let t = Callgrind.Tool.create m in
          callgrind_tool := Some t;
          Callgrind.Tool.tool t);
      ]
    else []
  in
  (* tool refs are filled during attachment, so the runner's hook can hand
     a progress reporter the live tool state as well as the machine *)
  let on_start =
    Option.map (fun f -> fun machine -> f machine !sigil_tool) on_start
  in
  let r =
    Dbi.Runner.run ~stripped ?budget:options.Sigil.Options.instr_budget
      ?timeout_s:options.Sigil.Options.timeout_s ~tools ?on_start (fun m ->
        workload.Workloads.Workload.run m scale)
  in
  let machine = r.Dbi.Runner.machine in
  let stats =
    if options.Sigil.Options.collect_stats then
      Some
        (Telemetry.of_samples
           (Dbi.Machine.telemetry machine
           @ (match !sigil_tool with Some t -> Sigil.Tool.telemetry t | None -> [])
           @ [ Telemetry.seconds "run.elapsed_s" r.Dbi.Runner.elapsed_s ]))
    else None
  in
  {
    workload;
    scale;
    machine;
    sigil = !sigil_tool;
    callgrind = !callgrind_tool;
    elapsed_s = r.Dbi.Runner.elapsed_s;
    stats;
  }

let run_named ?options ?with_sigil ?with_callgrind name scale =
  match Workloads.Suite.find name with
  | Error _ as e -> e
  | Ok w -> Ok (run_workload ?options ?with_sigil ?with_callgrind w scale)

type job = {
  j_workload : Workloads.Workload.t;
  j_scale : Workloads.Scale.t;
  j_options : Sigil.Options.t;
  j_event_sink : Sigil.Event_log.sink option;
  j_with_sigil : bool;
  j_with_callgrind : bool;
  j_stripped : bool;
}

let job ?(options = Sigil.Options.default) ?event_sink ?(with_sigil = true)
    ?(with_callgrind = false) ?(stripped = false) workload scale =
  {
    j_workload = workload;
    j_scale = scale;
    j_options = options;
    j_event_sink = event_sink;
    j_with_sigil = with_sigil;
    j_with_callgrind = with_callgrind;
    j_stripped = stripped;
  }

let run_job ?on_start j =
  run_workload ~options:j.j_options ?event_sink:j.j_event_sink ~with_sigil:j.j_with_sigil
    ~with_callgrind:j.j_with_callgrind ~stripped:j.j_stripped ?on_start j.j_workload j.j_scale

let classify = function
  | Dbi.Machine.Timeout { limit_s; now } -> Run_error.Timeout { limit_s; now }
  | Dbi.Machine.Budget_exhausted { budget; now } -> Run_error.Budget_exhausted { budget; now }
  | e -> Run_error.Raised (Printexc.to_string e)

(* Under [Isolate] the exception (with its backtrace) is captured inside the
   task, so from [Pool]'s point of view every task returns normally — a
   crashing workload can never take the rest of the batch down with it. *)
let attempt ?on_start j =
  match run_job ?on_start j with
  | r -> Ok r
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Error
      {
        Run_error.workload = j.j_workload.Workloads.Workload.name;
        scale = j.j_scale;
        cause = classify e;
        backtrace = Printexc.raw_backtrace_to_string bt;
      }

(* Every run owns its machine, tool state and PRNG (nothing in the guest or
   tool layer is global), so fanning a batch across domains is safe and —
   because [Pool.map] preserves submission order — bit-identical to the
   sequential loop. *)
let run_many ?pool ?progress ?(fault_policy = Fail_fast) jobs =
  let attempt_one =
    match fault_policy with
    | Fail_fast -> fun ?on_start j -> Ok (run_job ?on_start j)
    | Isolate -> attempt
  in
  let task =
    match progress with
    | None -> fun j -> attempt_one j
    | Some p ->
      fun j ->
        let h =
          Progress.start p ~workload:j.j_workload.Workloads.Workload.name
            ~scale:(Workloads.Scale.name j.j_scale)
        in
        let result = attempt_one ~on_start:(Progress.attach h) j in
        Progress.finish p h ~ok:(Result.is_ok result);
        result
  in
  match pool with
  | None -> List.map task jobs
  | Some p -> Pool.map p task jobs

let run_suite ?pool ?progress ?fault_policy ?options ?with_sigil ?with_callgrind ?stripped
    specs =
  let resolved =
    List.map
      (fun (name, scale) ->
        match Workloads.Suite.find name with
        | Error e ->
          Error
            { Run_error.workload = name; scale; cause = Run_error.Unresolved e; backtrace = "" }
        | Ok w -> Ok (job ?options ?with_sigil ?with_callgrind ?stripped w scale))
      specs
  in
  let runs = run_many ?pool ?progress ?fault_policy (List.filter_map Result.to_option resolved) in
  (* zip the results back over the resolution errors, preserving order *)
  let rec rebuild resolved runs =
    match (resolved, runs) with
    | [], [] -> []
    | Error e :: rest, runs -> Error e :: rebuild rest runs
    | Ok _ :: rest, run :: runs -> run :: rebuild rest runs
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  rebuild resolved runs

let time_native (w : Workloads.Workload.t) scale =
  (Dbi.Runner.time_native (fun m -> w.Workloads.Workload.run m scale)).Dbi.Runner.elapsed_s

let sigil run =
  match run.sigil with
  | Some t -> t
  | None -> invalid_arg "Driver.sigil: Sigil was not attached to this run"

let callgrind run =
  match run.callgrind with
  | Some t -> t
  | None -> invalid_arg "Driver.callgrind: Callgrind was not attached to this run"

let cdfg run = Analysis.Cdfg.build ?callgrind:run.callgrind (sigil run)

let critpath run =
  match Sigil.Tool.event_log (sigil run) with
  | Some log -> Analysis.Critpath.analyze log
  | None -> invalid_arg "Driver.critpath: run without Options.collect_events"

let fn_name run ctx =
  if ctx = Dbi.Context.root then "<root>"
  else
    Dbi.Symbol.name
      (Dbi.Machine.symbols run.machine)
      (Dbi.Context.fn (Dbi.Machine.contexts run.machine) ctx)

module Stats = struct
  let of_run r = Option.value r.stats ~default:Telemetry.empty

  (* Submission-order fold; [Telemetry.merge] is associative and
     commutative, so this equals any other merge order — the aggregate of a
     [-j 8] batch is bit-identical to the sequential one. Suite shape
     counters are deterministic; pool accounting (when a pool was used) is
     wall-clock by construction. *)
  let aggregate ?pool results =
    let per_run =
      List.fold_left
        (fun acc -> function
          | Ok r -> Telemetry.merge acc (of_run r)
          | Error _ -> acc)
        Telemetry.empty results
    in
    let shape =
      Telemetry.of_samples
        [
          Telemetry.count "suite.runs" (List.length results);
          Telemetry.count "suite.failures"
            (List.length (List.filter Result.is_error results));
        ]
    in
    let pool_samples =
      match pool with
      | Some p -> Telemetry.of_samples (Pool.telemetry p)
      | None -> Telemetry.empty
    in
    Telemetry.merge (Telemetry.merge per_run shape) pool_samples

  let run_json ~wall name result =
    match result with
    | Error e ->
      Printf.sprintf "    {\"workload\": %S, \"ok\": false, \"error\": %S}" name
        (Run_error.to_string e)
    | Ok r ->
      let s = of_run r in
      let det = Telemetry.json_object ~indent:"      " (Telemetry.deterministic s) in
      if wall then
        Printf.sprintf
          "    {\"workload\": %S, \"ok\": true, \"deterministic\": %s, \"wall_clock\": %s}"
          name det
          (Telemetry.json_object ~indent:"      " (Telemetry.wall s))
      else Printf.sprintf "    {\"workload\": %S, \"ok\": true, \"deterministic\": %s}" name det

  let to_json ?(wall = true) ?pool ~scale named_results =
    let agg = aggregate ?pool (List.map snd named_results) in
    let agg = if wall then agg else Telemetry.deterministic agg in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"schema\": \"sigil-stats/1\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"scale\": %S,\n" (Workloads.Scale.name scale));
    Buffer.add_string buf "  \"runs\": [\n";
    Buffer.add_string buf
      (String.concat ",\n"
         (List.map (fun (name, result) -> run_json ~wall name result) named_results));
    Buffer.add_string buf "\n  ],\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"aggregate\": %s\n}\n" (Telemetry.to_json agg));
    Buffer.contents buf

  (* Same crash-safety discipline as profile/trace artifacts: write the
     whole file to [path.tmp], then atomically rename. *)
  let write_json ?wall ?pool ~scale named_results path =
    let json = to_json ?wall ?pool ~scale named_results in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc json;
    close_out oc;
    Sys.rename tmp path
end
