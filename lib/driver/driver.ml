type run = {
  workload : Workloads.Workload.t;
  scale : Workloads.Scale.t;
  machine : Dbi.Machine.t;
  sigil : Sigil.Tool.t option;
  callgrind : Callgrind.Tool.t option;
  elapsed_s : float;
}

let run_workload ?(options = Sigil.Options.default) ?event_sink ?(with_sigil = true)
    ?(with_callgrind = false) ?(stripped = false) (workload : Workloads.Workload.t) scale =
  let sigil_tool = ref None in
  let callgrind_tool = ref None in
  let tools =
    (if with_sigil then
       [
         (fun m ->
           let t = Sigil.Tool.create ~options ?event_sink m in
           sigil_tool := Some t;
           Sigil.Tool.tool t);
       ]
     else [])
    @
    if with_callgrind then
      [
        (fun m ->
          let t = Callgrind.Tool.create m in
          callgrind_tool := Some t;
          Callgrind.Tool.tool t);
      ]
    else []
  in
  let r = Dbi.Runner.run ~stripped ~tools (fun m -> workload.Workloads.Workload.run m scale) in
  {
    workload;
    scale;
    machine = r.Dbi.Runner.machine;
    sigil = !sigil_tool;
    callgrind = !callgrind_tool;
    elapsed_s = r.Dbi.Runner.elapsed_s;
  }

let run_named ?options ?with_sigil ?with_callgrind name scale =
  match Workloads.Suite.find name with
  | Error _ as e -> e
  | Ok w -> Ok (run_workload ?options ?with_sigil ?with_callgrind w scale)

type job = {
  j_workload : Workloads.Workload.t;
  j_scale : Workloads.Scale.t;
  j_options : Sigil.Options.t;
  j_event_sink : Sigil.Event_log.sink option;
  j_with_sigil : bool;
  j_with_callgrind : bool;
  j_stripped : bool;
}

let job ?(options = Sigil.Options.default) ?event_sink ?(with_sigil = true)
    ?(with_callgrind = false) ?(stripped = false) workload scale =
  {
    j_workload = workload;
    j_scale = scale;
    j_options = options;
    j_event_sink = event_sink;
    j_with_sigil = with_sigil;
    j_with_callgrind = with_callgrind;
    j_stripped = stripped;
  }

let run_job j =
  run_workload ~options:j.j_options ?event_sink:j.j_event_sink ~with_sigil:j.j_with_sigil
    ~with_callgrind:j.j_with_callgrind ~stripped:j.j_stripped j.j_workload j.j_scale

(* Every run owns its machine, tool state and PRNG (nothing in the guest or
   tool layer is global), so fanning a batch across domains is safe and —
   because [Pool.map] preserves submission order — bit-identical to the
   sequential loop. *)
let run_many ?pool jobs =
  match pool with
  | None -> List.map run_job jobs
  | Some p -> Pool.map p run_job jobs

let run_suite ?pool ?options ?with_sigil ?with_callgrind ?stripped specs =
  let resolved =
    List.map
      (fun (name, scale) ->
        match Workloads.Suite.find name with
        | Error e -> Error e
        | Ok w -> Ok (job ?options ?with_sigil ?with_callgrind ?stripped w scale))
      specs
  in
  let runs = run_many ?pool (List.filter_map Result.to_option resolved) in
  (* zip the results back over the resolution errors, preserving order *)
  let rec rebuild resolved runs =
    match (resolved, runs) with
    | [], [] -> []
    | Error e :: rest, runs -> Error e :: rebuild rest runs
    | Ok _ :: rest, run :: runs -> Ok run :: rebuild rest runs
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  rebuild resolved runs

let time_native (w : Workloads.Workload.t) scale =
  (Dbi.Runner.time_native (fun m -> w.Workloads.Workload.run m scale)).Dbi.Runner.elapsed_s

let sigil run =
  match run.sigil with
  | Some t -> t
  | None -> invalid_arg "Driver.sigil: Sigil was not attached to this run"

let callgrind run =
  match run.callgrind with
  | Some t -> t
  | None -> invalid_arg "Driver.callgrind: Callgrind was not attached to this run"

let cdfg run = Analysis.Cdfg.build ?callgrind:run.callgrind (sigil run)

let critpath run =
  match Sigil.Tool.event_log (sigil run) with
  | Some log -> Analysis.Critpath.analyze log
  | None -> invalid_arg "Driver.critpath: run without Options.collect_events"

let fn_name run ctx =
  if ctx = Dbi.Context.root then "<root>"
  else
    Dbi.Symbol.name
      (Dbi.Machine.symbols run.machine)
      (Dbi.Context.fn (Dbi.Machine.contexts run.machine) ctx)
