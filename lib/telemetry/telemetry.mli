(** Low-overhead self-profiling metrics (the paper's Figs 4–6 turned into
    asserted values).

    Every number Sigil reports about itself lives in one of two domains:

    - {b deterministic} ([Det]): driven by the retired-instruction clock
      and the guest event stream only — shadow chunk allocations and
      evictions, coalesced-run counts, events dispatched, trace chunks
      written. The same (workload, scale, options) triple produces the
      same value on every host, at every [--domains] level. These are the
      testable metrics: golden values in the suite, byte-identical JSON
      between sequential and parallel runs in CI.
    - {b wall-clock} ([Wall]): phase timings, throughput, per-domain task
      distribution — anything the host scheduler can perturb. Reported,
      never asserted.

    The subsystems themselves hold their metrics as plain mutable [int]
    fields (the near-zero-cost probes); this module is the vocabulary they
    are exported in — {!sample}s gathered into immutable {!snapshot}s that
    merge deterministically (associative, commutative, [empty]-identity),
    so a suite aggregate folded from per-run snapshots in submission order
    is independent of which domain ran what. *)

(** Which guarantees a metric carries; see the module description. *)
type domain = Det | Wall

(** Merge semantics by constructor: counters and gauges add, peaks
    (high-water marks) take the max, histograms add bucketwise, seconds
    add. *)
type value =
  | Counter of int  (** monotone count *)
  | Gauge of int  (** point-in-time level; shards add *)
  | Peak of int  (** high-water mark *)
  | Histogram of int array  (** power-of-two buckets, see {!Hist} *)
  | Seconds of float  (** wall-clock duration; [Wall] only *)

type sample = { name : string; domain : domain; value : value }

(** Power-of-two bucketed histogram accumulator. Bucket 0 holds values
    [<= 0]; bucket [b >= 1] holds [2^(b-1) <= v < 2^b]. [observe] is the
    hot-path probe: one bit-length computation and one array increment. *)
module Hist : sig
  type t

  val create : unit -> t
  val observe : t -> int -> unit

  (** [bucket_of v] is the bucket index [v] lands in. *)
  val bucket_of : int -> int

  (** [bucket_lo b] is the inclusive lower bound of bucket [b] (0 for
      bucket 0). The exclusive upper bound of bucket [b >= 1] is
      [2 * bucket_lo b]. *)
  val bucket_lo : int -> int

  (** Bucket counts with trailing zero buckets trimmed. *)
  val counts : t -> int array

  val total : t -> int
end

(** {2 Sample constructors} *)

val count : ?domain:domain -> string -> int -> sample
val gauge : ?domain:domain -> string -> int -> sample
val peak : ?domain:domain -> string -> int -> sample

(** [hist name h] snapshots the accumulator [h] (the counts are copied). *)
val hist : ?domain:domain -> string -> Hist.t -> sample

(** Always [Wall]: a duration can never be deterministic. *)
val seconds : string -> float -> sample

(** {2 Snapshots} *)

(** An immutable, name-sorted, name-unique set of samples. *)
type snapshot

val empty : snapshot
val is_empty : snapshot -> bool

(** [of_samples ss] sorts by name and combines duplicates with the merge
    rule of their constructor.

    @raise Invalid_argument if one name appears with two different
    constructors or domains. *)
val of_samples : sample list -> snapshot

(** Samples in ascending name order. *)
val samples : snapshot -> sample list

(** [merge a b] combines per name (union of names; see {!value} for the
    per-constructor rule). Associative and commutative with {!empty} as
    identity — folding per-run snapshots in any order yields the same
    aggregate.

    @raise Invalid_argument on constructor or domain mismatch for a shared
    name. *)
val merge : snapshot -> snapshot -> snapshot

(** Restrict to one domain. *)
val deterministic : snapshot -> snapshot

val wall : snapshot -> snapshot

(** Structural equality (histograms compare with trailing zeros trimmed). *)
val equal : snapshot -> snapshot -> bool

val find : snapshot -> string -> value option

(** [get_int s name] is the integer payload of a [Counter]/[Gauge]/[Peak]
    sample, or 0 when the name is absent.

    @raise Invalid_argument on a [Histogram] or [Seconds] sample. *)
val get_int : snapshot -> string -> int

(** {2 Rendering} *)

(** [json_object s] is one JSON object [{"name": value, ...}] in ascending
    name order: ints for counters/gauges/peaks, arrays for histograms,
    floats for seconds. Deterministic input gives byte-identical output. *)
val json_object : ?indent:string -> snapshot -> string

(** [to_json s] is [{"deterministic": {...}, "wall_clock": {...}}]. *)
val to_json : snapshot -> string

(** Human-readable two-section table. *)
val pp : Format.formatter -> snapshot -> unit
