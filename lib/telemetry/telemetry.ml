(* Metrics vocabulary for Sigil's self-profiling. Subsystems keep plain
   mutable int probes on their hot paths; this module only runs at
   snapshot/merge/render time, so nothing here needs to be fast — it needs
   to be deterministic. Snapshots are name-sorted unique sample lists,
   which makes [merge] associative and commutative by construction and
   JSON output byte-stable. *)

type domain = Det | Wall

type value =
  | Counter of int
  | Gauge of int
  | Peak of int
  | Histogram of int array
  | Seconds of float

type sample = { name : string; domain : domain; value : value }

(* OCaml ints are 63-bit: bucket 0 for v <= 0, buckets 1..62 for
   [2^(b-1), 2^b). 63 slots cover every int. *)
let n_buckets = 63

let trim counts =
  let n = ref (Array.length counts) in
  while !n > 0 && counts.(!n - 1) = 0 do
    decr n
  done;
  Array.sub counts 0 !n

module Hist = struct
  type t = int array

  let create () = Array.make n_buckets 0

  let bucket_of v =
    if v <= 0 then 0
    else
      (* floor(log2 v) + 1, via the position of the highest set bit *)
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      bits 0 v

  let bucket_lo b = if b <= 0 then 0 else 1 lsl (b - 1)
  let observe t v = t.(bucket_of v) <- t.(bucket_of v) + 1
  let counts t = trim t
  let total t = Array.fold_left ( + ) 0 t
end

let count ?(domain = Det) name v = { name; domain; value = Counter v }
let gauge ?(domain = Det) name v = { name; domain; value = Gauge v }
let peak ?(domain = Det) name v = { name; domain; value = Peak v }
let hist ?(domain = Det) name h = { name; domain; value = Histogram (trim h) }
let seconds name v = { name; domain = Wall; value = Seconds v }

type snapshot = sample list (* sorted by name, names unique *)

let empty = []
let is_empty s = s = []
let samples s = s

let combine_values name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x + y)
  | Peak x, Peak y -> Peak (max x y)
  | Seconds x, Seconds y -> Seconds (x +. y)
  | Histogram x, Histogram y ->
    let n = max (Array.length x) (Array.length y) in
    let get a i = if i < Array.length a then a.(i) else 0 in
    Histogram (trim (Array.init n (fun i -> get x i + get y i)))
  | (Counter _ | Gauge _ | Peak _ | Histogram _ | Seconds _), _ ->
    invalid_arg (Printf.sprintf "Telemetry: sample %S merged with a different kind" name)

let combine a b =
  if a.domain <> b.domain then
    invalid_arg (Printf.sprintf "Telemetry: sample %S merged across domains" a.name);
  { a with value = combine_values a.name a.value b.value }

(* merge of two sorted unique lists *)
let rec merge a b =
  match (a, b) with
  | [], s | s, [] -> s
  | x :: a', y :: b' ->
    let c = compare x.name y.name in
    if c < 0 then x :: merge a' b
    else if c > 0 then y :: merge a b'
    else combine x y :: merge a' b'

let of_samples ss =
  let sorted = List.stable_sort (fun a b -> compare a.name b.name) ss in
  List.fold_left (fun acc s -> merge acc [ s ]) [] sorted

let deterministic s = List.filter (fun x -> x.domain = Det) s
let wall s = List.filter (fun x -> x.domain = Wall) s

let equal_value a b =
  match (a, b) with
  | Counter x, Counter y | Gauge x, Gauge y | Peak x, Peak y -> x = y
  | Seconds x, Seconds y -> x = y
  | Histogram x, Histogram y -> trim x = trim y
  | (Counter _ | Gauge _ | Peak _ | Histogram _ | Seconds _), _ -> false

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> x.name = y.name && x.domain = y.domain && equal_value x.value y.value)
       a b

let find s name = List.find_opt (fun x -> x.name = name) s |> Option.map (fun x -> x.value)

let get_int s name =
  match find s name with
  | None -> 0
  | Some (Counter v | Gauge v | Peak v) -> v
  | Some (Histogram _ | Seconds _) ->
    invalid_arg (Printf.sprintf "Telemetry.get_int: %S is not an integer sample" name)

let value_to_json = function
  | Counter v | Gauge v | Peak v -> string_of_int v
  | Seconds v -> Printf.sprintf "%.6f" v
  | Histogram counts ->
    "[" ^ String.concat "," (Array.to_list (Array.map string_of_int counts)) ^ "]"

let json_object ?(indent = "") s =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      if indent <> "" then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf indent
      end;
      Buffer.add_string buf (Printf.sprintf "%S: %s" x.name (value_to_json x.value)))
    s;
  if indent <> "" && s <> [] then Buffer.add_char buf '\n';
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json s =
  Printf.sprintf "{\"deterministic\": %s, \"wall_clock\": %s}"
    (json_object (deterministic s))
    (json_object (wall s))

let pp_value ppf = function
  | Counter v | Gauge v | Peak v -> Format.fprintf ppf "%d" v
  | Seconds v -> Format.fprintf ppf "%.3f s" v
  | Histogram counts ->
    let total = Array.fold_left ( + ) 0 counts in
    Format.fprintf ppf "n=%d" total;
    Array.iteri
      (fun b c -> if c > 0 then Format.fprintf ppf " [%d+]:%d" (Hist.bucket_lo b) c)
      counts

let pp_section ppf title = function
  | [] -> ()
  | ss ->
    Format.fprintf ppf "%s:@." title;
    let width = List.fold_left (fun w x -> max w (String.length x.name)) 0 ss in
    List.iter (fun x -> Format.fprintf ppf "  %-*s  %a@." width x.name pp_value x.value) ss

let pp ppf s =
  pp_section ppf "deterministic" (deterministic s);
  pp_section ppf "wall-clock (nondeterministic)" (wall s)
