/* Monotonic wall-clock for Runner.elapsed_s and the benchmark harness.
 *
 * Unix.gettimeofday is the system's real-time clock: NTP slews and steps
 * move it, so an instrumented run timed across an adjustment can report a
 * negative or inflated elapsed time. CLOCK_MONOTONIC never goes backwards.
 */
#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value dbi_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
