type result = {
  machine : Machine.t;
  elapsed_s : float;
}

external monotonic_ns : unit -> int64 = "dbi_monotonic_ns"

let monotonic_s () = Int64.to_float (monotonic_ns ()) /. 1e9

let run ?(stripped = false) ?call_overhead ?budget ?timeout_s ?(tools = []) ?on_start workload
    =
  let machine = Machine.create ~stripped ?call_overhead ?budget ?timeout_s () in
  List.iter (fun make -> Machine.attach machine (make machine)) tools;
  (match on_start with Some f -> f machine | None -> ());
  let t0 = monotonic_s () in
  workload machine;
  Machine.finish machine;
  let t1 = monotonic_s () in
  { machine; elapsed_s = t1 -. t0 }

let time_native workload = run ~tools:[] workload
