(** The instrumentable guest machine.

    Owns the symbol table, calling-context tree, address space, the
    platform-independent clock, and the list of attached tools. Guest
    workloads drive it through {!Guest}; tools observe it through their
    callbacks and may query the tables here.

    The clock ({!now}) counts retired guest "instructions": one per
    computational operation, one per memory access, one per branch. The
    paper uses exactly this proxy ("we use the number of retired
    instructions as a proxy for execution time"). *)

type t

(** {2 Run guards}

    Long or runaway guest runs can be bounded in two platform-independent
    ways: a cap on the retired-instruction clock and a wall-clock timeout.
    Both raise out of the event-injection call that crossed the limit, so
    a driver running a batch under [Driver.Isolate] captures them as
    structured per-job errors while the remaining jobs proceed. *)

exception Budget_exhausted of { budget : int; now : int }
(** The retired-instruction clock passed the configured budget. *)

exception Timeout of { limit_s : float; now : int }
(** The run held the host CPU longer than the configured wall-clock limit
    (checked every ~65k retired instructions, so the overshoot is tiny). *)

(** Aggregate event counters, available even with no tool attached (the
    "native" run of the overhead experiments still knows its own size). *)
type counters = {
  int_ops : int;
  fp_ops : int;
  reads : int; (* read events *)
  writes : int; (* write events *)
  read_bytes : int;
  written_bytes : int;
  branches : int;
  calls : int;
  syscalls : int;
}

(** [create ~stripped ~call_overhead ~budget ~timeout_s ()] builds a fresh
    machine with no tools attached. [stripped] simulates a binary without
    debug symbols; [call_overhead] (default 10) is the caller-side
    instruction cost of a call sequence (argument setup, save/restore),
    charged to the caller's context before each [enter] — this is what
    bounds function-level parallelism the way real call overhead does.
    [budget] arms the retired-instruction guard ({!Budget_exhausted});
    [timeout_s] arms the wall-clock guard ({!Timeout}), measured from
    machine creation. *)
val create : ?stripped:bool -> ?call_overhead:int -> ?budget:int -> ?timeout_s:float -> unit -> t

(** [attach t tool] adds a tool; events flow to tools in attachment order. *)
val attach : t -> Tool.t -> unit

val symbols : t -> Symbol.t
val contexts : t -> Context.t
val space : t -> Addr_space.t

(** Current value of the retired-instruction clock. *)
val now : t -> int

(** Context currently executing (callee of the innermost live call). *)
val current_ctx : t -> Context.id

(** [call_number t ctx] is the sequence number of the latest call of [ctx]
    (0 when never called). *)
val call_number : t -> Context.id -> int

val counters : t -> counters

(** Depth of the live call stack. *)
val stack_depth : t -> int

(** {2 Event injection}

    Used by {!Guest}; exposed so tests can drive a machine directly. *)

(** [enter t name] pushes a call to function [name]; returns its context. *)
val enter : t -> string -> Context.id

(** [leave t] pops the innermost call.

    @raise Invalid_argument if the stack is empty. *)
val leave : t -> unit

(** [read t addr size] / [write t addr size] inject a data access from the
    current context. [size] must be positive. *)
val read : t -> int -> int -> unit

val write : t -> int -> int -> unit

(** [op t kind count] injects [count] >= 0 computational operations. *)
val op : t -> Event.op_kind -> int -> unit

val branch : t -> taken:bool -> unit

(** [syscall t name ~reads ~writes] models an opaque kernel crossing: a
    pseudo-function ["sys:" ^ name] is entered, consumes [reads], produces
    [writes], and leaves. *)
val syscall : t -> string -> reads:Event.byte_range list -> writes:Event.byte_range list -> unit

(** [finish t] signals end-of-program to every tool (idempotent).

    @raise Invalid_argument if calls are still live. *)
val finish : t -> unit

(** [is_syscall_fn name] recognizes the pseudo-function naming convention. *)
val is_syscall_fn : string -> bool

(** Deterministic [machine.*] telemetry samples: the retired-instruction
    clock, every aggregate event counter, and the context/symbol table
    sizes. *)
val telemetry : t -> Telemetry.sample list
