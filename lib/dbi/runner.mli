(** Drive a guest program under a set of tools.

    The moral equivalent of [valgrind --tool=... ./prog]: build a machine,
    construct and attach each requested tool, run the workload, signal
    finish, and report how long the (host) run took so instrumentation
    overheads can be compared. *)

type result = {
  machine : Machine.t;
  elapsed_s : float; (** host wall-clock seconds for the guest run *)
}

(** [monotonic_s ()] is a monotonic wall-clock reading in seconds
    (CLOCK_MONOTONIC; an arbitrary epoch, so only differences are
    meaningful). Unlike [Unix.gettimeofday] it never goes backwards under
    NTP adjustment — every elapsed-time measurement in the runner and the
    benchmark harness uses this. *)
val monotonic_s : unit -> float

(** [run ~stripped ~tools workload] executes [workload machine] with every
    tool in [tools] attached (tool constructors receive the machine first,
    Valgrind-style). [Machine.finish] is called on normal return.
    [budget] / [timeout_s] arm the machine's run guards; when a guard
    trips, the corresponding {!Machine.Budget_exhausted} or
    {!Machine.Timeout} escapes from this call. [on_start] is invoked with
    the machine after the tools attach and before the workload begins —
    a progress reporter can hold onto it and sample the clock from another
    domain while the run executes. *)
val run :
  ?stripped:bool ->
  ?call_overhead:int ->
  ?budget:int ->
  ?timeout_s:float ->
  ?tools:(Machine.t -> Tool.t) list ->
  ?on_start:(Machine.t -> unit) ->
  (Machine.t -> unit) ->
  result

(** [time_native workload] is [run ~tools:[]], the uninstrumented baseline. *)
val time_native : (Machine.t -> unit) -> result
