exception Budget_exhausted of { budget : int; now : int }
exception Timeout of { limit_s : float; now : int }

let () =
  Printexc.register_printer (function
    | Budget_exhausted { budget; now } ->
      Some (Printf.sprintf "Dbi.Machine.Budget_exhausted (budget %d, clock %d)" budget now)
    | Timeout { limit_s; now } ->
      Some (Printf.sprintf "Dbi.Machine.Timeout (limit %gs, clock %d)" limit_s now)
    | _ -> None)

external monotonic_ns : unit -> int64 = "dbi_monotonic_ns"

let monotonic_s () = Int64.to_float (monotonic_ns ()) /. 1e9

type counters = {
  int_ops : int;
  fp_ops : int;
  reads : int;
  writes : int;
  read_bytes : int;
  written_bytes : int;
  branches : int;
  calls : int;
  syscalls : int;
}

type t = {
  symbols : Symbol.t;
  contexts : Context.t;
  space : Addr_space.t;
  call_overhead : int;
  mutable tools : Tool.t array; (* capacity; slots [0, n_tools) are live *)
  mutable n_tools : int;
  mutable stack : (Context.id * Symbol.id) list;
  mutable cur_ctx : Context.id;
  mutable call_numbers : int array; (* per context, grown on demand *)
  mutable now : int;
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable read_bytes : int;
  mutable written_bytes : int;
  mutable branches : int;
  mutable calls : int;
  mutable syscalls : int;
  mutable finished : bool;
  budget : int; (* max_int = unlimited *)
  timeout_s : float; (* infinity = none *)
  started_s : float;
  mutable next_check : int; (* clock value at which to re-check the guards *)
}

(* How many clock ticks may pass between wall-clock probes when a timeout
   is armed: rare enough that the monotonic read never shows up in the
   event hot path, frequent enough that a runaway guest is caught within
   a fraction of a second. *)
let timeout_probe_interval = 1 lsl 16

let create ?(stripped = false) ?(call_overhead = 10) ?budget ?timeout_s () =
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Machine.create: budget must be positive"
  | Some _ | None -> ());
  (match timeout_s with
  | Some s when s < 0.0 -> invalid_arg "Machine.create: negative timeout"
  | Some _ | None -> ());
  if call_overhead < 0 then invalid_arg "Machine.create: negative call overhead";
  let budget = Option.value budget ~default:max_int in
  let timeout_s = Option.value timeout_s ~default:infinity in
  {
    symbols = Symbol.create ~stripped ();
    contexts = Context.create ();
    space = Addr_space.create ();
    call_overhead;
    tools = [||];
    n_tools = 0;
    stack = [];
    cur_ctx = Context.root;
    call_numbers = Array.make 256 0;
    now = 0;
    int_ops = 0;
    fp_ops = 0;
    reads = 0;
    writes = 0;
    read_bytes = 0;
    written_bytes = 0;
    branches = 0;
    calls = 0;
    syscalls = 0;
    finished = false;
    budget;
    timeout_s;
    started_s = (if timeout_s < infinity then monotonic_s () else 0.0);
    next_check = (if timeout_s < infinity then 0 else budget);
  }

(* One [now >= next_check] comparison per clock bump is all the guards
   cost; this slow path runs only at the budget boundary and at timeout
   probe points. *)
let check_limits t =
  if t.now > t.budget then raise (Budget_exhausted { budget = t.budget; now = t.now });
  if t.timeout_s < infinity then begin
    if monotonic_s () -. t.started_s > t.timeout_s then
      raise (Timeout { limit_s = t.timeout_s; now = t.now });
    t.next_check <- min t.budget (t.now + timeout_probe_interval)
  end

(* Amortized growth: attaching is O(1) amortized instead of copying the
   whole array per tool, so attach-heavy drivers (one tool per run times
   thousands of runs) stay linear. *)
let attach t tool =
  let cap = Array.length t.tools in
  if t.n_tools = cap then begin
    let grown = Array.make (max 4 (2 * cap)) tool in
    Array.blit t.tools 0 grown 0 cap;
    t.tools <- grown
  end;
  t.tools.(t.n_tools) <- tool;
  t.n_tools <- t.n_tools + 1
let symbols t = t.symbols
let contexts t = t.contexts
let space t = t.space
let now t = t.now
let current_ctx t = t.cur_ctx

let call_number t ctx =
  if ctx < Array.length t.call_numbers then t.call_numbers.(ctx) else 0

let counters t =
  {
    int_ops = t.int_ops;
    fp_ops = t.fp_ops;
    reads = t.reads;
    writes = t.writes;
    read_bytes = t.read_bytes;
    written_bytes = t.written_bytes;
    branches = t.branches;
    calls = t.calls;
    syscalls = t.syscalls;
  }

let stack_depth t = List.length t.stack

let bump_call t ctx =
  let len = Array.length t.call_numbers in
  if ctx >= len then begin
    let grown = Array.make (max (2 * len) (ctx + 1)) 0 in
    Array.blit t.call_numbers 0 grown 0 len;
    t.call_numbers <- grown
  end;
  let n = t.call_numbers.(ctx) + 1 in
  t.call_numbers.(ctx) <- n;
  n

let op t kind count =
  if count < 0 then invalid_arg "Machine.op: negative count";
  if count > 0 then begin
    t.now <- t.now + count;
    if t.now >= t.next_check then check_limits t;
    (match kind with
    | Event.Int_op -> t.int_ops <- t.int_ops + count
    | Event.Fp_op -> t.fp_ops <- t.fp_ops + count);
    let ctx = t.cur_ctx in
    let tools = t.tools and n = t.n_tools in
    for i = 0 to n - 1 do
      tools.(i).on_op ~ctx ~kind ~count
    done
  end

let enter t name =
  (* caller-side call sequence: argument setup, save/restore, the call
     itself — charged to the caller's context like compiled code would *)
  if t.call_overhead > 0 then op t Event.Int_op t.call_overhead;
  let fn = Symbol.intern t.symbols name in
  let ctx = Context.enter t.contexts t.cur_ctx fn in
  let call = bump_call t ctx in
  t.stack <- (ctx, fn) :: t.stack;
  t.cur_ctx <- ctx;
  t.calls <- t.calls + 1;
  let tools = t.tools and n = t.n_tools in
  for i = 0 to n - 1 do
    tools.(i).on_enter ~ctx ~fn ~call
  done;
  ctx

let leave t =
  match t.stack with
  | [] -> invalid_arg "Machine.leave: empty call stack"
  | (ctx, fn) :: rest ->
    let tools = t.tools and n = t.n_tools in
    for i = 0 to n - 1 do
      tools.(i).on_leave ~ctx ~fn
    done;
    t.stack <- rest;
    t.cur_ctx <- (match rest with [] -> Context.root | (c, _) :: _ -> c)

let read t addr size =
  if size <= 0 then invalid_arg "Machine.read: size must be positive";
  t.now <- t.now + 1;
  if t.now >= t.next_check then check_limits t;
  t.reads <- t.reads + 1;
  t.read_bytes <- t.read_bytes + size;
  let ctx = t.cur_ctx in
  let tools = t.tools and n = t.n_tools in
  for i = 0 to n - 1 do
    tools.(i).on_read ~ctx ~addr ~size
  done

let write t addr size =
  if size <= 0 then invalid_arg "Machine.write: size must be positive";
  t.now <- t.now + 1;
  if t.now >= t.next_check then check_limits t;
  t.writes <- t.writes + 1;
  t.written_bytes <- t.written_bytes + size;
  let ctx = t.cur_ctx in
  let tools = t.tools and n = t.n_tools in
  for i = 0 to n - 1 do
    tools.(i).on_write ~ctx ~addr ~size
  done

let branch t ~taken =
  t.now <- t.now + 1;
  if t.now >= t.next_check then check_limits t;
  t.branches <- t.branches + 1;
  let ctx = t.cur_ctx in
  let tools = t.tools and n = t.n_tools in
  for i = 0 to n - 1 do
    tools.(i).on_branch ~ctx ~taken
  done

let syscall_prefix = "sys:"
let is_syscall_fn name = String.length name > 4 && String.sub name 0 4 = syscall_prefix

(* Chunk large kernel buffers so per-access sizes stay word-like; the byte
   totals are what matters to the tools. *)
let access_chunk = 8

let syscall t name ~reads ~writes =
  (* validate both lists in place; appending them allocated a throwaway
     list on every kernel crossing *)
  let check r = if not (Event.range_valid r) then invalid_arg "Machine.syscall: bad range" in
  List.iter check reads;
  List.iter check writes;
  t.syscalls <- t.syscalls + 1;
  let (_ : Context.id) = enter t (syscall_prefix ^ name) in
  let touch inject (addr, len) =
    let rec go addr len =
      if len > 0 then begin
        let n = min access_chunk len in
        inject t addr n;
        go (addr + n) (len - n)
      end
    in
    go addr len
  in
  List.iter (touch read) reads;
  List.iter (touch write) writes;
  leave t

let telemetry t =
  Telemetry.
    [
      count "machine.instructions" t.now;
      count "machine.int_ops" t.int_ops;
      count "machine.fp_ops" t.fp_ops;
      count "machine.reads" t.reads;
      count "machine.writes" t.writes;
      count "machine.read_bytes" t.read_bytes;
      count "machine.written_bytes" t.written_bytes;
      count "machine.branches" t.branches;
      count "machine.calls" t.calls;
      count "machine.syscalls" t.syscalls;
      gauge "machine.contexts" (Context.count t.contexts);
      gauge "machine.symbols" (Symbol.count t.symbols);
    ]

let finish t =
  if t.stack <> [] then invalid_arg "Machine.finish: calls still live";
  if not t.finished then begin
    t.finished <- true;
    for i = 0 to t.n_tools - 1 do
      t.tools.(i).Tool.on_finish ()
    done
  end
