(** Fault-injection harness for the robustness tests (and nothing else —
    no production code path depends on this library).

    Two families of faults, mirroring how trace artifacts actually die:
    {e live} failures, where the event sink starts raising mid-run (disk
    full, quota, yanked volume) — modelled by {!failing_sink}; and
    {e at-rest} damage, where a finished or torn file is mutilated on disk
    (truncation, bit rot, a torn final write) — modelled by the file
    mutators, which always copy [src] to [dst] and never touch the
    original. The tests drive these against [Tracefile.Reader.open_salvage]
    to check the salvage contract: every fault yields either a recovered
    strict prefix of entries or a structured [Frame.Corrupt] carrying an
    offset — never an uncaught exception, never silently wrong data. *)

exception Injected of string
(** Raised by {!failing_sink} when its trigger fires. The payload names
    the trigger, purely for test diagnostics. *)

(** When a {!failing_sink} starts failing:
    - [After_entries n]: the [n]th accepted entry is the last; entry
      [n+1] raises.
    - [After_bytes n]: raises once the writer has produced [n] bytes
      (on disk plus buffered).
    - [On_flush n]: the [n]th chunk flush is allowed to complete, then
      the next entry raises — the crash lands exactly on a chunk
      boundary, the hardest case to distinguish from a clean end. *)
type trigger =
  | After_entries of int
  | After_bytes of int
  | On_flush of int

(** [failing_sink trigger w] wraps writer [w] as a sink that forwards
    entries until [trigger] fires, then raises {!Injected} — and keeps
    raising on every later entry (a failed device stays failed). *)
val failing_sink : trigger -> Tracefile.Writer.t -> Sigil.Event_log.sink

(** {2 File mutators}

    All three read [src] whole, write a mutated copy to [dst] (plain
    write, not atomic — these {e produce} damaged files), and leave [src]
    untouched. *)

val file_length : string -> int

(** [truncated_copy ~src ~dst ~len] keeps the first [len] bytes. *)
val truncated_copy : src:string -> dst:string -> len:int -> unit

(** [bit_flipped_copy ~src ~dst ~byte ~bit] flips one bit. *)
val bit_flipped_copy : src:string -> dst:string -> byte:int -> bit:int -> unit

(** [torn_tail_copy ~src ~dst ~keep ~junk] keeps [keep] bytes and appends
    [junk] bytes of deterministic garbage — a torn final write that left
    stale sector contents behind. *)
val torn_tail_copy : src:string -> dst:string -> keep:int -> junk:int -> unit
