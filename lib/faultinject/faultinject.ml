exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected what -> Some (Printf.sprintf "Faultinject.Injected (%s)" what)
    | _ -> None)

type trigger =
  | After_entries of int
  | After_bytes of int
  | On_flush of int

let trigger_to_string = function
  | After_entries n -> Printf.sprintf "after %d entries" n
  | After_bytes n -> Printf.sprintf "after %d bytes" n
  | On_flush n -> Printf.sprintf "on flush %d" n

let validate = function
  | After_entries n when n < 0 -> invalid_arg "Faultinject: negative entry trigger"
  | After_bytes n when n < 0 -> invalid_arg "Faultinject: negative byte trigger"
  | On_flush n when n <= 0 -> invalid_arg "Faultinject: flush trigger must be >= 1"
  | After_entries _ | After_bytes _ | On_flush _ -> ()

let failing_sink trigger w : Sigil.Event_log.sink =
  validate trigger;
  let entries = ref 0 in
  let flushes = ref 0 in
  let dead = ref false in
  fun e ->
    (* a real failed device stays failed: once tripped, every later write
       fails too, so a driver cannot half-resurrect the sink *)
    if !dead then raise (Injected (trigger_to_string trigger));
    let trip () =
      dead := true;
      raise (Injected (trigger_to_string trigger))
    in
    (match trigger with
    | After_entries n -> if !entries >= n then trip ()
    | After_bytes n -> if Tracefile.Writer.bytes_written w >= n then trip ()
    | On_flush _ -> ());
    let chunks_before = Tracefile.Writer.chunks w in
    Tracefile.Writer.add w e;
    incr entries;
    match trigger with
    | On_flush n ->
      if Tracefile.Writer.chunks w > chunks_before then begin
        incr flushes;
        if !flushes >= n then trip ()
      end
    | After_entries _ | After_bytes _ -> ()

(* ------------------------------------------------------------------ *)
(* File mutators                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let file_length path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

let truncated_copy ~src ~dst ~len =
  let data = read_file src in
  if len < 0 || len > String.length data then
    invalid_arg "Faultinject.truncated_copy: length out of range";
  write_file dst (String.sub data 0 len)

let bit_flipped_copy ~src ~dst ~byte ~bit =
  let data = Bytes.of_string (read_file src) in
  if byte < 0 || byte >= Bytes.length data then
    invalid_arg "Faultinject.bit_flipped_copy: byte offset out of range";
  if bit < 0 || bit > 7 then invalid_arg "Faultinject.bit_flipped_copy: bit out of range";
  Bytes.set data byte (Char.chr (Char.code (Bytes.get data byte) lxor (1 lsl bit)));
  write_file dst (Bytes.to_string data)

let torn_tail_copy ~src ~dst ~keep ~junk =
  let data = read_file src in
  if keep < 0 || keep > String.length data then
    invalid_arg "Faultinject.torn_tail_copy: keep out of range";
  if junk < 0 then invalid_arg "Faultinject.torn_tail_copy: negative junk";
  (* deterministic junk: a fixed multiplicative scramble of the position,
     so every run of the harness tears the file the same way *)
  let garbage = String.init junk (fun i -> Char.chr ((i * 167) land 0xff lxor 0x5a)) in
  write_file dst (String.sub data 0 keep ^ garbage)
